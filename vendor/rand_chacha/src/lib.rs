//! Minimal offline stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate.
//!
//! [`ChaCha8Rng`] here keeps the upstream *name and API* (a deterministic,
//! seedable generator) but is **not** the ChaCha stream cipher: it is a
//! xoshiro256**-style generator seeded via SplitMix64. Every use in this
//! workspace only needs seeded determinism, never cipher output
//! compatibility. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable PRNG standing in for upstream's `ChaCha8Rng`.
///
/// xoshiro256** core; passes the workspace's structural needs (uniformity,
/// long period, independence across seeds) without claiming cryptographic
/// strength — exactly like upstream's use of ChaCha8 as a *statistical* RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as upstream rand does for
        // seed_from_u64, so that nearby seeds yield unrelated streams.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }
}
