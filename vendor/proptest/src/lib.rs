//! Minimal offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `name in strategy` argument bindings,
//! * integer-range strategies (`0usize..50`), tuples of strategies, and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! There is **no shrinking**: on failure the generated inputs are printed
//! verbatim so the case can be replayed by hand. Generation is fully
//! deterministic (fixed base seed + case index), so a failing case fails on
//! every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Test-runner configuration (stand-in for `proptest::test_runner`).
pub mod test_runner {
    /// Number-of-cases configuration, mirroring `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Deterministic RNG handed to strategies by the generated test loop.
#[derive(Debug)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A generator for case number `case` of the named test.
    ///
    /// The test name participates in the seed so different properties in one
    /// file do not see identical instance streams.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Value-generation strategies (stand-in for `proptest::strategy`).
pub mod strategy {
    use crate::TestRng;
    use rand::Rng;

    /// Something that can produce random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generate vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a property, reporting the generated inputs on
/// failure. (No shrinking in this stand-in — it simply panics like
/// `assert!`, and the harness prints the inputs.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `body` against `Config::cases` random
/// instantiations of its arguments. On panic, the failing inputs are printed
/// before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!("case ", "{}", $(": ", stringify!($arg), " = {:?}",)*),
                        case $(, &$arg)*
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = outcome {
                        eprintln!("proptest stand-in: {} failed [{}]", stringify!($name), inputs);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name( $( $arg in $strat ),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The harness runs and ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(n in 2usize..60, pair in (0u64..10, 0u32..5)) {
            prop_assert!((2..60).contains(&n));
            prop_assert!(pair.0 < 10 && pair.1 < 5);
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0usize..9, 0..7)) {
            prop_assert!(v.len() < 7);
            for x in v {
                prop_assert!(x < 9);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let a = (0usize..1000).sample(&mut crate::TestRng::for_case("t", 3));
        let b = (0usize..1000).sample(&mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
