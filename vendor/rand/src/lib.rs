//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface), covering exactly what this workspace uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom`]. See `vendor/README.md` for the rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next pseudo-random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
///
/// Upstream `rand` derives [`SeedableRng::seed_from_u64`] from a byte-array
/// seed; the workspace only ever seeds from a `u64`, so that is the whole
/// trait here.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience methods layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (half-open, `low..high`).
    ///
    /// # Panics
    /// Panics if the range is empty, as upstream does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, same construction as upstream's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform-sampling support types (stand-in for `rand::distributions`).
pub mod distributions {
    /// Uniform range sampling (stand-in for `rand::distributions::uniform`).
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draw one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_sample_range_uint {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end - self.start) as u128;
                        // Modulo reduction: bias is < 2^-64 per draw for the
                        // span sizes used in this workspace, which is fine for
                        // synthetic-instance generation.
                        let draw = (rng.next_u64() as u128) % span;
                        self.start + draw as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let span = (end - start) as u128 + 1;
                        let draw = (rng.next_u64() as u128) % span;
                        start + draw as $t
                    }
                }
            )*};
        }
        impl_sample_range_uint!(u8, u16, u32, u64, usize);
    }
}

/// Sequence-related random operations (stand-in for `rand::seq`).
pub mod seq {
    use crate::RngCore;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, RngCore};

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
