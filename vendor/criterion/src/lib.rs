//! Minimal offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! Provides the API slice the workspace's `e1`–`e6` benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and [`black_box`] — and reports the mean wall-clock time per iteration to
//! stdout. No statistics, plots, or HTML reports. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus the
/// parameter value this invocation measures.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-benchmark timing driver handed to the closure given to
/// [`BenchmarkGroup::bench_with_input`].
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, running one warm-up pass then `samples` measured
    /// passes, recording the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many measured iterations each benchmark runs (upstream: how
    /// many statistical samples are collected).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: None,
        };
        routine(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    fn report(&mut self, id: &str, bencher: &Bencher) {
        match bencher.mean {
            Some(mean) => println!(
                "{}/{}: mean {:?} over {} iters",
                self.name, id, mean, bencher.samples
            ),
            None => println!("{}/{}: no measurement (iter never called)", self.name, id),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// Finish the group. (Upstream emits summary reports here; the stand-in
    /// has already printed each line.)
    pub fn finish(self) {}
}

/// Benchmark manager, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// How many benchmarks have reported so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Bundle benchmark functions into a runnable group, mirroring upstream's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups, mirroring upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let input = 20u64;
        group.bench_with_input(BenchmarkId::new("fib", input), &input, |b, &n| {
            b.iter(|| (1..=n).product::<u64>())
        });
        group.finish();
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
