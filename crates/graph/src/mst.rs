//! Centralized minimum spanning tree reference algorithms.
//!
//! Kruskal and Prim implementations used as ground truth when validating the
//! distributed Boruvka-with-shortcuts MST of `lcs-mst`.

use std::collections::BinaryHeap;

use crate::{EdgeId, EdgeWeights, Graph, NodeId, UnionFind};

/// Computes a minimum spanning forest with Kruskal's algorithm.
///
/// Returns the chosen edge ids sorted by edge id. If the graph is connected
/// the result is a spanning tree with `n - 1` edges. Ties between equal
/// weights are broken by edge id, which makes the output deterministic.
pub fn kruskal_mst(graph: &Graph, weights: &EdgeWeights) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = graph.edge_ids().collect();
    order.sort_by_key(|&e| (weights.weight(e), e));
    let mut uf = UnionFind::new(graph.node_count());
    let mut chosen = Vec::with_capacity(graph.node_count().saturating_sub(1));
    for e in order {
        let edge = graph.edge(e);
        if uf.union(edge.u.index(), edge.v.index()) {
            chosen.push(e);
        }
    }
    chosen.sort();
    chosen
}

/// Computes a minimum spanning tree with Prim's algorithm starting from
/// `start`. Returns the chosen edge ids sorted by edge id; only the
/// component containing `start` is spanned.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn prim_mst(graph: &Graph, weights: &EdgeWeights, start: NodeId) -> Vec<EdgeId> {
    let n = graph.node_count();
    assert!(start.index() < n, "start {start} out of range");
    let mut in_tree = vec![false; n];
    let mut chosen = Vec::new();
    // Max-heap of Reverse((weight, edge, node)) == min-heap.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, EdgeId, NodeId)>> = BinaryHeap::new();

    in_tree[start.index()] = true;
    for (v, e) in graph.neighbors(start) {
        heap.push(std::cmp::Reverse((weights.weight(e), e, v)));
    }
    while let Some(std::cmp::Reverse((_, e, v))) = heap.pop() {
        if in_tree[v.index()] {
            continue;
        }
        in_tree[v.index()] = true;
        chosen.push(e);
        for (u, f) in graph.neighbors(v) {
            if !in_tree[u.index()] {
                heap.push(std::cmp::Reverse((weights.weight(f), f, u)));
            }
        }
    }
    chosen.sort();
    chosen
}

/// Total weight of the minimum spanning forest.
pub fn mst_weight(graph: &Graph, weights: &EdgeWeights) -> u64 {
    weights.total(kruskal_mst(graph, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn mst_of_tree_is_the_tree_itself() {
        let g = generators::path(6);
        let w = EdgeWeights::random_permutation(&g, 1);
        let mst = kruskal_mst(&g, &w);
        assert_eq!(mst.len(), 5);
        assert_eq!(mst, g.edge_ids().collect::<Vec<_>>());
    }

    #[test]
    fn kruskal_and_prim_agree_on_unique_weights() {
        for seed in 0..5 {
            let g = generators::grid(6, 7);
            let w = EdgeWeights::random_permutation(&g, seed);
            let k = kruskal_mst(&g, &w);
            let p = prim_mst(&g, &w, NodeId::new(0));
            assert_eq!(k, p, "seed {seed}");
            assert_eq!(k.len(), g.node_count() - 1);
        }
    }

    #[test]
    fn mst_picks_cheap_edges_on_cycle() {
        // Cycle of 4: weights 10, 1, 2, 3 -> drop the weight-10 edge.
        let g = generators::cycle(4);
        let w = EdgeWeights::from_vec(&g, vec![10, 1, 2, 3]).unwrap();
        let mst = kruskal_mst(&g, &w);
        assert_eq!(mst.len(), 3);
        assert!(!mst.contains(&EdgeId::new(0)));
        assert_eq!(mst_weight(&g, &w), 6);
    }

    #[test]
    fn mst_weight_of_uniform_grid_is_node_count_minus_one() {
        let g = generators::grid(5, 5);
        let w = EdgeWeights::uniform(&g);
        assert_eq!(mst_weight(&g, &w), 24);
    }

    #[test]
    fn kruskal_on_disconnected_graph_returns_forest() {
        let g = Graph::from_edges(
            4,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(2), NodeId::new(3)),
            ],
        )
        .unwrap();
        let w = EdgeWeights::uniform(&g);
        assert_eq!(kruskal_mst(&g, &w).len(), 2);
    }

    #[test]
    fn prim_spans_only_start_component() {
        let g = Graph::from_edges(
            4,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(2), NodeId::new(3)),
            ],
        )
        .unwrap();
        let w = EdgeWeights::uniform(&g);
        assert_eq!(prim_mst(&g, &w, NodeId::new(0)).len(), 1);
    }
}
