//! The core undirected graph representation.

use crate::{EdgeId, GraphError, NodeId, Result};

/// An undirected edge between two nodes.
///
/// Edges are stored with `u <= v` normalization applied by [`Graph`]
/// construction; the original insertion order determines the [`EdgeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// First endpoint (the smaller node id).
    pub u: NodeId,
    /// Second endpoint (the larger node id).
    pub v: NodeId,
}

impl Edge {
    /// Creates a normalized edge with `u <= v`.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Returns the endpoint different from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the edge.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.u {
            self.v
        } else if from == self.v {
            self.u
        } else {
            panic!(
                "node {from} is not an endpoint of edge {{{}, {}}}",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `node` is one of the two endpoints.
    pub fn is_incident_to(&self, node: NodeId) -> bool {
        self.u == node || self.v == node
    }
}

/// A finite, undirected, simple graph.
///
/// The representation is a compressed sparse row (CSR) adjacency, immutable
/// after construction (build graphs with [`crate::GraphBuilder`] or the
/// [`crate::generators`]): `first_out[v]..first_out[v + 1]` indexes the flat
/// `neighbor`/`edge_id` arrays, which hold node `v`'s incident `(neighbor,
/// edge)` pairs contiguously, in edge-insertion order. The layout keeps the
/// per-node neighborhood a pair of cache-linear slices — the hot-path shape
/// the CONGEST simulator and the quality BFS both iterate millions of times
/// — instead of one heap allocation per node. Node ids are
/// `0..node_count()` and edge ids are `0..edge_count()`, which lets callers
/// use plain `Vec`s as node- or edge-indexed maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    edges: Vec<Edge>,
    /// CSR offsets: `first_out[v]..first_out[v + 1]` is node `v`'s slice of
    /// the two flat arrays below. Length `node_count + 1`.
    first_out: Vec<u32>,
    /// Flat neighbor array, length `2 * edge_count`.
    neighbor: Vec<NodeId>,
    /// Flat incident-edge array, parallel to `neighbor`.
    edge_id: Vec<EdgeId>,
}

impl Graph {
    /// Creates a graph with `node_count` nodes and the given undirected
    /// edges.
    ///
    /// Duplicate detection is sort-based (no hash set): the normalized
    /// endpoint pairs are packed into `u64` keys and sorted, so large
    /// generator outputs validate with one cache-friendly pass instead of a
    /// per-edge hash probe.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a
    /// self-loop, or the same undirected edge appears twice.
    pub fn from_edges(node_count: usize, edge_list: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut edges = Vec::with_capacity(edge_list.len());
        for &(a, b) in edge_list {
            for node in [a, b] {
                if node.index() >= node_count {
                    return Err(GraphError::NodeOutOfRange { node, node_count });
                }
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            edges.push(Edge::new(a, b));
        }
        // Node indices are u32 by construction (NodeId::new panics above
        // u32::MAX), so the two halves of the packed key cannot overlap.
        let mut keys: Vec<u64> = edges
            .iter()
            .map(|e| ((e.u.index() as u64) << 32) | e.v.index() as u64)
            .collect();
        keys.sort_unstable();
        if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateEdge {
                u: NodeId::new((w[0] >> 32) as usize),
                v: NodeId::new((w[0] & u64::from(u32::MAX)) as usize),
            });
        }
        Ok(Self::from_deduped_edges(node_count, edges))
    }

    /// Builds the CSR arrays from a validated, duplicate-free edge list.
    /// The counting sort is stable in edge order, so every adjacency slice
    /// lists its `(neighbor, edge)` pairs in edge-insertion order — the
    /// same order the previous adjacency-list representation produced.
    pub(crate) fn from_deduped_edges(node_count: usize, edges: Vec<Edge>) -> Self {
        let total = 2 * edges.len();
        assert!(
            total <= u32::MAX as usize,
            "graph too large for u32 CSR offsets"
        );
        let mut first_out = vec![0u32; node_count + 1];
        for e in &edges {
            first_out[e.u.index() + 1] += 1;
            first_out[e.v.index() + 1] += 1;
        }
        for i in 0..node_count {
            first_out[i + 1] += first_out[i];
        }
        let mut cursor: Vec<u32> = first_out[..node_count].to_vec();
        let mut neighbor = vec![NodeId::default(); total];
        let mut edge_id = vec![EdgeId::default(); total];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::new(i);
            let cu = &mut cursor[e.u.index()];
            neighbor[*cu as usize] = e.v;
            edge_id[*cu as usize] = id;
            *cu += 1;
            let cv = &mut cursor[e.v.index()];
            neighbor[*cv as usize] = e.u;
            edge_id[*cv as usize] = id;
            *cv += 1;
        }
        Graph {
            edges,
            first_out,
            neighbor,
            edge_id,
        }
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.first_out.len() - 1
    }

    /// Number of undirected edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids, in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over all edge ids, in increasing order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterator over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId::new(i), e))
    }

    /// Returns the endpoints of the given edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// The CSR index range of `node`'s adjacency slice.
    #[inline]
    fn adjacency_range(&self, node: NodeId) -> std::ops::Range<usize> {
        self.first_out[node.index()] as usize..self.first_out[node.index() + 1] as usize
    }

    /// Degree of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency_range(node).len()
    }

    /// The neighbors of `node` as a contiguous slice (parallel to
    /// [`Graph::incident_edge_ids`]).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    #[inline]
    pub fn neighbor_ids(&self, node: NodeId) -> &[NodeId] {
        &self.neighbor[self.adjacency_range(node)]
    }

    /// The edges incident to `node` as a contiguous slice (parallel to
    /// [`Graph::neighbor_ids`]: `incident_edge_ids(v)[k]` connects `v` to
    /// `neighbor_ids(v)[k]`).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    #[inline]
    pub fn incident_edge_ids(&self, node: NodeId) -> &[EdgeId] {
        &self.edge_id[self.adjacency_range(node)]
    }

    /// Iterator over `(neighbor, edge id)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let range = self.adjacency_range(node);
        self.neighbor[range.clone()]
            .iter()
            .copied()
            .zip(self.edge_id[range].iter().copied())
    }

    /// Looks up the edge id connecting `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a.index() >= self.node_count() || b.index() >= self.node_count() {
            return None;
        }
        // Scan the smaller adjacency slice.
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let pos = self.neighbor_ids(from).iter().position(|&n| n == to)?;
        Some(self.incident_edge_ids(from)[pos])
    }

    /// Returns `true` if nodes `a` and `b` are adjacent.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.first_out
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(
            3,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(2), NodeId::new(0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(NodeId::new(5), NodeId::new(2));
        assert_eq!(e.u, NodeId::new(2));
        assert_eq!(e.v, NodeId::new(5));
        assert_eq!(e.other(NodeId::new(2)), NodeId::new(5));
        assert_eq!(e.other(NodeId::new(5)), NodeId::new(2));
        assert!(e.is_incident_to(NodeId::new(2)));
        assert!(!e.is_incident_to(NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(NodeId::new(0), NodeId::new(1)).other(NodeId::new(2));
    }

    #[test]
    fn triangle_counts_and_adjacency() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(0)));
        let neighbors: Vec<NodeId> = g.neighbors(NodeId::new(1)).map(|(n, _)| n).collect();
        assert_eq!(neighbors.len(), 2);
        assert!(neighbors.contains(&NodeId::new(0)));
        assert!(neighbors.contains(&NodeId::new(2)));
    }

    #[test]
    fn csr_slices_are_parallel_and_in_insertion_order() {
        let g = triangle();
        // Node 0 gains edge e0 (to node 1) first and e2 (to node 2) second.
        assert_eq!(
            g.neighbor_ids(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            g.incident_edge_ids(NodeId::new(0)),
            &[EdgeId::new(0), EdgeId::new(2)]
        );
        for v in g.nodes() {
            assert_eq!(g.neighbor_ids(v).len(), g.degree(v));
            let pairs: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            for (k, &(n, e)) in pairs.iter().enumerate() {
                assert_eq!(g.neighbor_ids(v)[k], n);
                assert_eq!(g.incident_edge_ids(v)[k], e);
                assert_eq!(g.edge(e).other(v), n);
            }
        }
    }

    #[test]
    fn edge_between_returns_consistent_id() {
        let g = triangle();
        let id = g.edge_between(NodeId::new(2), NodeId::new(1)).unwrap();
        let e = g.edge(id);
        assert_eq!(e, Edge::new(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, &[(NodeId::new(1), NodeId::new(1))]).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_duplicate_edge_in_either_orientation() {
        let err = Graph::from_edges(
            3,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(0)),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::DuplicateEdge {
                u: NodeId::new(0),
                v: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_duplicate_edge_among_many() {
        // The duplicate is buried in the middle; the sort-based detector
        // still names its normalized endpoints.
        let err = Graph::from_edges(
            5,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(3), NodeId::new(2)),
                (NodeId::new(1), NodeId::new(4)),
                (NodeId::new(2), NodeId::new(3)),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::DuplicateEdge {
                u: NodeId::new(2),
                v: NodeId::new(3)
            }
        );
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let err = Graph::from_edges(2, &[(NodeId::new(0), NodeId::new(2))]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(2),
                node_count: 2
            }
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn edges_iterator_yields_ids_in_insertion_order() {
        let g = triangle();
        let collected: Vec<(EdgeId, Edge)> = g.edges().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].0, EdgeId::new(0));
        assert_eq!(collected[2].0, EdgeId::new(2));
    }
}
