//! The core undirected graph representation.

use std::collections::HashSet;

use crate::{EdgeId, GraphError, NodeId, Result};

/// An undirected edge between two nodes.
///
/// Edges are stored with `u <= v` normalization applied by [`Graph`]
/// construction; the original insertion order determines the [`EdgeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// First endpoint (the smaller node id).
    pub u: NodeId,
    /// Second endpoint (the larger node id).
    pub v: NodeId,
}

impl Edge {
    /// Creates a normalized edge with `u <= v`.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Returns the endpoint different from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the edge.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.u {
            self.v
        } else if from == self.v {
            self.u
        } else {
            panic!(
                "node {from} is not an endpoint of edge {{{}, {}}}",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `node` is one of the two endpoints.
    pub fn is_incident_to(&self, node: NodeId) -> bool {
        self.u == node || self.v == node
    }
}

/// A finite, undirected, simple graph.
///
/// The representation is adjacency-list based and immutable after
/// construction (build graphs with [`crate::GraphBuilder`] or the
/// [`crate::generators`]). Node ids are `0..node_count()` and edge ids are
/// `0..edge_count()`, which lets callers use plain `Vec`s as node- or
/// edge-indexed maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency[v] = list of (neighbor, edge id connecting v to neighbor)
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `node_count` nodes and the given undirected
    /// edges.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a
    /// self-loop, or the same undirected edge appears twice.
    pub fn from_edges(node_count: usize, edge_list: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut edges = Vec::with_capacity(edge_list.len());
        let mut adjacency = vec![Vec::new(); node_count];
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(edge_list.len());

        for &(a, b) in edge_list {
            for node in [a, b] {
                if node.index() >= node_count {
                    return Err(GraphError::NodeOutOfRange { node, node_count });
                }
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            let edge = Edge::new(a, b);
            if !seen.insert((edge.u, edge.v)) {
                return Err(GraphError::DuplicateEdge {
                    u: edge.u,
                    v: edge.v,
                });
            }
            let id = EdgeId::new(edges.len());
            adjacency[edge.u.index()].push((edge.v, id));
            adjacency[edge.v.index()].push((edge.u, id));
            edges.push(edge);
        }

        Ok(Graph { edges, adjacency })
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids, in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over all edge ids, in increasing order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterator over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId::new(i), e))
    }

    /// Returns the endpoints of the given edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge id is out of range.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Degree of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterator over `(neighbor, edge id)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adjacency[node.index()].iter().copied()
    }

    /// Looks up the edge id connecting `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a.index() >= self.node_count() || b.index() >= self.node_count() {
            return None;
        }
        // Scan the smaller adjacency list.
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency[from.index()]
            .iter()
            .find(|(n, _)| *n == to)
            .map(|&(_, e)| e)
    }

    /// Returns `true` if nodes `a` and `b` are adjacent.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(
            3,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(2), NodeId::new(0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(NodeId::new(5), NodeId::new(2));
        assert_eq!(e.u, NodeId::new(2));
        assert_eq!(e.v, NodeId::new(5));
        assert_eq!(e.other(NodeId::new(2)), NodeId::new(5));
        assert_eq!(e.other(NodeId::new(5)), NodeId::new(2));
        assert!(e.is_incident_to(NodeId::new(2)));
        assert!(!e.is_incident_to(NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(NodeId::new(0), NodeId::new(1)).other(NodeId::new(2));
    }

    #[test]
    fn triangle_counts_and_adjacency() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(0)));
        let neighbors: Vec<NodeId> = g.neighbors(NodeId::new(1)).map(|(n, _)| n).collect();
        assert_eq!(neighbors.len(), 2);
        assert!(neighbors.contains(&NodeId::new(0)));
        assert!(neighbors.contains(&NodeId::new(2)));
    }

    #[test]
    fn edge_between_returns_consistent_id() {
        let g = triangle();
        let id = g.edge_between(NodeId::new(2), NodeId::new(1)).unwrap();
        let e = g.edge(id);
        assert_eq!(e, Edge::new(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, &[(NodeId::new(1), NodeId::new(1))]).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_duplicate_edge_in_either_orientation() {
        let err = Graph::from_edges(
            3,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(0)),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::DuplicateEdge {
                u: NodeId::new(0),
                v: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let err = Graph::from_edges(2, &[(NodeId::new(0), NodeId::new(2))]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(2),
                node_count: 2
            }
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn edges_iterator_yields_ids_in_insertion_order() {
        let g = triangle();
        let collected: Vec<(EdgeId, Edge)> = g.edges().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].0, EdgeId::new(0));
        assert_eq!(collected[2].0, EdgeId::new(2));
    }
}
