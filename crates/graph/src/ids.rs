//! Strongly typed identifiers for nodes, edges and parts.
//!
//! Using newtypes (rather than bare `usize`) prevents the classic mistake of
//! indexing an edge-indexed array with a node id and vice versa, which the
//! shortcut construction code is particularly prone to because it constantly
//! moves between the three index spaces.

use std::fmt;

/// Identifier of a node (vertex) of a [`crate::Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

/// Identifier of an undirected edge of a [`crate::Graph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

/// Identifier of a part of a [`crate::Partition`].
///
/// Part ids are dense within a partition: a partition with `N` parts uses ids
/// `0..N`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartId(u32);

macro_rules! impl_id {
    ($name:ident, $letter:expr) => {
        impl $name {
            /// Creates an identifier from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in 32 bits.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(
                    index <= u32::MAX as usize,
                    concat!(stringify!($name), " index out of range: {}"),
                    index
                );
                Self(index as u32)
            }

            /// Returns the dense index backing this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $letter, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $letter, self.0)
            }
        }
    };
}

impl_id!(NodeId, "v");
impl_id!(EdgeId, "e");
impl_id!(PartId, "P");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(usize::from(id), 17);
        assert_eq!(NodeId::from(17usize), id);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", NodeId::new(3)), "v3");
        assert_eq!(format!("{}", EdgeId::new(4)), "e4");
        assert_eq!(format!("{}", PartId::new(5)), "P5");
        assert_eq!(format!("{:?}", NodeId::new(3)), "v3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
        assert!(PartId::new(3) > PartId::new(1));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default().index(), 0);
        assert_eq!(EdgeId::default().index(), 0);
        assert_eq!(PartId::default().index(), 0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
