//! Synthetic network families used throughout the experiments.
//!
//! All generators return connected [`crate::Graph`]s; each family is chosen
//! because it exercises a specific regime of the shortcut framework:
//!
//! * [`grid`], [`triangulated_grid`] — planar graphs with `D = Θ(√n)`
//!   (the family Theorem 1 / Corollary 1 is about, with genus 0),
//! * [`torus`], [`genus_handles`] — genus-1 and genus-≤g families,
//! * [`wheel`] — planar, diameter 2, while arc parts have diameter `Θ(n/N)`:
//!   the extreme case where shortcuts help most,
//! * [`lower_bound_graph`] — the classic `Ω̃(√n + D)` hard instance (paths
//!   plus a shallow highway tree): the case where *no* good shortcut exists,
//!   used as a negative control,
//! * [`path`], [`cycle`], [`star`], [`complete`], [`caterpillar`],
//!   [`binary_tree`], [`lollipop`] — small structured families for unit
//!   tests,
//! * [`random_tree`], [`random_connected`] — randomized families for
//!   property-based tests.
//!
//! The [`partitions`] submodule generates matching [`crate::Partition`]s.

mod basic;
mod grids;
mod lower_bound;
mod random;

pub mod partitions;

pub use basic::{binary_tree, caterpillar, complete, cycle, lollipop, path, star, wheel};
pub use grids::{genus_handles, grid, grid_node, torus, triangulated_grid};
pub use lower_bound::{lower_bound_graph, LowerBoundLayout};
pub use random::{erdos_renyi_connected, random_connected, random_tree};
