//! Partition generators matched to the graph families of
//! [`crate::generators`].
//!
//! Each generator documents which regime of the shortcut framework it
//! exercises: benign partitions whose parts already have small diameter, and
//! adversarial partitions whose parts have diameter much larger than the
//! network diameter `D` (the situation low-congestion shortcuts exist to
//! fix).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::grids::grid_node;
use super::lower_bound::LowerBoundLayout;
use crate::partition::bfs_ball_partition;
use crate::{Graph, NodeId, Partition, PartitionBuilder};

/// Every node is its own part (`N = n`). The starting partition of
/// Boruvka's algorithm.
pub fn singletons(graph: &Graph) -> Partition {
    Partition::singletons(graph)
}

/// Each column of a `rows × cols` grid is one part (`N = cols`). The part
/// diameter is `rows - 1`, comparable to the grid diameter — a benign
/// partition used for calibration.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid_columns(rows: usize, cols: usize) -> Partition {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let mut b = PartitionBuilder::new(rows * cols);
    for c in 0..cols {
        let members = (0..rows).map(|r| grid_node(rows, cols, r, c)).collect();
        b.add_part(members)
            .expect("columns are disjoint and nonempty");
    }
    b.build()
}

/// Each row of a `rows × cols` grid is one part (`N = rows`).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid_rows(rows: usize, cols: usize) -> Partition {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let mut b = PartitionBuilder::new(rows * cols);
    for r in 0..rows {
        let members = (0..cols).map(|c| grid_node(rows, cols, r, c)).collect();
        b.add_part(members).expect("rows are disjoint and nonempty");
    }
    b.build()
}

/// Partitions a `rows × cols` grid into `block_rows × block_cols` aligned
/// rectangular blocks (the final blocks absorb any remainder).
///
/// # Panics
///
/// Panics if any dimension is zero or the block dimensions exceed the grid.
pub fn grid_blocks(rows: usize, cols: usize, block_rows: usize, block_cols: usize) -> Partition {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    assert!(
        (1..=rows).contains(&block_rows) && (1..=cols).contains(&block_cols),
        "block dimensions must be positive and at most the grid dimensions"
    );
    let row_blocks = rows / block_rows;
    let col_blocks = cols / block_cols;
    let mut b = PartitionBuilder::new(rows * cols);
    for br in 0..row_blocks {
        for bc in 0..col_blocks {
            let row_end = if br + 1 == row_blocks {
                rows
            } else {
                (br + 1) * block_rows
            };
            let col_end = if bc + 1 == col_blocks {
                cols
            } else {
                (bc + 1) * block_cols
            };
            let mut members = Vec::new();
            for r in br * block_rows..row_end {
                for c in bc * block_cols..col_end {
                    members.push(grid_node(rows, cols, r, c));
                }
            }
            b.add_part(members)
                .expect("blocks are disjoint and nonempty");
        }
    }
    b.build()
}

/// The two interleaved "comb" parts of a `rows × cols` grid: part 0 is the
/// top row plus every odd column's interior, part 1 is the bottom row plus
/// every even column's interior. Both parts are connected and their
/// shortcut subgraphs necessarily compete for the same tree edges — the
/// classic congestion stress case.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 2`.
pub fn grid_combs(rows: usize, cols: usize) -> Partition {
    assert!(rows >= 3, "combs need at least three rows");
    assert!(cols >= 2, "combs need at least two columns");
    let mut top = Vec::new();
    let mut bottom = Vec::new();
    for c in 0..cols {
        top.push(grid_node(rows, cols, 0, c));
        bottom.push(grid_node(rows, cols, rows - 1, c));
    }
    for r in 1..rows - 1 {
        for c in 0..cols {
            if c % 2 == 1 {
                top.push(grid_node(rows, cols, r, c));
            } else {
                bottom.push(grid_node(rows, cols, r, c));
            }
        }
    }
    let mut b = PartitionBuilder::new(rows * cols);
    b.add_part(top).expect("top comb is nonempty");
    b.add_part(bottom).expect("bottom comb is nonempty");
    b.build()
}

/// Splits the rim of a wheel on `n` nodes (see [`super::wheel`]) into
/// `num_parts` contiguous arcs; the hub belongs to no part. Each arc has
/// induced diameter about `(n - 1) / num_parts` while the wheel's diameter
/// is 2 — the extreme adversarial case for part-internal communication.
///
/// # Panics
///
/// Panics if `n < 5` or `num_parts` is zero or larger than the rim.
pub fn wheel_arcs(n: usize, num_parts: usize) -> Partition {
    assert!(n >= 5, "wheel needs at least five nodes");
    let rim = n - 1;
    assert!(num_parts >= 1 && num_parts <= rim, "need 1..=rim parts");
    let mut b = PartitionBuilder::new(n);
    for p in 0..num_parts {
        let start = p * rim / num_parts;
        let end = (p + 1) * rim / num_parts;
        let members = (start..end).map(|i| NodeId::new(1 + i)).collect();
        b.add_part(members).expect("arcs are disjoint and nonempty");
    }
    b.build()
}

/// The motivating partition of the lower-bound instance: each of the long
/// paths is one part; the highway connectors belong to no part.
pub fn lower_bound_paths(layout: &LowerBoundLayout) -> Partition {
    let mut b = PartitionBuilder::new(layout.node_count());
    for i in 0..layout.num_paths {
        let members = (0..layout.path_len)
            .map(|j| layout.path_node(i, j))
            .collect();
        b.add_part(members)
            .expect("paths are disjoint and nonempty");
    }
    b.build()
}

/// Random connected partition: grows `num_parts` parts by multi-source BFS
/// from uniformly random seed nodes. Every node ends up assigned.
///
/// # Panics
///
/// Panics if `num_parts` is zero or exceeds the node count.
pub fn random_bfs_balls(graph: &Graph, num_parts: usize, seed: u64) -> Partition {
    assert!(
        num_parts >= 1 && num_parts <= graph.node_count(),
        "need between 1 and n parts"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.shuffle(&mut rng);
    bfs_ball_partition(graph, &nodes[..num_parts])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::PartId;

    #[test]
    fn grid_columns_and_rows_are_valid() {
        let g = generators::grid(6, 9);
        let cols = grid_columns(6, 9);
        assert_eq!(cols.part_count(), 9);
        assert_eq!(cols.assigned_count(), 54);
        cols.validate(&g).unwrap();
        assert_eq!(cols.part_diameter(&g, PartId::new(0)), 5);

        let rows = grid_rows(6, 9);
        assert_eq!(rows.part_count(), 6);
        rows.validate(&g).unwrap();
        assert_eq!(rows.part_diameter(&g, PartId::new(0)), 8);
    }

    #[test]
    fn grid_blocks_cover_with_remainder() {
        let g = generators::grid(7, 7);
        let p = grid_blocks(7, 7, 3, 3);
        // 2 x 2 blocks; the last block in each dimension absorbs the
        // remainder, so every node is covered.
        assert_eq!(p.part_count(), 4);
        assert_eq!(p.assigned_count(), 49);
        p.validate(&g).unwrap();
    }

    #[test]
    fn grid_combs_are_two_connected_parts_covering_everything() {
        let g = generators::grid(8, 10);
        let p = grid_combs(8, 10);
        assert_eq!(p.part_count(), 2);
        assert_eq!(p.assigned_count(), 80);
        p.validate(&g).unwrap();
    }

    #[test]
    fn wheel_arcs_leave_hub_unassigned() {
        let g = generators::wheel(21);
        let p = wheel_arcs(21, 4);
        assert_eq!(p.part_count(), 4);
        assert_eq!(p.assigned_count(), 20);
        assert_eq!(p.part_of(NodeId::new(0)), None);
        p.validate(&g).unwrap();
        // Arc diameter ≈ rim / parts - 1, much larger than the wheel
        // diameter of 2 once arcs are long.
        assert!(p.max_part_diameter(&g) >= 4);
    }

    #[test]
    fn lower_bound_paths_partition_matches_layout() {
        let (g, layout) = generators::lower_bound_graph(5, 12);
        let p = lower_bound_paths(&layout);
        assert_eq!(p.part_count(), 5);
        assert_eq!(p.assigned_count(), 60);
        p.validate(&g).unwrap();
        for j in 0..12 {
            assert_eq!(p.part_of(layout.connector(j)), None);
        }
    }

    #[test]
    fn random_bfs_balls_cover_and_validate() {
        let g = generators::torus(8, 8);
        for seed in 0..3 {
            let p = random_bfs_balls(&g, 7, seed);
            assert_eq!(p.part_count(), 7);
            assert_eq!(p.assigned_count(), 64);
            p.validate(&g).unwrap();
        }
    }

    #[test]
    fn wheel_arcs_with_one_part_is_whole_rim() {
        let g = generators::wheel(10);
        let p = wheel_arcs(10, 1);
        assert_eq!(p.part_count(), 1);
        assert_eq!(p.members(PartId::new(0)).len(), 9);
        p.validate(&g).unwrap();
    }
}
