//! Randomized families for property-based tests and experiment sweeps.
//!
//! All generators are deterministic given the seed (they use a counter-based
//! ChaCha stream), so experiment tables and failing property tests are
//! reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// A uniformly random recursive tree on `n` nodes: node `i > 0` attaches to
/// a uniformly random earlier node. Expected depth `Θ(log n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1, "tree needs at least one node");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(NodeId::new(parent), NodeId::new(i))
            .expect("parent < i");
    }
    b.build()
}

/// A connected random graph: a random recursive tree plus `extra_edges`
/// uniformly random additional edges (duplicates silently dropped, so the
/// final edge count is at most `n - 1 + extra_edges`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Graph {
    assert!(n >= 1, "graph needs at least one node");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n - 1 + extra_edges);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(NodeId::new(parent), NodeId::new(i))
            .expect("parent < i");
    }
    if n >= 2 {
        for _ in 0..extra_edges {
            let a = rng.gen_range(0..n);
            let mut c = rng.gen_range(0..n);
            if a == c {
                c = (c + 1) % n;
            }
            b.add_edge(NodeId::new(a), NodeId::new(c))
                .expect("a != c by construction");
        }
    }
    b.build()
}

/// An Erdős–Rényi `G(n, p)` graph conditioned on connectivity: edges are
/// sampled independently with probability `p`, and a random spanning tree is
/// added afterwards so the result is always connected.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 1, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let expected = (p * (n * (n - 1) / 2) as f64).ceil() as usize + n;
    let mut b = GraphBuilder::with_capacity(n, expected);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(NodeId::new(i), NodeId::new(j)).expect("i != j");
            }
        }
    }
    // Ensure connectivity with a random recursive tree overlay.
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(NodeId::new(parent), NodeId::new(i))
            .expect("parent < i");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_connected;

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..10 {
            let t = random_tree(50, seed);
            assert_eq!(t.node_count(), 50);
            assert_eq!(t.edge_count(), 49);
            assert!(is_connected(&t));
        }
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        assert_eq!(random_tree(30, 7), random_tree(30, 7));
        assert_ne!(random_tree(30, 7), random_tree(30, 8));
    }

    #[test]
    fn random_connected_is_connected_with_bounded_edges() {
        for seed in 0..5 {
            let g = random_connected(40, 25, seed);
            assert!(is_connected(&g));
            assert!(g.edge_count() >= 39);
            assert!(g.edge_count() <= 39 + 25);
        }
    }

    #[test]
    fn erdos_renyi_connected_is_connected_at_any_density() {
        for &p in &[0.0, 0.05, 0.5, 1.0] {
            let g = erdos_renyi_connected(25, p, 3);
            assert!(is_connected(&g), "p = {p}");
        }
        // p = 1 gives the complete graph.
        let g = erdos_renyi_connected(10, 1.0, 0);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn single_node_graphs() {
        assert_eq!(random_tree(1, 0).edge_count(), 0);
        assert_eq!(random_connected(1, 10, 0).edge_count(), 0);
        assert_eq!(erdos_renyi_connected(1, 0.5, 0).edge_count(), 0);
    }
}
