//! Grid-like families: planar grids, tori and genus-bounded handle graphs.

use crate::{Graph, GraphBuilder, NodeId};

/// Node id of grid cell `(row, col)` in the row-major numbering used by all
/// grid generators.
///
/// # Panics
///
/// Panics if the cell lies outside the `rows × cols` grid.
pub fn grid_node(rows: usize, cols: usize, row: usize, col: usize) -> NodeId {
    assert!(
        row < rows && col < cols,
        "cell ({row}, {col}) outside {rows}x{cols} grid"
    );
    NodeId::new(row * cols + col)
}

fn grid_builder(rows: usize, cols: usize, extra_edges: usize) -> GraphBuilder {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let grid_edges = rows * (cols - 1) + (rows - 1) * cols;
    let mut b = GraphBuilder::with_capacity(rows * cols, grid_edges + extra_edges);
    for r in 0..rows {
        for c in 0..cols {
            let v = grid_node(rows, cols, r, c);
            if c + 1 < cols {
                b.add_edge(v, grid_node(rows, cols, r, c + 1))
                    .expect("distinct cells");
            }
            if r + 1 < rows {
                b.add_edge(v, grid_node(rows, cols, r + 1, c))
                    .expect("distinct cells");
            }
        }
    }
    b
}

/// The `rows × cols` planar grid (genus 0). Node `(r, c)` has id
/// `r * cols + c`; diameter is `(rows - 1) + (cols - 1)`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    grid_builder(rows, cols, 0).build()
}

/// The `rows × cols` grid with one diagonal added in every unit cell.
/// Still planar; roughly doubles the edge count, which stresses the
/// congestion accounting without changing the diameter.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn triangulated_grid(rows: usize, cols: usize) -> Graph {
    let mut b = grid_builder(rows, cols, rows.saturating_sub(1) * cols.saturating_sub(1));
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            b.add_edge(
                grid_node(rows, cols, r, c),
                grid_node(rows, cols, r + 1, c + 1),
            )
            .expect("distinct cells");
        }
    }
    b.build()
}

/// The `rows × cols` torus: the grid plus wrap-around edges in both
/// dimensions. Genus 1; diameter `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// # Panics
///
/// Panics if either dimension is smaller than 3 (smaller tori would create
/// duplicate or self-loop wrap edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let mut b = grid_builder(rows, cols, rows + cols);
    for r in 0..rows {
        b.add_edge(
            grid_node(rows, cols, r, cols - 1),
            grid_node(rows, cols, r, 0),
        )
        .expect("distinct cells");
    }
    for c in 0..cols {
        b.add_edge(
            grid_node(rows, cols, rows - 1, c),
            grid_node(rows, cols, 0, c),
        )
        .expect("distinct cells");
    }
    b.build()
}

/// A genus-≤`g` family: the `rows × cols` planar grid with `g` extra
/// "handle" edges connecting spread-out cells of the top and bottom rows.
/// Adding an edge to a graph increases its genus by at most one, so the
/// result has genus at most `g` (and exactly 0 when `g = 0`).
///
/// # Panics
///
/// Panics if either dimension is zero, or if `g >= cols` (there would not be
/// enough distinct columns to attach the handles to).
pub fn genus_handles(rows: usize, cols: usize, g: usize) -> Graph {
    assert!(
        g < cols,
        "need g < cols to place {g} handles on {cols} columns"
    );
    let mut b = grid_builder(rows, cols, g);
    for k in 0..g {
        // Spread the handle endpoints over the columns; connect the top row
        // to the bottom row in "crossed" fashion so each handle is a
        // long-range edge that the planar embedding cannot accommodate.
        let top_col = (k * cols) / g.max(1);
        let bottom_col = cols - 1 - top_col;
        let top = grid_node(rows, cols, 0, top_col);
        let bottom = grid_node(rows, cols, rows - 1, bottom_col);
        if top != bottom && !b.has_edge(top, bottom) {
            b.add_edge(top, bottom).expect("checked distinct");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diameter_exact, is_connected};

    #[test]
    fn grid_counts() {
        let g = grid(4, 6);
        assert_eq!(g.node_count(), 24);
        // Horizontal edges: 4 * 5, vertical edges: 3 * 6.
        assert_eq!(g.edge_count(), 20 + 18);
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), 3 + 5);
    }

    #[test]
    fn grid_node_indexing_is_row_major() {
        assert_eq!(grid_node(4, 6, 0, 0), NodeId::new(0));
        assert_eq!(grid_node(4, 6, 1, 0), NodeId::new(6));
        assert_eq!(grid_node(4, 6, 3, 5), NodeId::new(23));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn grid_node_bounds_checked() {
        grid_node(2, 2, 2, 0);
    }

    #[test]
    fn degenerate_grids() {
        let g = grid(1, 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g = grid(1, 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(diameter_exact(&g), 4);
    }

    #[test]
    fn triangulated_grid_adds_one_diagonal_per_cell() {
        let plain = grid(4, 5);
        let tri = triangulated_grid(4, 5);
        assert_eq!(tri.node_count(), plain.node_count());
        assert_eq!(tri.edge_count(), plain.edge_count() + 3 * 4);
        assert!(is_connected(&tri));
        // Diagonals cannot increase the diameter.
        assert!(diameter_exact(&tri) <= diameter_exact(&plain));
    }

    #[test]
    fn torus_counts_and_diameter() {
        let t = torus(5, 8);
        assert_eq!(t.node_count(), 40);
        // Every node has degree 4 on a torus.
        assert_eq!(t.edge_count(), 2 * 40);
        assert_eq!(t.max_degree(), 4);
        assert_eq!(diameter_exact(&t), 2 + 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_torus_rejected() {
        torus(2, 5);
    }

    #[test]
    fn genus_handles_adds_at_most_g_edges() {
        let base = grid(6, 10);
        for g_param in [0usize, 1, 2, 4, 8] {
            let h = genus_handles(6, 10, g_param);
            assert_eq!(h.node_count(), base.node_count());
            assert!(h.edge_count() <= base.edge_count() + g_param);
            assert!(h.edge_count() >= base.edge_count());
            assert!(is_connected(&h));
        }
    }

    #[test]
    fn genus_zero_handles_is_the_plain_grid() {
        assert_eq!(genus_handles(4, 4, 0), grid(4, 4));
    }

    #[test]
    fn handles_shrink_the_diameter() {
        let plain = grid(12, 12);
        let handled = genus_handles(12, 12, 6);
        assert!(diameter_exact(&handled) <= diameter_exact(&plain));
    }
}
