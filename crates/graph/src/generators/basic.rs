//! Small structured families: paths, cycles, stars, wheels, trees.

use crate::{Graph, GraphBuilder, NodeId};

/// The path on `n` nodes (`n - 1` edges, diameter `n - 1`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least one node");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..n {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i))
            .expect("consecutive nodes differ");
    }
    b.build()
}

/// The cycle on `n` nodes (diameter `⌊n/2⌋`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        b.add_edge(NodeId::new(i), NodeId::new((i + 1) % n))
            .expect("distinct nodes");
    }
    b.build()
}

/// The star with one hub (node 0) and `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least two nodes");
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..n {
        b.add_edge(NodeId::new(0), NodeId::new(i))
            .expect("hub differs from leaf");
    }
    b.build()
}

/// The wheel on `n` nodes: a hub (node 0) connected to every node of an
/// `(n - 1)`-cycle (nodes `1..n`). Planar, diameter 2, and the canonical
/// "shortcuts help enormously" instance: a contiguous arc of the rim has
/// induced diameter proportional to its length, yet a perfect `T`-restricted
/// shortcut with congestion 1 and block parameter 1 exists through the hub.
///
/// # Panics
///
/// Panics if `n < 5` (smaller wheels degenerate into multi-edges).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 5, "wheel needs at least five nodes");
    let rim = n - 1;
    let mut b = GraphBuilder::with_capacity(n, 2 * rim);
    for i in 0..rim {
        let a = NodeId::new(1 + i);
        let c = NodeId::new(1 + (i + 1) % rim);
        b.add_edge(a, c).expect("rim nodes differ");
        b.add_edge(NodeId::new(0), a).expect("hub differs from rim");
    }
    b.build()
}

/// The complete graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "complete graph needs at least one node");
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId::new(i), NodeId::new(j)).expect("i != j");
        }
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Nodes `0..spine` form the spine; the legs of spine node `i` are
/// numbered `spine + i * legs ..`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar needs a nonempty spine");
    let mut b = GraphBuilder::with_capacity(spine + spine * legs, spine - 1 + spine * legs);
    for i in 1..spine {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i))
            .expect("spine nodes differ");
    }
    for i in 0..spine {
        for l in 0..legs {
            b.add_edge(NodeId::new(i), NodeId::new(spine + i * legs + l))
                .expect("spine and leg differ");
        }
    }
    b.build()
}

/// The complete binary tree with `depth` levels of edges (so `2^(depth+1) - 1`
/// nodes). Node 0 is the root; node `i` has children `2i + 1` and `2i + 2`.
///
/// # Panics
///
/// Panics if `depth > 20` (the instance would not fit in memory budgets used
/// here).
pub fn binary_tree(depth: usize) -> Graph {
    assert!(depth <= 20, "binary tree depth {depth} too large");
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                b.add_edge(NodeId::new(i), NodeId::new(child))
                    .expect("parent differs from child");
            }
        }
    }
    b.build()
}

/// The lollipop graph: a clique on `clique` nodes with a path of `tail`
/// extra nodes attached to clique node 0. A classic "small diameter core,
/// long appendix" stress test.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 2, "lollipop needs a clique of at least two nodes");
    let mut b = GraphBuilder::with_capacity(clique + tail, clique * (clique - 1) / 2 + tail);
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge(NodeId::new(i), NodeId::new(j)).expect("i != j");
        }
    }
    for t in 0..tail {
        let prev = if t == 0 {
            NodeId::new(0)
        } else {
            NodeId::new(clique + t - 1)
        };
        b.add_edge(prev, NodeId::new(clique + t))
            .expect("tail nodes differ");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diameter_exact, is_connected};

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(7);
        assert_eq!(p.edge_count(), 6);
        assert_eq!(diameter_exact(&p), 6);
        let c = cycle(7);
        assert_eq!(c.edge_count(), 7);
        assert_eq!(diameter_exact(&c), 3);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn star_and_wheel_shapes() {
        let s = star(9);
        assert_eq!(s.edge_count(), 8);
        assert_eq!(s.degree(NodeId::new(0)), 8);
        assert_eq!(diameter_exact(&s), 2);

        let w = wheel(9);
        assert_eq!(w.node_count(), 9);
        assert_eq!(w.edge_count(), 8 + 8);
        assert_eq!(w.degree(NodeId::new(0)), 8);
        assert_eq!(diameter_exact(&w), 2);
        assert!(is_connected(&w));
    }

    #[test]
    fn complete_graph_edge_count() {
        let k = complete(6);
        assert_eq!(k.edge_count(), 15);
        assert_eq!(diameter_exact(&k), 1);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn caterpillar_shape() {
        let c = caterpillar(4, 3);
        assert_eq!(c.node_count(), 4 + 12);
        assert_eq!(c.edge_count(), 3 + 12);
        assert!(is_connected(&c));
        // Leaf-to-leaf across the spine.
        assert_eq!(diameter_exact(&c), 2 + 3);
    }

    #[test]
    fn binary_tree_shape() {
        let t = binary_tree(3);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.edge_count(), 14);
        assert_eq!(diameter_exact(&t), 6);
        assert_eq!(binary_tree(0).node_count(), 1);
    }

    #[test]
    fn lollipop_shape() {
        let l = lollipop(5, 4);
        assert_eq!(l.node_count(), 9);
        assert_eq!(l.edge_count(), 10 + 4);
        assert!(is_connected(&l));
        assert_eq!(diameter_exact(&l), 1 + 4);
    }

    #[test]
    #[should_panic(expected = "at least five")]
    fn tiny_wheel_rejected() {
        wheel(4);
    }
}
