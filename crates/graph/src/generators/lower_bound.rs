//! The classic `Ω̃(√n + D)` lower-bound instance.
//!
//! The construction (Peleg–Rubinovich / Das Sarma et al. style) consists of
//! `p` long node-disjoint paths plus a shallow "highway": one connector node
//! per column that is attached to every path at that column, with the
//! connectors linked by a balanced binary-tree overlay. The resulting graph
//! has diameter `O(log n)` while each path — the natural part of the
//! motivating partition — has diameter equal to its length.
//!
//! In the shortcut language: this is a family on which *no* shortcut with
//! `congestion + dilation = o(√n)` exists, so it serves as the negative
//! control for the experiments (the framework is expected *not* to help
//! here, matching the paper's discussion of the general-graph lower bound).

use crate::{Graph, GraphBuilder, NodeId};

/// Node-numbering metadata for [`lower_bound_graph`].
///
/// Path node `(i, j)` (path `i`, column `j`) has id `i * path_len + j`;
/// connector `j` has id `num_paths * path_len + j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBoundLayout {
    /// Number of disjoint paths `p`.
    pub num_paths: usize,
    /// Length (number of nodes) of each path.
    pub path_len: usize,
}

impl LowerBoundLayout {
    /// Node id of the `j`-th node on path `i`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn path_node(&self, path: usize, column: usize) -> NodeId {
        assert!(
            path < self.num_paths && column < self.path_len,
            "path coordinate out of range"
        );
        NodeId::new(path * self.path_len + column)
    }

    /// Node id of the highway connector above column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn connector(&self, column: usize) -> NodeId {
        assert!(column < self.path_len, "column out of range");
        NodeId::new(self.num_paths * self.path_len + column)
    }

    /// Total number of nodes in the instance.
    pub fn node_count(&self) -> usize {
        self.num_paths * self.path_len + self.path_len
    }
}

/// Builds the lower-bound instance and returns it with its layout.
///
/// The graph contains:
/// * `num_paths` horizontal paths of `path_len` nodes each,
/// * `path_len` connector nodes, connector `j` adjacent to node `j` of every
///   path,
/// * a balanced binary-tree overlay on the connectors (connector `j` is
///   adjacent to connector `(j - 1) / 2`), giving the connectors mutual
///   distance `O(log path_len)`.
///
/// # Panics
///
/// Panics if `num_paths == 0` or `path_len == 0`.
pub fn lower_bound_graph(num_paths: usize, path_len: usize) -> (Graph, LowerBoundLayout) {
    assert!(num_paths >= 1, "need at least one path");
    assert!(path_len >= 1, "paths need at least one node");
    let layout = LowerBoundLayout {
        num_paths,
        path_len,
    };
    // Exact edge count: the paths, one connector drop per path per column,
    // and the binary-tree overlay on the connectors.
    let edge_capacity =
        num_paths * (path_len - 1) + num_paths * path_len + path_len.saturating_sub(1);
    let mut b = GraphBuilder::with_capacity(layout.node_count(), edge_capacity);

    // The paths themselves.
    for i in 0..num_paths {
        for j in 1..path_len {
            b.add_edge(layout.path_node(i, j - 1), layout.path_node(i, j))
                .expect("consecutive path nodes differ");
        }
    }
    // Vertical attachment of every path node to its column connector.
    for i in 0..num_paths {
        for j in 0..path_len {
            b.add_edge(layout.path_node(i, j), layout.connector(j))
                .expect("path node differs from connector");
        }
    }
    // Binary-tree overlay on connectors (heap numbering).
    for j in 1..path_len {
        b.add_edge(layout.connector(j), layout.connector((j - 1) / 2))
            .expect("distinct connectors");
    }

    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diameter_exact, is_connected};

    #[test]
    fn counts_match_layout() {
        let (g, layout) = lower_bound_graph(6, 16);
        assert_eq!(g.node_count(), layout.node_count());
        assert_eq!(g.node_count(), 6 * 16 + 16);
        // Edges: paths 6*15, vertical 6*16, tree 15.
        assert_eq!(g.edge_count(), 90 + 96 + 15);
        assert!(is_connected(&g));
    }

    #[test]
    fn diameter_is_logarithmic_in_path_length() {
        let (g, _) = lower_bound_graph(8, 64);
        let d = diameter_exact(&g);
        // Any two nodes: ≤ 1 hop to a connector, ≤ 2 log2(64) hops through
        // the connector tree, 1 hop back down.
        assert!(d <= 2 + 2 * 6, "diameter {d} should be logarithmic");
        assert!(d >= 3);
    }

    #[test]
    fn paths_have_linear_induced_diameter() {
        let (g, layout) = lower_bound_graph(4, 32);
        let partition = crate::generators::partitions::lower_bound_paths(&layout);
        partition.validate(&g).unwrap();
        assert_eq!(partition.part_count(), 4);
        assert_eq!(partition.max_part_diameter(&g), 31);
    }

    #[test]
    fn layout_accessors_are_consistent_with_adjacency() {
        let (g, layout) = lower_bound_graph(3, 8);
        // Path edges exist.
        assert!(g.has_edge(layout.path_node(1, 3), layout.path_node(1, 4)));
        // Vertical edges exist.
        assert!(g.has_edge(layout.path_node(2, 5), layout.connector(5)));
        // Connector tree edges exist.
        assert!(g.has_edge(layout.connector(5), layout.connector(2)));
        // Paths are disjoint: no edge between different paths directly.
        assert!(!g.has_edge(layout.path_node(0, 3), layout.path_node(1, 3)));
    }

    #[test]
    fn degenerate_single_column() {
        let (g, layout) = lower_bound_graph(3, 1);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(layout.connector(0), NodeId::new(3));
    }
}
