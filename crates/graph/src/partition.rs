//! Node partitions: disjoint, individually connected parts.
//!
//! A [`Partition`] is the object low-congestion shortcuts are built *for*:
//! the graph's node set is subdivided into disjoint parts `P_1, …, P_N`,
//! each inducing a connected subgraph `G[P_i]`. Nodes are allowed to belong
//! to no part at all (the paper's construction algorithms explicitly handle
//! nodes outside every part, e.g. the "highway" nodes of the lower-bound
//! instance).

use std::collections::VecDeque;

use crate::traversal::{bfs_filtered, induces_connected_subgraph};
use crate::{Graph, GraphError, NodeId, PartId, Result};

/// A family of disjoint, individually connected node parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `part_of[v]` is the part containing `v`, or `None` if `v` is in no
    /// part.
    part_of: Vec<Option<PartId>>,
    /// `members[i]` are the nodes of part `i`, in insertion order.
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Builds a partition from a per-node assignment.
    ///
    /// Parts must be referenced densely: if any node maps to part `i`, then
    /// for every `j < i` some node maps to part `j`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyPart`] if the assignment skips a part id.
    pub fn from_assignment(node_count: usize, assignment: Vec<Option<PartId>>) -> Result<Self> {
        assert_eq!(
            assignment.len(),
            node_count,
            "assignment length must equal node count"
        );
        let part_count = assignment
            .iter()
            .flatten()
            .map(|p| p.index() + 1)
            .max()
            .unwrap_or(0);
        let mut members = vec![Vec::new(); part_count];
        for (v, part) in assignment.iter().enumerate() {
            if let Some(p) = part {
                members[p.index()].push(NodeId::new(v));
            }
        }
        for (i, m) in members.iter().enumerate() {
            if m.is_empty() {
                return Err(GraphError::EmptyPart {
                    part: PartId::new(i),
                });
            }
        }
        Ok(Partition {
            part_of: assignment,
            members,
        })
    }

    /// Builds the trivial partition in which every node is its own part
    /// (the starting point of Boruvka's algorithm).
    pub fn singletons(graph: &Graph) -> Self {
        let assignment = (0..graph.node_count())
            .map(|v| Some(PartId::new(v)))
            .collect();
        Partition::from_assignment(graph.node_count(), assignment)
            .expect("singleton assignment is dense and nonempty")
    }

    /// Number of parts `N`.
    pub fn part_count(&self) -> usize {
        self.members.len()
    }

    /// Number of nodes the partition was defined over.
    pub fn node_count(&self) -> usize {
        self.part_of.len()
    }

    /// The part containing `v`, or `None` if `v` belongs to no part.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part_of(&self, v: NodeId) -> Option<PartId> {
        self.part_of[v.index()]
    }

    /// Members of part `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn members(&self, p: PartId) -> &[NodeId] {
        &self.members[p.index()]
    }

    /// Iterator over all part ids.
    pub fn parts(&self) -> impl Iterator<Item = PartId> + '_ {
        (0..self.part_count()).map(PartId::new)
    }

    /// Number of nodes assigned to some part.
    pub fn assigned_count(&self) -> usize {
        self.part_of.iter().flatten().count()
    }

    /// Size of the largest part.
    pub fn max_part_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validates the partition against a graph: every part must be nonempty
    /// and induce a connected subgraph, and the assignment must be
    /// consistent with the member lists.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::PartNotConnected`] for the first disconnected
    /// part found, or [`GraphError::NodeOutOfRange`] if the partition was
    /// built for a different node count.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        if self.part_of.len() != graph.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(self.part_of.len().saturating_sub(1)),
                node_count: graph.node_count(),
            });
        }
        for p in self.parts() {
            if self.members(p).is_empty() {
                return Err(GraphError::EmptyPart { part: p });
            }
            if !induces_connected_subgraph(graph, self.members(p)) {
                return Err(GraphError::PartNotConnected { part: p });
            }
        }
        Ok(())
    }

    /// Diameter of the induced subgraph `G[P_i]` (the "part diameter" the
    /// paper's introduction is concerned with).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or the part is not connected in
    /// `graph`.
    pub fn part_diameter(&self, graph: &Graph, p: PartId) -> u32 {
        let members = self.members(p);
        let mut in_part = vec![false; graph.node_count()];
        for &v in members {
            in_part[v.index()] = true;
        }
        let mut diameter = 0;
        for &v in members {
            let r = bfs_filtered(graph, v, |u| in_part[u.index()]);
            for &u in members {
                match r.dist[u.index()] {
                    Some(d) => diameter = diameter.max(d),
                    None => panic!("part {p} is not connected in the given graph"),
                }
            }
        }
        diameter
    }

    /// The largest part diameter over all parts.
    pub fn max_part_diameter(&self, graph: &Graph) -> u32 {
        self.parts()
            .map(|p| self.part_diameter(graph, p))
            .max()
            .unwrap_or(0)
    }
}

/// Incremental builder for [`Partition`].
///
/// # Example
///
/// ```
/// use lcs_graph::{generators, NodeId, PartitionBuilder};
///
/// let graph = generators::path(4);
/// let mut b = PartitionBuilder::new(graph.node_count());
/// b.add_part(vec![NodeId::new(0), NodeId::new(1)]).unwrap();
/// b.add_part(vec![NodeId::new(3)]).unwrap();
/// let partition = b.build();
/// assert_eq!(partition.part_count(), 2);
/// assert_eq!(partition.part_of(NodeId::new(2)), None);
/// partition.validate(&graph).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct PartitionBuilder {
    node_count: usize,
    assignment: Vec<Option<PartId>>,
    next_part: usize,
}

impl PartitionBuilder {
    /// Creates a builder for a graph with `node_count` nodes and no parts.
    pub fn new(node_count: usize) -> Self {
        PartitionBuilder {
            node_count,
            assignment: vec![None; node_count],
            next_part: 0,
        }
    }

    /// Adds a new part with the given members and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyPart`] if `members` is empty,
    /// [`GraphError::NodeOutOfRange`] if a member does not exist, and
    /// [`GraphError::OverlappingParts`] if a member already belongs to a
    /// part.
    pub fn add_part(&mut self, members: Vec<NodeId>) -> Result<PartId> {
        let part = PartId::new(self.next_part);
        if members.is_empty() {
            return Err(GraphError::EmptyPart { part });
        }
        for &v in &members {
            if v.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: self.node_count,
                });
            }
            if let Some(first) = self.assignment[v.index()] {
                return Err(GraphError::OverlappingParts {
                    node: v,
                    first,
                    second: part,
                });
            }
        }
        for &v in &members {
            self.assignment[v.index()] = Some(part);
        }
        self.next_part += 1;
        Ok(part)
    }

    /// Finalizes the builder.
    pub fn build(self) -> Partition {
        Partition::from_assignment(self.node_count, self.assignment)
            .expect("builder assigns parts densely")
    }
}

/// Grows `num_parts` parts by multi-source BFS from the given seed nodes.
/// Every node ends up in exactly one part (the one whose BFS wave reached it
/// first, ties broken by part id); each part is connected by construction.
///
/// # Panics
///
/// Panics if `seeds` is empty, contains duplicates, or references nodes out
/// of range.
pub fn bfs_ball_partition(graph: &Graph, seeds: &[NodeId]) -> Partition {
    assert!(!seeds.is_empty(), "at least one seed is required");
    let n = graph.node_count();
    let mut part_of: Vec<Option<PartId>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, &s) in seeds.iter().enumerate() {
        assert!(s.index() < n, "seed {s} out of range");
        assert!(part_of[s.index()].is_none(), "duplicate seed {s}");
        part_of[s.index()] = Some(PartId::new(i));
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        let part = part_of[u.index()];
        for (v, _) in graph.neighbors(u) {
            if part_of[v.index()].is_none() {
                part_of[v.index()] = part;
                queue.push_back(v);
            }
        }
    }
    Partition::from_assignment(n, part_of).expect("every seed claims at least itself")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn singleton_partition_covers_every_node() {
        let g = generators::grid(3, 3);
        let p = Partition::singletons(&g);
        assert_eq!(p.part_count(), 9);
        assert_eq!(p.assigned_count(), 9);
        assert_eq!(p.max_part_size(), 1);
        p.validate(&g).unwrap();
        for v in g.nodes() {
            assert_eq!(p.part_of(v), Some(PartId::new(v.index())));
            assert_eq!(p.members(PartId::new(v.index())), &[v]);
        }
    }

    #[test]
    fn builder_detects_overlap_and_empty_parts() {
        let mut b = PartitionBuilder::new(4);
        b.add_part(vec![NodeId::new(0), NodeId::new(1)]).unwrap();
        let err = b.add_part(vec![NodeId::new(1)]).unwrap_err();
        assert!(matches!(err, GraphError::OverlappingParts { .. }));
        let err = b.add_part(vec![]).unwrap_err();
        assert!(matches!(err, GraphError::EmptyPart { .. }));
        let err = b.add_part(vec![NodeId::new(9)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn validation_rejects_disconnected_part() {
        let g = generators::path(5);
        let mut b = PartitionBuilder::new(5);
        // Nodes 0 and 4 are not adjacent in the path: disconnected part.
        b.add_part(vec![NodeId::new(0), NodeId::new(4)]).unwrap();
        let p = b.build();
        assert_eq!(
            p.validate(&g).unwrap_err(),
            GraphError::PartNotConnected {
                part: PartId::new(0)
            }
        );
    }

    #[test]
    fn part_diameter_is_induced_not_ambient() {
        // On a cycle of 8 nodes, the arc {0,1,2,3} has induced diameter 3
        // even though in the full cycle node 0 and node 3 are 3 apart too;
        // but the arc {7,0,1} has induced diameter 2 while using the whole
        // cycle it would also be 2. Use a wheel to get a real difference:
        // spokes shorten ambient distances but are not inside the part.
        let g = generators::wheel(10);
        let arcs = generators::partitions::wheel_arcs(10, 3);
        arcs.validate(&g).unwrap();
        let d0 = arcs.part_diameter(&g, PartId::new(0));
        // Ambient diameter of the wheel is 2; the arc's induced diameter is
        // its length.
        assert!(d0 >= 2);
        assert!(arcs.max_part_diameter(&g) >= 2);
    }

    #[test]
    fn from_assignment_rejects_skipped_part_ids() {
        // Part 1 referenced but part 0 never used.
        let assignment = vec![Some(PartId::new(1)), None];
        let err = Partition::from_assignment(2, assignment).unwrap_err();
        assert_eq!(
            err,
            GraphError::EmptyPart {
                part: PartId::new(0)
            }
        );
    }

    #[test]
    fn bfs_ball_partition_covers_graph_with_connected_parts() {
        let g = generators::grid(8, 8);
        let seeds = vec![NodeId::new(0), NodeId::new(63), NodeId::new(28)];
        let p = bfs_ball_partition(&g, &seeds);
        assert_eq!(p.part_count(), 3);
        assert_eq!(p.assigned_count(), 64);
        p.validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate seed")]
    fn bfs_ball_partition_rejects_duplicate_seeds() {
        let g = generators::grid(2, 2);
        bfs_ball_partition(&g, &[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn partition_mismatched_with_graph_fails_validation() {
        let g5 = generators::path(5);
        let g3 = generators::path(3);
        let p = Partition::singletons(&g5);
        assert!(p.validate(&g3).is_err());
    }
}
