//! Contiguous node sharding for parallel engines.
//!
//! The CSR layout (see [`crate::Graph`]) stores every node's adjacency in
//! one flat array, ordered by node id. A [`ShardMap`] cuts the node range
//! `0..n` into `S` contiguous intervals, so each shard also owns a
//! contiguous interval of the CSR arrays — the property the sharded CONGEST
//! engine relies on to give every worker thread an exclusive, cache-linear
//! mailbox region. Shard boundaries only affect *where* work executes,
//! never *what* is computed: every consumer of a `ShardMap` must produce
//! results independent of the shard count.

use crate::{Graph, LcsError, NodeId};

/// A partition of the node ids `0..n` into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `starts[s]..starts[s + 1]` is shard `s`'s node range. Length
    /// `shard_count + 1`; `starts[0] == 0` and the last entry is `n`.
    starts: Vec<u32>,
    /// Node → shard lookup, `n` entries. O(1) on the posting hot path.
    shard_of: Vec<u32>,
}

impl ShardMap {
    fn from_starts(starts: Vec<u32>) -> Self {
        let n = *starts.last().expect("starts is nonempty") as usize;
        let mut shard_of = vec![0u32; n];
        for s in 0..starts.len() - 1 {
            for v in starts[s]..starts[s + 1] {
                shard_of[v as usize] = s as u32;
            }
        }
        ShardMap { starts, shard_of }
    }

    /// Splits `0..node_count` into at most `shard_count` equally sized
    /// contiguous ranges (the last shards are one node smaller when the
    /// division is not exact). The number of shards is capped at
    /// `node_count` so every shard is nonempty, except that an empty graph
    /// yields a single empty shard.
    pub fn even(node_count: usize, shard_count: usize) -> Self {
        let s = shard_count.max(1).min(node_count.max(1));
        let mut starts = Vec::with_capacity(s + 1);
        for k in 0..=s {
            starts.push((node_count * k / s) as u32);
        }
        Self::from_starts(starts)
    }

    /// Splits the graph's nodes into at most `shard_count` contiguous
    /// ranges of roughly equal *volume* (nodes plus incident edge slots) —
    /// the quantity that actually bounds a shard's per-round work. Shards
    /// of a star graph's hub, for example, come out much smaller in node
    /// count than its leaf shards.
    pub fn by_volume(graph: &Graph, shard_count: usize) -> Self {
        let n = graph.node_count();
        let s = shard_count.max(1).min(n.max(1));
        let total: u64 = (n + 2 * graph.edge_count()) as u64;
        let mut starts = Vec::with_capacity(s + 1);
        starts.push(0u32);
        let mut acc: u64 = 0;
        let mut v = 0usize;
        for k in 1..s {
            // Close shard k-1 at the first node where the running volume
            // reaches the k-th equal share, leaving at least one node for
            // every remaining shard.
            let target = total * k as u64 / s as u64;
            let last_start = n - (s - k);
            while v < last_start && (acc < target || v < starts[k - 1] as usize + 1) {
                acc += 1 + graph.degree(NodeId::new(v)) as u64;
                v += 1;
            }
            starts.push(v as u32);
        }
        starts.push(n as u32);
        Self::from_starts(starts)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of nodes covered by the map.
    pub fn node_count(&self) -> usize {
        *self.starts.last().expect("starts is nonempty") as usize
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// The node range of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.starts[s] as usize..self.starts[s + 1] as usize
    }
}

/// The workspace-wide thread-count default: the `LCS_THREADS` environment
/// variable when set to a positive integer, otherwise `1` (serial). Both
/// the CONGEST simulator's engine selection and the parallel quality
/// measurements consult this, so one variable switches the whole pipeline —
/// which is what lets CI run the identical test suite once per engine.
///
/// This function is the *only* place in the workspace that reads
/// `LCS_THREADS`; everything downstream receives the count as a value (a
/// [`Threads`] or a plain `usize`). Because the ambient environment cannot
/// report errors to a caller, a malformed value here falls back to serial;
/// surfaces that *can* reject bad input — CLI flags, the `lcs_api` builder
/// — parse through [`Threads::parse`], which turns zero or non-numeric
/// counts into a clear error instead.
pub fn configured_threads() -> usize {
    threads_from(std::env::var("LCS_THREADS").ok().as_deref())
}

/// A worker-thread count carried as a value through the pipeline instead
/// of re-reading `LCS_THREADS` at every call site.
///
/// `Auto` defers to [`configured_threads`] at resolution time; `Fixed(n)`
/// pins the count. Construct a `Fixed` from untrusted text with
/// [`Threads::parse`], which rejects zero and non-numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Resolve from the `LCS_THREADS` environment variable (the default).
    #[default]
    Auto,
    /// A fixed worker count; must be at least 1 (enforced by
    /// [`Threads::parse`] and clamped by [`Threads::resolve`]).
    Fixed(usize),
}

impl Threads {
    /// Strictly parses a thread count: a positive integer is accepted,
    /// anything else — zero, negative, empty, or non-numeric — is a
    /// [`LcsError::Config`] naming the offending value. This is the
    /// parsing rule for surfaces that can report errors (the experiments
    /// binary's `--threads` flag, the `lcs_api` pipeline builder); the
    /// ambient `LCS_THREADS` fallback in [`configured_threads`] stays
    /// lenient because the environment has no error channel.
    pub fn parse(value: &str) -> Result<Threads, LcsError> {
        match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Threads::Fixed(n)),
            Ok(_) => Err(LcsError::Config {
                reason: "thread count must be at least 1 (got 0)".to_string(),
            }),
            Err(_) => Err(LcsError::Config {
                reason: format!("thread count must be a positive integer, got `{value}`"),
            }),
        }
    }

    /// Resolves to a concrete worker count: `Auto` consults
    /// [`configured_threads`], `Fixed(n)` clamps to at least 1.
    pub fn resolve(self) -> usize {
        match self {
            Threads::Auto => configured_threads(),
            Threads::Fixed(n) => n.max(1),
        }
    }
}

/// The `LCS_THREADS` parsing rule, separated from the ambient environment
/// so the fallback behavior stays testable even when the test process
/// itself runs under `LCS_THREADS` (as the CI engine matrix does): a
/// positive integer is taken as-is, anything else — unset, garbage, or
/// zero — falls back to 1, never 0.
fn threads_from(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn even_split_covers_all_nodes_contiguously() {
        let map = ShardMap::even(10, 3);
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.node_count(), 10);
        let mut covered = 0;
        for s in 0..map.shard_count() {
            let r = map.range(s);
            assert_eq!(r.start, covered);
            for v in r.clone() {
                assert_eq!(map.shard_of(NodeId::new(v)), s);
            }
            covered = r.end;
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn shard_count_is_capped_at_node_count() {
        let map = ShardMap::even(2, 8);
        assert_eq!(map.shard_count(), 2);
        let map = ShardMap::by_volume(&generators::path(3), 8);
        assert_eq!(map.shard_count(), 3);
        for s in 0..3 {
            assert_eq!(map.range(s).len(), 1);
        }
    }

    #[test]
    fn empty_graph_gets_a_single_empty_shard() {
        let map = ShardMap::even(0, 4);
        assert_eq!(map.shard_count(), 1);
        assert_eq!(map.range(0), 0..0);
    }

    #[test]
    fn volume_split_balances_a_skewed_degree_sequence() {
        // Wheel: the hub carries half the volume. A volume split puts the
        // hub (node 0) in a small first shard instead of n/S nodes.
        let g = generators::wheel(257);
        let map = ShardMap::by_volume(&g, 4);
        assert_eq!(map.shard_count(), 4);
        assert_eq!(map.node_count(), g.node_count());
        let volume = |r: std::ops::Range<usize>| -> u64 {
            r.map(|v| 1 + g.degree(NodeId::new(v)) as u64).sum()
        };
        let first = map.range(0);
        assert!(first.contains(&0));
        assert!(first.len() < g.node_count() / 4);
        // No shard exceeds twice the ideal share.
        let total: u64 = volume(0..g.node_count());
        for s in 0..map.shard_count() {
            assert!(volume(map.range(s)) <= total / 2);
        }
    }

    #[test]
    fn every_shard_is_nonempty_for_any_requested_count() {
        for n in 1..40usize {
            for s in 1..10usize {
                let g = generators::path(n);
                let map = ShardMap::by_volume(&g, s);
                for k in 0..map.shard_count() {
                    assert!(!map.range(k).is_empty(), "n={n} s={s} shard {k}");
                }
                assert_eq!(map.node_count(), n);
            }
        }
    }

    #[test]
    fn strict_parse_rejects_zero_and_garbage() {
        assert_eq!(Threads::parse("4"), Ok(Threads::Fixed(4)));
        assert_eq!(Threads::parse(" 8 "), Ok(Threads::Fixed(8)));
        for bad in ["0", "", "zero", "-3", "1.5"] {
            let err = Threads::parse(bad).unwrap_err();
            assert!(
                matches!(err, LcsError::Config { .. }),
                "`{bad}` must be rejected as a config error, got {err:?}"
            );
        }
        assert!(Threads::parse("0")
            .unwrap_err()
            .to_string()
            .contains("got 0"));
        assert!(Threads::parse("x").unwrap_err().to_string().contains("`x`"));
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(Threads::Fixed(4).resolve(), 4);
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert!(Threads::Auto.resolve() >= 1);
        assert_eq!(Threads::default(), Threads::Auto);
    }

    #[test]
    fn thread_parsing_falls_back_to_serial() {
        // The fallback must be 1 (never 0) for unset, garbage, and zero
        // values; tested against controlled inputs because the ambient
        // environment may legitimately carry LCS_THREADS (the CI engine
        // matrix exports it for the whole test run).
        assert_eq!(threads_from(None), 1);
        assert_eq!(threads_from(Some("")), 1);
        assert_eq!(threads_from(Some("zero")), 1);
        assert_eq!(threads_from(Some("0")), 1);
        assert_eq!(threads_from(Some("-3")), 1);
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 8 ")), 8);
        assert!(configured_threads() >= 1);
    }
}
