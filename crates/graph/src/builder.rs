//! Incremental graph construction.

use std::collections::HashSet;

use crate::graph::Edge;
use crate::{Graph, GraphError, NodeId, Result};

/// Incremental builder for [`Graph`].
///
/// The builder tolerates edges being added before their endpoints exist (it
/// grows the node count as needed) and silently ignores exact duplicate
/// edges, which makes writing generators much less error-prone than the
/// strict [`Graph::from_edges`] constructor.
///
/// # Example
///
/// ```
/// use lcs_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_node();
/// let v = b.add_node();
/// b.add_edge(u, v).unwrap();
/// let graph = b.build();
/// assert_eq!(graph.node_count(), 2);
/// assert_eq!(graph.edge_count(), 1);
/// assert!(graph.has_edge(NodeId::new(0), NodeId::new(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<Edge>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `node_count` isolated nodes.
    pub fn with_nodes(node_count: usize) -> Self {
        Self::with_capacity(node_count, 0)
    }

    /// Creates a builder with `node_count` isolated nodes and room for
    /// `edge_capacity` edges. Generators that know their exact edge count
    /// use this to avoid reallocation during construction.
    pub fn with_capacity(node_count: usize, edge_capacity: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::with_capacity(edge_capacity),
            seen: HashSet::with_capacity(edge_capacity),
        }
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.node_count);
        self.node_count += 1;
        id
    }

    /// Ensures the builder has at least `count` nodes.
    pub fn ensure_nodes(&mut self, count: usize) {
        self.node_count = self.node_count.max(count);
    }

    /// Current number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Current number of (distinct) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge, growing the node count if necessary.
    ///
    /// Duplicate edges are ignored; the call still succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        self.ensure_nodes(a.index().max(b.index()) + 1);
        let edge = Edge::new(a, b);
        if self.seen.insert((edge.u, edge.v)) {
            self.edges.push(edge);
        }
        Ok(())
    }

    /// Returns `true` if the (undirected) edge is already present.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.seen.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// The builder has already normalized and deduplicated its edges, so
    /// this goes straight to the CSR construction without re-validating.
    pub fn build(self) -> Graph {
        Graph::from_deduped_edges(self.node_count, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_grows_nodes_on_demand() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId::new(3), NodeId::new(7)).unwrap();
        assert_eq!(b.node_count(), 8);
        let g = b.build();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(0)).unwrap();
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(NodeId::new(1), NodeId::new(0)));
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut b = GraphBuilder::with_nodes(1);
        let err = b.add_edge(NodeId::new(0), NodeId::new(0)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(0)
            }
        );
    }

    #[test]
    fn with_nodes_creates_isolated_nodes() {
        let g = GraphBuilder::with_nodes(5).build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_node_returns_sequential_ids() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.add_node(), NodeId::new(0));
        assert_eq!(b.add_node(), NodeId::new(1));
        assert_eq!(b.add_node(), NodeId::new(2));
    }
}
