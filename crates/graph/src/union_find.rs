//! Disjoint-set (union-find) data structure.

/// A union-find structure over `0..len` with path compression and union by
/// rank.
///
/// Used by the centralized Kruskal reference MST, connectivity checks, and by
/// tests that validate the distributed algorithms.
///
/// # Example
///
/// ```
/// use lcs_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates a union-find over `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            rank: vec![0; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if the sets were distinct (a merge happened).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.find(1), 1);
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_count(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn union_of_joined_elements_is_noop() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn chain_unions_compress_paths() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.set_count(), 1);
        for i in 0..n {
            assert_eq!(uf.find(i), uf.find(0));
        }
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
