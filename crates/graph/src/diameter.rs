//! Diameter and eccentricity computations.
//!
//! The paper's round bounds are stated in terms of the network diameter `D`
//! (equivalently the depth of a BFS tree, up to a factor 2). The experiment
//! harness needs exact diameters for the synthetic families, and a cheap
//! lower bound for large instances.

use crate::traversal::bfs_distances;
use crate::{Graph, NodeId};

/// Eccentricity of `v`: the largest hop distance from `v` to any reachable
/// node.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn eccentricity(graph: &Graph, v: NodeId) -> u32 {
    bfs_distances(graph, v).max_distance()
}

/// Exact diameter via all-pairs BFS (`O(n · m)`).
///
/// Only intended for the moderate instance sizes used in tests and
/// experiments. Returns 0 for graphs with fewer than two nodes. Unreachable
/// pairs are ignored (the diameter of the largest component is returned).
pub fn diameter_exact(graph: &Graph) -> u32 {
    graph
        .nodes()
        .map(|v| eccentricity(graph, v))
        .max()
        .unwrap_or(0)
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Exact on trees, a lower bound in general, and
/// much cheaper than [`diameter_exact`].
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn diameter_lower_bound_double_sweep(graph: &Graph, start: NodeId) -> u32 {
    if graph.node_count() == 0 {
        return 0;
    }
    let first = bfs_distances(graph, start);
    let farthest = first.order.last().copied().unwrap_or(start);
    bfs_distances(graph, farthest).max_distance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_diameter() {
        let g = generators::path(10);
        assert_eq!(diameter_exact(&g), 9);
        assert_eq!(diameter_lower_bound_double_sweep(&g, NodeId::new(4)), 9);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 9);
        assert_eq!(eccentricity(&g, NodeId::new(5)), 5);
    }

    #[test]
    fn cycle_diameter_is_half_length() {
        let g = generators::cycle(12);
        assert_eq!(diameter_exact(&g), 6);
        let g = generators::cycle(13);
        assert_eq!(diameter_exact(&g), 6);
    }

    #[test]
    fn grid_diameter_is_manhattan_extent() {
        let g = generators::grid(4, 7);
        assert_eq!(diameter_exact(&g), 3 + 6);
    }

    #[test]
    fn wheel_diameter_is_two() {
        let g = generators::wheel(20);
        assert_eq!(diameter_exact(&g), 2);
    }

    #[test]
    fn double_sweep_is_a_lower_bound() {
        let g = generators::grid(5, 5);
        let exact = diameter_exact(&g);
        let lb = diameter_lower_bound_double_sweep(&g, NodeId::new(12));
        assert!(lb <= exact);
        // On a grid the double sweep from the center actually finds the true
        // diameter because a corner is the farthest node.
        assert_eq!(lb, exact);
    }

    #[test]
    fn degenerate_graphs() {
        let g = crate::Graph::from_edges(1, &[]).unwrap();
        assert_eq!(diameter_exact(&g), 0);
        let g = crate::Graph::from_edges(0, &[]).unwrap();
        assert_eq!(diameter_exact(&g), 0);
    }
}
