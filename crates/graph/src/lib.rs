//! Graph substrate for the low-congestion shortcuts reproduction.
//!
//! This crate provides every graph-theoretic building block the rest of the
//! workspace relies on:
//!
//! * [`Graph`] — a compact undirected simple-graph representation
//!   with stable [`NodeId`] / [`EdgeId`] identifiers,
//! * [`GraphBuilder`] — incremental construction with duplicate-edge checks,
//! * [`RootedTree`] — rooted spanning trees (BFS trees in particular) with
//!   parent/depth/children access patterns used heavily by the shortcut
//!   framework,
//! * [`Partition`] — disjoint, individually connected node parts
//!   (the objects that shortcuts are built *for*),
//! * [`ShardMap`] — contiguous node sharding for the parallel engines
//!   (plus [`configured_threads`], the `LCS_THREADS` workspace knob, and
//!   [`Threads`], the value type that carries the count through the
//!   pipeline),
//! * [`LcsError`] — the workspace-wide unified error the `lcs_api` façade
//!   surfaces; every crate converts its own error enum into it,
//! * [`generators`] — synthetic network families used throughout the
//!   experiments (grids, tori, genus-`g` handle graphs, wheels, paths,
//!   random graphs, and the classic lower-bound construction),
//! * centralized reference algorithms: BFS/DFS, diameter, connected
//!   components, union-find and Kruskal/Prim MST (used as ground truth when
//!   validating the distributed algorithms).
//!
//! # Example
//!
//! ```
//! use lcs_graph::{generators, NodeId, RootedTree};
//!
//! // An 8x8 planar grid with a BFS spanning tree rooted at node 0.
//! let graph = generators::grid(8, 8);
//! let tree = RootedTree::bfs(&graph, NodeId::new(0));
//! assert_eq!(tree.depth_of_tree(), 14);
//!
//! // Partition the grid into its columns; every column is connected.
//! let partition = generators::partitions::grid_columns(8, 8);
//! partition.validate(&graph).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod delta;
mod diameter;
mod error;
mod graph;
mod ids;
mod mst;
mod partition;
mod sharding;
mod traversal;
mod tree;
mod unified_error;
mod union_find;
mod weights;

pub mod generators;

pub use builder::GraphBuilder;
pub use delta::{AppliedDelta, DeltaOp, PartSet, PartitionDelta};
pub use diameter::{diameter_exact, diameter_lower_bound_double_sweep, eccentricity};
pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use ids::{EdgeId, NodeId, PartId};
pub use mst::{kruskal_mst, mst_weight, prim_mst};
pub use partition::{Partition, PartitionBuilder};
pub use sharding::{configured_threads, ShardMap, Threads};
pub use traversal::{bfs_distances, bfs_order, connected_components, is_connected, BfsResult};
pub use tree::RootedTree;
pub use unified_error::{LcsError, LcsResult};
pub use union_find::UnionFind;
pub use weights::EdgeWeights;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
