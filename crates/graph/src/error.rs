//! Error type shared by graph construction and validation routines.

use std::error::Error;
use std::fmt;

use crate::{NodeId, PartId};

/// Errors produced while building or validating graphs and partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a node that does not exist.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop was supplied; the CONGEST model works on simple graphs.
    SelfLoop {
        /// The node that was connected to itself.
        node: NodeId,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// The graph is not connected but the operation requires connectivity.
    NotConnected,
    /// A partition part induced a disconnected subgraph.
    PartNotConnected {
        /// The offending part.
        part: PartId,
    },
    /// A node was assigned to two different parts.
    OverlappingParts {
        /// The node assigned twice.
        node: NodeId,
        /// The part it already belonged to.
        first: PartId,
        /// The part it was also assigned to.
        second: PartId,
    },
    /// A partition references a part id with no members.
    EmptyPart {
        /// The empty part.
        part: PartId,
    },
    /// Edge weights were supplied for a different number of edges.
    WeightCountMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of edges in the graph.
        edges: usize,
    },
    /// A generator was asked for a degenerate size (for example a 0×k grid).
    InvalidGeneratorArgument {
        /// Human readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::PartNotConnected { part } => {
                write!(f, "part {part} induces a disconnected subgraph")
            }
            GraphError::OverlappingParts {
                node,
                first,
                second,
            } => {
                write!(
                    f,
                    "node {node} assigned to both part {first} and part {second}"
                )
            }
            GraphError::EmptyPart { part } => write!(f, "part {part} has no members"),
            GraphError::WeightCountMismatch { weights, edges } => {
                write!(
                    f,
                    "{weights} edge weights supplied for a graph with {edges} edges"
                )
            }
            GraphError::InvalidGeneratorArgument { reason } => {
                write!(f, "invalid generator argument: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = GraphError::SelfLoop {
            node: NodeId::new(3),
        };
        assert_eq!(err.to_string(), "self-loop at node v3");

        let err = GraphError::WeightCountMismatch {
            weights: 2,
            edges: 5,
        };
        assert!(err.to_string().contains("2 edge weights"));

        let err = GraphError::OverlappingParts {
            node: NodeId::new(1),
            first: PartId::new(0),
            second: PartId::new(2),
        };
        assert!(err.to_string().contains("both part P0 and part P2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
