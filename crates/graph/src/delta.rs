//! Incremental partition edits: [`PartitionDelta`] and the dirty-part
//! closure.
//!
//! A delta is a sequence of edit ops (move nodes, split, merge, add,
//! remove) applied to a [`Partition`]. [`Partition::apply`] validates every
//! op against the intermediate state and produces the edited partition;
//! [`Partition::apply_tracked`] additionally reports which new parts are
//! *dirty* (their member set or induced edge set changed) and, for every
//! clean part, which old part it descends from unchanged — the origin map
//! an incremental repair uses to reuse cached per-part state verbatim.
//!
//! Part ids are positional: removing or absorbing a part renumbers the last
//! part into the freed id (swap-remove), exactly like `Vec::swap_remove`.
//! Renumbering alone does not dirty a part — its member set is untouched —
//! which is why the origin map, not id equality, is the reuse criterion.
//!
//! All structural violations (out-of-range ids, moving a node that is not
//! where the op claims, emptying a part by moving or splitting) surface as
//! typed [`LcsError::Config`] errors; nothing is applied partially.

use crate::{Graph, LcsError, LcsResult, NodeId, PartId, Partition};

/// One edit op of a [`PartitionDelta`]. Ops apply sequentially; part ids
/// refer to the intermediate partition produced by the preceding ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Move each node to part `to` (from whatever part currently holds it).
    MoveNodes {
        /// The nodes to move; each must currently belong to some part
        /// other than `to`.
        nodes: Vec<NodeId>,
        /// The destination part.
        to: PartId,
    },
    /// Carve `nodes` out of `part` into a new part appended at the end.
    SplitPart {
        /// The part to split.
        part: PartId,
        /// The members to carve out (a proper, nonempty subset).
        nodes: Vec<NodeId>,
    },
    /// Absorb every member of `absorb` into `keep`, removing `absorb`
    /// (the last part is renumbered into the freed id).
    MergeParts {
        /// The surviving part.
        keep: PartId,
        /// The part dissolved into `keep`.
        absorb: PartId,
    },
    /// Create a new part from currently unassigned nodes.
    AddPart {
        /// The members of the new part; each must belong to no part.
        nodes: Vec<NodeId>,
    },
    /// Remove a part, leaving its members unassigned (the last part is
    /// renumbered into the freed id).
    RemovePart {
        /// The part to remove.
        part: PartId,
    },
}

/// An ordered sequence of [`DeltaOp`]s to apply to a [`Partition`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionDelta {
    ops: Vec<DeltaOp>,
}

impl PartitionDelta {
    /// The empty delta (applying it reproduces the partition unchanged).
    pub fn new() -> Self {
        PartitionDelta::default()
    }

    /// Appends a [`DeltaOp::MoveNodes`] op (builder style).
    pub fn move_nodes(mut self, nodes: Vec<NodeId>, to: PartId) -> Self {
        self.ops.push(DeltaOp::MoveNodes { nodes, to });
        self
    }

    /// Appends a [`DeltaOp::SplitPart`] op (builder style).
    pub fn split_part(mut self, part: PartId, nodes: Vec<NodeId>) -> Self {
        self.ops.push(DeltaOp::SplitPart { part, nodes });
        self
    }

    /// Appends a [`DeltaOp::MergeParts`] op (builder style).
    pub fn merge_parts(mut self, keep: PartId, absorb: PartId) -> Self {
        self.ops.push(DeltaOp::MergeParts { keep, absorb });
        self
    }

    /// Appends a [`DeltaOp::AddPart`] op (builder style).
    pub fn add_part(mut self, nodes: Vec<NodeId>) -> Self {
        self.ops.push(DeltaOp::AddPart { nodes });
        self
    }

    /// Appends a [`DeltaOp::RemovePart`] op (builder style).
    pub fn remove_part(mut self, part: PartId) -> Self {
        self.ops.push(DeltaOp::RemovePart { part });
        self
    }

    /// Appends an op in place.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A set of part ids over a fixed part universe, with `O(1)` membership
/// and insertion-deduplication — the shape the dirty-part closure and the
/// restricted verification entry exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartSet {
    member: Vec<bool>,
    count: usize,
}

impl PartSet {
    /// The empty set over a universe of `part_count` parts.
    pub fn new(part_count: usize) -> Self {
        PartSet {
            member: vec![false; part_count],
            count: 0,
        }
    }

    /// Inserts `p`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn insert(&mut self, p: PartId) -> bool {
        let slot = &mut self.member[p.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.count += 1;
            true
        }
    }

    /// Membership test.
    pub fn contains(&self, p: PartId) -> bool {
        p.index() < self.member.len() && self.member[p.index()]
    }

    /// Number of parts in the set.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the part universe the set is defined over.
    pub fn universe(&self) -> usize {
        self.member.len()
    }

    /// The parts of the set in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = PartId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| PartId::new(i))
    }

    /// The set as a per-part boolean mask (the `active` shape the
    /// construction and verification subroutines take).
    pub fn as_mask(&self) -> &[bool] {
        &self.member
    }
}

/// The result of [`Partition::apply_tracked`]: the edited partition plus
/// the reuse bookkeeping an incremental repair needs.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The edited partition.
    pub partition: Partition,
    /// `origin[p]` — the old part whose member set new part `p` carries
    /// unchanged (reusable verbatim), or `None` if `p` is dirty or new.
    pub origin: Vec<Option<PartId>>,
    /// The dirty closure, in the new partition's id space: every part
    /// whose member set or induced edge set changed.
    pub dirty: PartSet,
    /// Every node whose part membership changed (sorted by id). Nodes of a
    /// part that was merely renumbered are *not* moved.
    pub moved_nodes: Vec<NodeId>,
}

/// Working state of the apply engine: the intermediate partition plus the
/// per-part edit flags tracked through swap-remove renumbering.
struct ApplyState {
    part_of: Vec<Option<PartId>>,
    members: Vec<Vec<NodeId>>,
    /// The old part this slot still mirrors member-for-member.
    origin: Vec<Option<PartId>>,
    /// Slot gained or lost a member (origin is void once edited).
    edited: Vec<bool>,
    /// Per node: membership changed at some point during the delta.
    moved: Vec<bool>,
}

impl ApplyState {
    fn of(partition: &Partition) -> Self {
        let n = partition.node_count();
        ApplyState {
            part_of: (0..n).map(|v| partition.part_of(NodeId::new(v))).collect(),
            members: partition
                .parts()
                .map(|p| partition.members(p).to_vec())
                .collect(),
            origin: partition.parts().map(Some).collect(),
            edited: vec![false; partition.part_count()],
            moved: vec![false; n],
        }
    }

    fn config(reason: String) -> LcsError {
        LcsError::Config { reason }
    }

    fn check_part(&self, p: PartId, role: &str) -> LcsResult<()> {
        if p.index() >= self.members.len() {
            return Err(Self::config(format!(
                "delta references {role} part {p} but the partition has {} parts",
                self.members.len()
            )));
        }
        Ok(())
    }

    fn check_node(&self, v: NodeId) -> LcsResult<()> {
        if v.index() >= self.part_of.len() {
            return Err(Self::config(format!(
                "delta references node {v} but the partition covers {} nodes",
                self.part_of.len()
            )));
        }
        Ok(())
    }

    fn touch(&mut self, p: PartId) {
        self.edited[p.index()] = true;
    }

    /// Detaches `v` from `members[src]` (linear scan — delta node lists are
    /// tiny compared to the parts they edit).
    fn detach(&mut self, v: NodeId, src: PartId) {
        let list = &mut self.members[src.index()];
        let pos = list.iter().position(|&u| u == v).expect("member is listed");
        list.remove(pos);
    }

    /// Removes part slot `p` by swap-remove, renumbering the former last
    /// part into `p`. The renumbered part keeps its origin and edit flag —
    /// an id change alone is not an edit.
    fn swap_remove_part(&mut self, p: PartId) {
        let last = self.members.len() - 1;
        self.members.swap_remove(p.index());
        self.origin.swap_remove(p.index());
        self.edited.swap_remove(p.index());
        if p.index() != last {
            for &v in &self.members[p.index()] {
                self.part_of[v.index()] = Some(p);
            }
        }
    }

    fn apply_op(&mut self, op: &DeltaOp) -> LcsResult<()> {
        match op {
            DeltaOp::MoveNodes { nodes, to } => {
                if nodes.is_empty() {
                    return Err(Self::config("MoveNodes with an empty node list".into()));
                }
                self.check_part(*to, "destination")?;
                for &v in nodes {
                    self.check_node(v)?;
                    let src = self.part_of[v.index()].ok_or_else(|| {
                        Self::config(format!("MoveNodes: node {v} belongs to no part"))
                    })?;
                    if src == *to {
                        return Err(Self::config(format!(
                            "MoveNodes: node {v} is already in part {to}"
                        )));
                    }
                    self.detach(v, src);
                    self.members[to.index()].push(v);
                    self.part_of[v.index()] = Some(*to);
                    self.moved[v.index()] = true;
                    self.touch(src);
                    self.touch(*to);
                    if self.members[src.index()].is_empty() {
                        return Err(Self::config(format!(
                            "MoveNodes would empty part {src}; use RemovePart or MergeParts"
                        )));
                    }
                }
            }
            DeltaOp::SplitPart { part, nodes } => {
                if nodes.is_empty() {
                    return Err(Self::config("SplitPart with an empty node list".into()));
                }
                self.check_part(*part, "split")?;
                let new_part = PartId::new(self.members.len());
                self.members.push(Vec::with_capacity(nodes.len()));
                self.origin.push(None);
                self.edited.push(true);
                for &v in nodes {
                    self.check_node(v)?;
                    if self.part_of[v.index()] != Some(*part) {
                        return Err(Self::config(format!(
                            "SplitPart: node {v} is not a member of part {part}"
                        )));
                    }
                    self.detach(v, *part);
                    self.members[new_part.index()].push(v);
                    self.part_of[v.index()] = Some(new_part);
                    self.moved[v.index()] = true;
                }
                self.touch(*part);
                if self.members[part.index()].is_empty() {
                    return Err(Self::config(format!(
                        "SplitPart would take every member of part {part}; use SplitPart \
                         with a proper subset or rename via MergeParts"
                    )));
                }
            }
            DeltaOp::MergeParts { keep, absorb } => {
                self.check_part(*keep, "keep")?;
                self.check_part(*absorb, "absorb")?;
                if keep == absorb {
                    return Err(Self::config(format!(
                        "MergeParts: keep and absorb are both part {keep}"
                    )));
                }
                let absorbed = std::mem::take(&mut self.members[absorb.index()]);
                for &v in &absorbed {
                    self.part_of[v.index()] = Some(*keep);
                    self.moved[v.index()] = true;
                }
                self.members[keep.index()].extend(absorbed);
                self.touch(*keep);
                self.swap_remove_part(*absorb);
            }
            DeltaOp::AddPart { nodes } => {
                if nodes.is_empty() {
                    return Err(Self::config("AddPart with an empty node list".into()));
                }
                let new_part = PartId::new(self.members.len());
                self.members.push(Vec::with_capacity(nodes.len()));
                self.origin.push(None);
                self.edited.push(true);
                for &v in nodes {
                    self.check_node(v)?;
                    if let Some(p) = self.part_of[v.index()] {
                        return Err(Self::config(format!(
                            "AddPart: node {v} already belongs to part {p}"
                        )));
                    }
                    self.members[new_part.index()].push(v);
                    self.part_of[v.index()] = Some(new_part);
                    self.moved[v.index()] = true;
                }
            }
            DeltaOp::RemovePart { part } => {
                self.check_part(*part, "removed")?;
                for v in std::mem::take(&mut self.members[part.index()]) {
                    self.part_of[v.index()] = None;
                    self.moved[v.index()] = true;
                }
                self.swap_remove_part(*part);
            }
        }
        Ok(())
    }

    fn run(partition: &Partition, delta: &PartitionDelta) -> LcsResult<ApplyState> {
        let mut state = ApplyState::of(partition);
        for op in delta.ops() {
            state.apply_op(op)?;
        }
        Ok(state)
    }

    fn into_partition(self) -> Partition {
        Partition::from_assignment(self.part_of.len(), self.part_of)
            .expect("the apply engine keeps every part nonempty and densely numbered")
    }
}

impl Partition {
    /// Applies `delta` and returns the edited partition. Structure only —
    /// connectivity of the edited parts is checked by
    /// [`Partition::validate`], exactly as for any other construction path.
    ///
    /// # Errors
    ///
    /// [`LcsError::Config`] for any structurally invalid op: out-of-range
    /// node or part ids, moving a node that is not where the op claims,
    /// merging a part with itself, adding an already-assigned node, empty
    /// node lists, and any op that would leave a part with no members.
    pub fn apply(&self, delta: &PartitionDelta) -> LcsResult<Partition> {
        Ok(ApplyState::run(self, delta)?.into_partition())
    }

    /// [`Partition::apply`] plus the repair bookkeeping: the origin map
    /// (which old part each clean new part mirrors), the moved-node list,
    /// and the dirty closure. The closure starts from the edited parts and
    /// then sweeps every moved node's CSR incident slice, comparing
    /// same-part membership of each edge before and after the delta — any
    /// endpoint part whose induced edge set changed is stamped dirty
    /// (insertion into the [`PartSet`] deduplicates, the same stamp idiom
    /// the quality workspaces use).
    ///
    /// # Errors
    ///
    /// The [`LcsError::Config`] errors of [`Partition::apply`], plus
    /// [`LcsError::InconsistentInputs`] if `graph` covers a different node
    /// count than the partition.
    pub fn apply_tracked(&self, graph: &Graph, delta: &PartitionDelta) -> LcsResult<AppliedDelta> {
        if graph.node_count() != self.node_count() {
            return Err(LcsError::InconsistentInputs {
                reason: format!(
                    "partition defined over {} nodes but the graph has {}",
                    self.node_count(),
                    graph.node_count()
                ),
            });
        }
        let state = ApplyState::run(self, delta)?;
        let mut dirty = PartSet::new(state.members.len());
        for (i, &edited) in state.edited.iter().enumerate() {
            if edited {
                dirty.insert(PartId::new(i));
            }
        }
        let moved_nodes: Vec<NodeId> = state
            .moved
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        // Membership sweep: an edge's induced status in a part flips iff
        // its endpoints agree on a part before the delta xor after, and
        // only edges incident to a moved node can flip.
        for &v in &moved_nodes {
            for (u, _) in graph.neighbors(v) {
                let before = match (self.part_of(v), self.part_of(u)) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                let after = match (state.part_of[v.index()], state.part_of[u.index()]) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                if before != after {
                    for w in [v, u] {
                        if let Some(p) = state.part_of[w.index()] {
                            dirty.insert(p);
                        }
                    }
                }
            }
        }
        let origin = state
            .origin
            .iter()
            .enumerate()
            .map(|(i, &o)| {
                if dirty.contains(PartId::new(i)) {
                    None
                } else {
                    o
                }
            })
            .collect();
        Ok(AppliedDelta {
            partition: state.into_partition(),
            origin,
            dirty,
            moved_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn columns() -> (Graph, Partition) {
        (
            generators::grid(4, 4),
            generators::partitions::grid_columns(4, 4),
        )
    }

    fn assert_config(err: LcsError, needle: &str) {
        match err {
            LcsError::Config { reason } => {
                assert!(
                    reason.contains(needle),
                    "reason {reason:?} lacks {needle:?}"
                )
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn move_nodes_reassigns_and_dirties_both_parts() {
        let (g, p) = columns();
        // Node 1 sits in column 1; move it to column 0 (they are adjacent).
        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(1)], PartId::new(0));
        let applied = p.apply_tracked(&g, &delta).unwrap();
        assert_eq!(
            applied.partition.part_of(NodeId::new(1)),
            Some(PartId::new(0))
        );
        assert_eq!(applied.partition.part_count(), 4);
        assert_eq!(applied.moved_nodes, vec![NodeId::new(1)]);
        assert!(applied.dirty.contains(PartId::new(0)));
        assert!(applied.dirty.contains(PartId::new(1)));
        assert_eq!(applied.dirty.len(), 2);
        assert_eq!(applied.origin[0], None);
        assert_eq!(applied.origin[1], None);
        assert_eq!(applied.origin[2], Some(PartId::new(2)));
        assert_eq!(applied.origin[3], Some(PartId::new(3)));
        assert_eq!(p.apply(&delta).unwrap(), applied.partition);
    }

    #[test]
    fn split_appends_a_new_part() {
        let (g, p) = columns();
        // Column 2 holds nodes 2, 6, 10, 14; carve off its lower half.
        let delta = PartitionDelta::new()
            .split_part(PartId::new(2), vec![NodeId::new(10), NodeId::new(14)]);
        let applied = p.apply_tracked(&g, &delta).unwrap();
        assert_eq!(applied.partition.part_count(), 5);
        assert_eq!(
            applied.partition.members(PartId::new(4)),
            &[NodeId::new(10), NodeId::new(14)]
        );
        assert!(applied.dirty.contains(PartId::new(2)));
        assert!(applied.dirty.contains(PartId::new(4)));
        assert_eq!(applied.origin[4], None);
        applied.partition.validate(&g).unwrap();
    }

    #[test]
    fn merge_renumbers_the_last_part_into_the_freed_slot() {
        let (g, p) = columns();
        let delta = PartitionDelta::new().merge_parts(PartId::new(0), PartId::new(1));
        let applied = p.apply_tracked(&g, &delta).unwrap();
        assert_eq!(applied.partition.part_count(), 3);
        // Old part 3 now answers to id 1, member set untouched: clean.
        assert_eq!(applied.origin[1], Some(PartId::new(3)));
        assert_eq!(
            applied.partition.members(PartId::new(1)),
            p.members(PartId::new(3))
        );
        assert!(applied.dirty.contains(PartId::new(0)));
        assert!(!applied.dirty.contains(PartId::new(1)));
        assert_eq!(applied.origin[0], None);
        applied.partition.validate(&g).unwrap();
    }

    #[test]
    fn remove_unassigns_members_and_add_reclaims_them() {
        let (g, p) = columns();
        let delta = PartitionDelta::new().remove_part(PartId::new(3));
        let applied = p.apply_tracked(&g, &delta).unwrap();
        assert_eq!(applied.partition.part_count(), 3);
        assert_eq!(applied.partition.part_of(NodeId::new(3)), None);
        assert_eq!(applied.partition.assigned_count(), 12);

        let back = PartitionDelta::new().add_part(vec![
            NodeId::new(3),
            NodeId::new(7),
            NodeId::new(11),
            NodeId::new(15),
        ]);
        let again = applied.partition.apply_tracked(&g, &back).unwrap();
        assert_eq!(again.partition.part_count(), 4);
        assert_eq!(
            again.partition.part_of(NodeId::new(7)),
            Some(PartId::new(3))
        );
        assert!(again.dirty.contains(PartId::new(3)));
        assert_eq!(again.dirty.len(), 1);
        again.partition.validate(&g).unwrap();
    }

    #[test]
    fn ops_compose_sequentially_over_the_intermediate_state() {
        let (g, p) = columns();
        // Split column 0, then merge the new piece into column 1: only the
        // ids valid at each step may be referenced.
        let delta = PartitionDelta::new()
            .split_part(PartId::new(0), vec![NodeId::new(12)])
            .merge_parts(PartId::new(1), PartId::new(4));
        let applied = p.apply_tracked(&g, &delta).unwrap();
        assert_eq!(applied.partition.part_count(), 4);
        assert_eq!(
            applied.partition.part_of(NodeId::new(12)),
            Some(PartId::new(1))
        );
        assert!(applied.dirty.contains(PartId::new(0)));
        assert!(applied.dirty.contains(PartId::new(1)));
    }

    #[test]
    fn emptying_moves_and_splits_are_rejected() {
        let g = generators::path(4);
        let mut b = crate::PartitionBuilder::new(4);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        b.add_part(vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)])
            .unwrap();
        let p = b.build();
        let drain = PartitionDelta::new().move_nodes(vec![NodeId::new(0)], PartId::new(1));
        assert_config(p.apply(&drain).unwrap_err(), "would empty part");
        let _ = g;
        let take_all = PartitionDelta::new().split_part(
            PartId::new(1),
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
        );
        assert_config(p.apply(&take_all).unwrap_err(), "every member");
    }

    #[test]
    fn invalid_ops_are_typed_config_errors() {
        let (_, p) = columns();
        for (delta, needle) in [
            (
                PartitionDelta::new().move_nodes(vec![], PartId::new(0)),
                "empty node list",
            ),
            (
                PartitionDelta::new().move_nodes(vec![NodeId::new(99)], PartId::new(0)),
                "node v99",
            ),
            (
                PartitionDelta::new().move_nodes(vec![NodeId::new(0)], PartId::new(9)),
                "destination part",
            ),
            (
                PartitionDelta::new().move_nodes(vec![NodeId::new(0)], PartId::new(0)),
                "already in part",
            ),
            (
                PartitionDelta::new().split_part(PartId::new(0), vec![NodeId::new(1)]),
                "not a member",
            ),
            (
                PartitionDelta::new().split_part(PartId::new(7), vec![NodeId::new(0)]),
                "split part",
            ),
            (
                PartitionDelta::new().merge_parts(PartId::new(2), PartId::new(2)),
                "both part",
            ),
            (
                PartitionDelta::new().merge_parts(PartId::new(0), PartId::new(9)),
                "absorb part",
            ),
            (
                PartitionDelta::new().add_part(vec![NodeId::new(0)]),
                "already belongs",
            ),
            (PartitionDelta::new().add_part(vec![]), "empty node list"),
            (
                PartitionDelta::new().remove_part(PartId::new(4)),
                "removed part",
            ),
        ] {
            assert_config(p.apply(&delta).unwrap_err(), needle);
        }
    }

    #[test]
    fn unassigned_nodes_cannot_be_moved_only_added() {
        let g = generators::path(3);
        let mut b = crate::PartitionBuilder::new(3);
        b.add_part(vec![NodeId::new(0), NodeId::new(1)]).unwrap();
        let p = b.build();
        let _ = g;
        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(2)], PartId::new(0));
        assert_config(p.apply(&delta).unwrap_err(), "belongs to no part");
    }

    #[test]
    fn empty_delta_keeps_everything_clean() {
        let (g, p) = columns();
        let applied = p.apply_tracked(&g, &PartitionDelta::new()).unwrap();
        assert_eq!(applied.partition, p);
        assert!(applied.dirty.is_empty());
        assert!(applied.moved_nodes.is_empty());
        for (i, o) in applied.origin.iter().enumerate() {
            assert_eq!(*o, Some(PartId::new(i)));
        }
    }

    #[test]
    fn dirty_closure_covers_every_part_with_changed_induced_edges() {
        let (g, p) = columns();
        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(5)], PartId::new(2));
        let applied = p.apply_tracked(&g, &delta).unwrap();
        // Exhaustive cross-check: recompute each part's induced edge set
        // before and after; any changed part must be in the closure.
        for part in applied.partition.parts() {
            let induced_after: Vec<_> = g
                .edges()
                .filter(|(_, e)| {
                    applied.partition.part_of(e.u) == Some(part)
                        && applied.partition.part_of(e.v) == Some(part)
                })
                .map(|(id, _)| id)
                .collect();
            let induced_before: Vec<_> = match applied.origin[part.index()] {
                Some(old) => g
                    .edges()
                    .filter(|(_, e)| p.part_of(e.u) == Some(old) && p.part_of(e.v) == Some(old))
                    .map(|(id, _)| id)
                    .collect(),
                None => {
                    assert!(applied.dirty.contains(part));
                    continue;
                }
            };
            assert_eq!(
                induced_before, induced_after,
                "clean part {part} changed its induced edges"
            );
        }
    }

    #[test]
    fn part_set_basics() {
        let mut s = PartSet::new(5);
        assert!(s.is_empty());
        assert!(s.insert(PartId::new(3)));
        assert!(!s.insert(PartId::new(3)));
        assert!(s.insert(PartId::new(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.universe(), 5);
        assert!(s.contains(PartId::new(1)));
        assert!(!s.contains(PartId::new(0)));
        assert!(!s.contains(PartId::new(99)));
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids, vec![PartId::new(1), PartId::new(3)]);
        assert_eq!(s.as_mask(), &[false, true, false, true, false]);
    }
}
