//! Centralized graph traversals: BFS, connectivity, components.
//!
//! These are *reference* (sequential) algorithms. The distributed
//! counterparts live in `lcs-congest`; tests compare the two.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Result of a breadth-first search from a single source.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or `None` if `v` is
    /// unreachable.
    pub dist: Vec<Option<u32>>,
    /// `parent[v]` is the BFS-tree parent of `v`, or `None` for the source
    /// and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Nodes in the order they were dequeued (i.e. by nondecreasing
    /// distance).
    pub order: Vec<NodeId>,
}

impl BfsResult {
    /// Largest finite distance reached (the source's eccentricity within its
    /// component). Zero for a single-node component.
    pub fn max_distance(&self) -> u32 {
        self.dist.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Number of nodes reachable from the source (including the source).
    pub fn reachable_count(&self) -> usize {
        self.order.len()
    }
}

/// Runs a breadth-first search from `source` over the whole graph.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> BfsResult {
    bfs_filtered(graph, source, |_| true)
}

/// Runs a breadth-first search from `source` restricted to nodes for which
/// `allow` returns `true`. The source is always visited, even if `allow`
/// rejects it.
///
/// This is the primitive used to measure the diameter of an *induced*
/// subgraph `G[P_i]`, which is what the paper's notion of part diameter
/// refers to.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_filtered<F>(graph: &Graph, source: NodeId, allow: F) -> BfsResult
where
    F: Fn(NodeId) -> bool,
{
    let n = graph.node_count();
    assert!(source.index() < n, "source {source} out of range");
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();

    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = dist[u.index()].expect("queued nodes have distances");
        for (v, _) in graph.neighbors(u) {
            if dist[v.index()].is_none() && allow(v) {
                dist[v.index()] = Some(du + 1);
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }

    BfsResult {
        dist,
        parent,
        order,
    }
}

/// Returns the nodes of the graph in BFS order from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_order(graph: &Graph, source: NodeId) -> Vec<NodeId> {
    bfs_distances(graph, source).order
}

/// Returns `true` if the graph is connected. The empty graph counts as
/// connected.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    bfs_distances(graph, NodeId::new(0)).reachable_count() == graph.node_count()
}

/// Computes connected components.
///
/// Returns `(component_of, component_count)` where `component_of[v]` is a
/// dense component index in `0..component_count`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut component_of = vec![usize::MAX; n];
    let mut count = 0;
    for start in graph.nodes() {
        if component_of[start.index()] != usize::MAX {
            continue;
        }
        let result = bfs_distances(graph, start);
        for v in result.order {
            component_of[v.index()] = count;
        }
        count += 1;
    }
    (component_of, count)
}

/// Returns `true` if the node set `nodes` induces a connected subgraph of
/// `graph`. An empty set is considered *not* connected (the paper requires
/// parts to be nonempty).
pub fn induces_connected_subgraph(graph: &Graph, nodes: &[NodeId]) -> bool {
    if nodes.is_empty() {
        return false;
    }
    let mut member = vec![false; graph.node_count()];
    for &v in nodes {
        member[v.index()] = true;
    }
    let result = bfs_filtered(graph, nodes[0], |v| member[v.index()]);
    nodes.iter().all(|v| result.dist[v.index()].is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = generators::path(5);
        let r = bfs_distances(&g, NodeId::new(0));
        assert_eq!(r.dist[4], Some(4));
        assert_eq!(r.max_distance(), 4);
        assert_eq!(r.reachable_count(), 5);
        assert_eq!(r.parent[0], None);
        assert_eq!(r.parent[1], Some(NodeId::new(0)));
        assert_eq!(r.order[0], NodeId::new(0));
    }

    #[test]
    fn bfs_order_has_nondecreasing_distance() {
        let g = generators::grid(5, 7);
        let r = bfs_distances(&g, NodeId::new(3));
        let mut last = 0;
        for v in &r.order {
            let d = r.dist[v.index()].unwrap();
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn connectivity_of_grid_and_disjoint_union() {
        let g = generators::grid(4, 4);
        assert!(is_connected(&g));

        // Two isolated nodes are not connected.
        let g2 = crate::Graph::from_edges(2, &[]).unwrap();
        assert!(!is_connected(&g2));
        let (comp, count) = connected_components(&g2);
        assert_eq!(count, 2);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = crate::Graph::from_edges(0, &[]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).1, 0);
    }

    #[test]
    fn filtered_bfs_respects_mask() {
        // Path 0-1-2-3-4, disallow node 2: node 4 unreachable from 0.
        let g = generators::path(5);
        let r = bfs_filtered(&g, NodeId::new(0), |v| v.index() != 2);
        assert!(r.dist[4].is_none());
        assert_eq!(r.reachable_count(), 2);
    }

    #[test]
    fn induced_connectivity() {
        let g = generators::grid(3, 3);
        // Left column: nodes 0, 3, 6 in row-major indexing — connected.
        let col = vec![NodeId::new(0), NodeId::new(3), NodeId::new(6)];
        assert!(induces_connected_subgraph(&g, &col));
        // Two opposite corners are not connected without the rest.
        let corners = vec![NodeId::new(0), NodeId::new(8)];
        assert!(!induces_connected_subgraph(&g, &corners));
        assert!(!induces_connected_subgraph(&g, &[]));
    }
}
