//! Edge weights for weighted problems (MST).
//!
//! Weights are kept separate from [`crate::Graph`] so that the purely
//! combinatorial machinery (trees, partitions, shortcuts) does not carry a
//! weight vector it never looks at. The MST application combines a graph
//! with an [`EdgeWeights`] table.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{EdgeId, Graph, GraphError, Result};

/// A table of edge weights indexed by [`EdgeId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWeights {
    weights: Vec<u64>,
}

impl EdgeWeights {
    /// Creates a weight table from an explicit vector (entry `i` is the
    /// weight of edge `i`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::WeightCountMismatch`] if the vector length does
    /// not equal the graph's edge count.
    pub fn from_vec(graph: &Graph, weights: Vec<u64>) -> Result<Self> {
        if weights.len() != graph.edge_count() {
            return Err(GraphError::WeightCountMismatch {
                weights: weights.len(),
                edges: graph.edge_count(),
            });
        }
        Ok(EdgeWeights { weights })
    }

    /// Assigns every edge the same unit weight.
    pub fn uniform(graph: &Graph) -> Self {
        EdgeWeights {
            weights: vec![1; graph.edge_count()],
        }
    }

    /// Assigns the edges a random permutation of `1..=m`, i.e. distinct
    /// weights. Distinct weights make the minimum spanning tree unique,
    /// which greatly simplifies validating distributed MST output against
    /// the centralized reference.
    pub fn random_permutation(graph: &Graph, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut weights: Vec<u64> = (1..=graph.edge_count() as u64).collect();
        weights.shuffle(&mut rng);
        EdgeWeights { weights }
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total weight of a set of edges.
    pub fn total<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> u64 {
        edges.into_iter().map(|e| self.weight(e)).sum()
    }

    /// Returns `true` if all weights are pairwise distinct.
    pub fn all_distinct(&self) -> bool {
        let mut sorted = self.weights.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_weights_are_all_one() {
        let g = generators::cycle(5);
        let w = EdgeWeights::uniform(&g);
        assert_eq!(w.len(), 5);
        assert!(g.edge_ids().all(|e| w.weight(e) == 1));
        assert_eq!(w.total(g.edge_ids()), 5);
    }

    #[test]
    fn random_permutation_is_distinct_and_deterministic() {
        let g = generators::grid(5, 5);
        let w1 = EdgeWeights::random_permutation(&g, 42);
        let w2 = EdgeWeights::random_permutation(&g, 42);
        let w3 = EdgeWeights::random_permutation(&g, 43);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
        assert!(w1.all_distinct());
        assert_eq!(w1.len(), g.edge_count());
    }

    #[test]
    fn from_vec_checks_length() {
        let g = generators::path(3);
        assert!(EdgeWeights::from_vec(&g, vec![1, 2]).is_ok());
        let err = EdgeWeights::from_vec(&g, vec![1]).unwrap_err();
        assert_eq!(
            err,
            GraphError::WeightCountMismatch {
                weights: 1,
                edges: 2
            }
        );
    }

    #[test]
    fn empty_weights() {
        let g = crate::Graph::from_edges(1, &[]).unwrap();
        let w = EdgeWeights::uniform(&g);
        assert!(w.is_empty());
        assert!(w.all_distinct());
    }
}
