//! The workspace-wide unified error type.
//!
//! Every crate of the workspace keeps its own precise error enum
//! ([`GraphError`] here, `SimError` in `lcs_congest`, `CoreError` in
//! `lcs_core`, `DistError` in `lcs_dist`) — those are the types the
//! algorithms match on internally. [`LcsError`] is the *façade* error: the
//! single type that crosses the public boundary of the `lcs_api` crate, so
//! a caller running the whole pipeline handles one enum instead of four.
//! Each crate provides the `From` impl for its own error (the unified type
//! lives here, at the bottom of the dependency graph, so every layer can
//! name it), which is what lets `?` flow through the façade unchanged.

use std::error::Error;
use std::fmt;

use crate::GraphError;

/// The unified error of the shortcut pipeline, as surfaced by the
/// `lcs_api` façade.
///
/// The variants mirror the *stages* of the pipeline rather than the crates
/// that implement them: input validation, configuration, simulation,
/// construction, distributed protocol, and budget exhaustion. Lower-level
/// errors convert into these via the `From` impls each crate defines for
/// its own enum.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LcsError {
    /// Graph or partition construction/validation failed.
    Graph(GraphError),
    /// The graph, tree and partition handed to a pipeline stage are
    /// mutually inconsistent (for example differing node counts).
    InconsistentInputs {
        /// Human readable description.
        reason: String,
    },
    /// A configuration value was invalid (for example a zero or
    /// non-numeric thread count).
    Config {
        /// Human readable description.
        reason: String,
    },
    /// The CONGEST simulation failed (bandwidth violation, duplicate send,
    /// round-cap overflow, malformed send).
    Simulation {
        /// Human readable description.
        reason: String,
    },
    /// Shortcut construction failed for a reason other than running out of
    /// budget (for example a non-tree edge assigned to a tree-restricted
    /// shortcut).
    Construction {
        /// Human readable description.
        reason: String,
    },
    /// A distributed protocol violated one of its invariants or disagreed
    /// with its centralized reference.
    Protocol {
        /// Human readable description.
        reason: String,
    },
    /// A construction stopped at its iteration or doubling budget with
    /// parts still bad.
    BudgetExhausted {
        /// Number of iterations (or doubling attempts) executed.
        iterations: usize,
        /// Number of parts still bad when the budget ran out.
        remaining_bad: usize,
    },
    /// A fault-injected query exhausted its retry epochs without reaching
    /// a decisive result. This is a *degraded* outcome, not a wrong one:
    /// the partial classification stayed sound, but at least one part's
    /// members never all decided (for example because a node crashed
    /// permanently), so the caller gets this typed error instead of a
    /// silently incomplete answer.
    Degraded {
        /// Number of retry epochs executed.
        epochs: u32,
        /// Number of epochs that stalled (indecisive or round-cap hit).
        stalls: u32,
        /// Human readable description.
        reason: String,
    },
}

impl fmt::Display for LcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcsError::Graph(err) => write!(f, "graph error: {err}"),
            LcsError::InconsistentInputs { reason } => {
                write!(f, "inconsistent inputs: {reason}")
            }
            LcsError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            LcsError::Simulation { reason } => write!(f, "simulation error: {reason}"),
            LcsError::Construction { reason } => write!(f, "construction error: {reason}"),
            LcsError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            LcsError::BudgetExhausted {
                iterations,
                remaining_bad,
            } => write!(
                f,
                "construction stopped after {iterations} iterations with {remaining_bad} parts still bad"
            ),
            LcsError::Degraded {
                epochs,
                stalls,
                reason,
            } => write!(
                f,
                "degraded result after {epochs} epochs ({stalls} stalled): {reason}"
            ),
        }
    }
}

impl Error for LcsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LcsError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for LcsError {
    fn from(err: GraphError) -> Self {
        LcsError::Graph(err)
    }
}

/// Convenience result alias for façade-level entry points.
pub type LcsResult<T> = std::result::Result<T, LcsError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn display_and_source() {
        let err: LcsError = GraphError::SelfLoop {
            node: NodeId::new(3),
        }
        .into();
        assert!(err.to_string().contains("self-loop at node v3"));
        assert!(err.source().is_some());
        let err = LcsError::Config {
            reason: "threads must be >= 1".to_string(),
        };
        assert!(err.to_string().contains("invalid configuration"));
        assert!(err.source().is_none());
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<LcsError>();
    }
}
