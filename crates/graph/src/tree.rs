//! Rooted spanning trees.
//!
//! The shortcut framework fixes a rooted spanning tree `T ⊆ G` (in practice a
//! BFS tree, whose depth is at most the diameter `D` of `G`) and restricts
//! every shortcut subgraph to edges of `T`. [`RootedTree`] is the
//! representation used everywhere downstream: it knows, for every node, its
//! parent, parent edge, depth and children, and can enumerate nodes bottom-up
//! (deepest first), which is the schedule both `CoreSlow` and `CoreFast`
//! follow.

use crate::traversal::bfs_distances;
use crate::{EdgeId, Graph, GraphError, NodeId, Result};

/// A rooted spanning tree of a connected graph.
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    depth: Vec<u32>,
    children: Vec<Vec<NodeId>>,
    /// Nodes ordered by nonincreasing depth (deepest first). Processing nodes
    /// in this order guarantees children are handled before their parents.
    bottom_up: Vec<NodeId>,
    /// Marker: `is_tree_edge[e]` for every edge id of the original graph.
    is_tree_edge: Vec<bool>,
    depth_of_tree: u32,
}

impl RootedTree {
    /// Builds a BFS spanning tree of `graph` rooted at `root`.
    ///
    /// The BFS tree has the asymptotically smallest possible depth among
    /// spanning trees rooted at `root` (its depth equals the eccentricity of
    /// `root`, which is at most the diameter `D`).
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or if the graph is not connected.
    pub fn bfs(graph: &Graph, root: NodeId) -> Self {
        Self::try_bfs(graph, root).expect("graph must be connected to admit a spanning tree")
    }

    /// Fallible variant of [`RootedTree::bfs`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotConnected`] if some node is unreachable from
    /// `root`.
    pub fn try_bfs(graph: &Graph, root: NodeId) -> Result<Self> {
        let result = bfs_distances(graph, root);
        if result.reachable_count() != graph.node_count() {
            return Err(GraphError::NotConnected);
        }
        let n = graph.node_count();
        let mut parent_edge = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut is_tree_edge = vec![false; graph.edge_count()];
        for v in graph.nodes() {
            if let Some(p) = result.parent[v.index()] {
                let e = graph
                    .edge_between(p, v)
                    .expect("BFS parent must be adjacent");
                parent_edge[v.index()] = Some(e);
                is_tree_edge[e.index()] = true;
                children[p.index()].push(v);
            }
        }
        let depth: Vec<u32> = result
            .dist
            .iter()
            .map(|d| d.expect("connectivity checked above"))
            .collect();
        let mut bottom_up: Vec<NodeId> = graph.nodes().collect();
        bottom_up.sort_by_key(|v| std::cmp::Reverse(depth[v.index()]));
        let depth_of_tree = depth.iter().copied().max().unwrap_or(0);

        Ok(RootedTree {
            root,
            parent: result.parent,
            parent_edge,
            depth,
            children,
            bottom_up,
            is_tree_edge,
            depth_of_tree,
        })
    }

    /// The root node of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes spanned by the tree.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Depth of the tree: the maximum node depth (root has depth zero).
    ///
    /// For a BFS tree this equals the eccentricity of the root and is
    /// therefore at most the graph diameter `D`; the paper denotes both by
    /// `D`.
    pub fn depth_of_tree(&self) -> u32 {
        self.depth_of_tree
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The graph edge connecting `v` to its parent, or `None` for the root.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Depth of node `v` (root has depth zero).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Children of `v` in the tree.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Returns `true` if the given graph edge is one of the `n - 1` tree
    /// edges.
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.is_tree_edge[e.index()]
    }

    /// Iterator over all tree edge ids.
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.is_tree_edge
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| EdgeId::new(i))
    }

    /// Number of tree edges (`node_count() - 1` for nonempty trees).
    pub fn tree_edge_count(&self) -> usize {
        self.node_count().saturating_sub(1)
    }

    /// Nodes ordered deepest-first. Children always appear before their
    /// parents, which is the processing schedule of the bottom-up core
    /// subroutines (Algorithms 1 and 2 of the paper).
    pub fn nodes_bottom_up(&self) -> &[NodeId] {
        &self.bottom_up
    }

    /// Nodes ordered shallowest-first (parents before children).
    pub fn nodes_top_down(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bottom_up.iter().rev().copied()
    }

    /// Iterator over the ancestors of `v` starting with `v` itself and
    /// ending at the root.
    pub fn path_to_root(&self, v: NodeId) -> PathToRoot<'_> {
        PathToRoot {
            tree: self,
            current: Some(v),
        }
    }

    /// The child endpoint (lower endpoint) of a tree edge: the endpoint whose
    /// parent edge is `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a tree edge.
    pub fn lower_endpoint(&self, graph: &Graph, e: EdgeId) -> NodeId {
        assert!(self.is_tree_edge(e), "edge {e} is not a tree edge");
        let edge = graph.edge(e);
        if self.parent_edge(edge.u) == Some(e) {
            edge.u
        } else {
            edge.v
        }
    }

    /// Height of each node: distance to the deepest leaf in its subtree.
    /// Leaves have height zero. Used by the Lemma 2 routing analysis and by
    /// tests.
    pub fn heights(&self) -> Vec<u32> {
        let mut height = vec![0u32; self.node_count()];
        for &v in &self.bottom_up {
            if let Some(p) = self.parent(v) {
                height[p.index()] = height[p.index()].max(height[v.index()] + 1);
            }
        }
        height
    }

    /// Size of the subtree rooted at each node (including the node itself).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.node_count()];
        for &v in &self.bottom_up {
            if let Some(p) = self.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        size
    }
}

/// Iterator over the tree path from a node up to the root.
///
/// Produced by [`RootedTree::path_to_root`].
#[derive(Debug, Clone)]
pub struct PathToRoot<'a> {
    tree: &'a RootedTree,
    current: Option<NodeId>,
}

impl Iterator for PathToRoot<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.current?;
        self.current = self.tree.parent(v);
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_of_path_is_the_path() {
        let g = generators::path(6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        assert_eq!(t.root(), NodeId::new(0));
        assert_eq!(t.depth_of_tree(), 5);
        assert_eq!(t.tree_edge_count(), 5);
        assert_eq!(t.depth(NodeId::new(3)), 3);
        assert_eq!(t.parent(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(t.children(NodeId::new(2)), &[NodeId::new(3)]);
        assert_eq!(t.parent(NodeId::new(0)), None);
        assert!(t.parent_edge(NodeId::new(0)).is_none());
    }

    #[test]
    fn bfs_tree_depth_is_root_eccentricity() {
        let g = generators::grid(5, 9);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        // Root is a corner of the grid, so its eccentricity is (5-1)+(9-1).
        assert_eq!(t.depth_of_tree(), 12);
        // Every non-root node's depth is parent depth + 1.
        for v in g.nodes() {
            match t.parent(v) {
                Some(p) => assert_eq!(t.depth(v), t.depth(p) + 1),
                None => assert_eq!(v, t.root()),
            }
        }
    }

    #[test]
    fn tree_edges_count_and_membership() {
        let g = generators::grid(4, 4);
        let t = RootedTree::bfs(&g, NodeId::new(5));
        let tree_edges: Vec<EdgeId> = t.tree_edges().collect();
        assert_eq!(tree_edges.len(), g.node_count() - 1);
        for e in &tree_edges {
            assert!(t.is_tree_edge(*e));
        }
        let non_tree = g.edge_ids().filter(|e| !t.is_tree_edge(*e)).count();
        assert_eq!(non_tree, g.edge_count() - (g.node_count() - 1));
    }

    #[test]
    fn bottom_up_order_processes_children_before_parents() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let mut seen = vec![false; g.node_count()];
        for &v in t.nodes_bottom_up() {
            for &c in t.children(v) {
                assert!(
                    seen[c.index()],
                    "child {c} must be processed before parent {v}"
                );
            }
            seen[v.index()] = true;
        }
    }

    #[test]
    fn path_to_root_walks_up() {
        let g = generators::path(4);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let path: Vec<NodeId> = t.path_to_root(NodeId::new(3)).collect();
        assert_eq!(
            path,
            vec![
                NodeId::new(3),
                NodeId::new(2),
                NodeId::new(1),
                NodeId::new(0)
            ]
        );
    }

    #[test]
    fn lower_endpoint_is_the_deeper_endpoint() {
        let g = generators::grid(3, 3);
        let t = RootedTree::bfs(&g, NodeId::new(4));
        for e in t.tree_edges() {
            let lower = t.lower_endpoint(&g, e);
            let upper = g.edge(e).other(lower);
            assert_eq!(t.depth(lower), t.depth(upper) + 1);
            assert_eq!(t.parent(lower), Some(upper));
        }
    }

    #[test]
    fn heights_and_subtree_sizes_are_consistent() {
        let g = generators::grid(4, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let heights = t.heights();
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[t.root().index()], g.node_count());
        assert_eq!(heights[t.root().index()], t.depth_of_tree());
        // A leaf has height 0 and size 1.
        let leaf = g
            .nodes()
            .find(|v| t.children(*v).is_empty())
            .expect("finite trees have leaves");
        assert_eq!(heights[leaf.index()], 0);
        assert_eq!(sizes[leaf.index()], 1);
    }

    #[test]
    fn disconnected_graph_yields_error() {
        let g = Graph::from_edges(3, &[(NodeId::new(0), NodeId::new(1))]).unwrap();
        assert!(matches!(
            RootedTree::try_bfs(&g, NodeId::new(0)),
            Err(GraphError::NotConnected)
        ));
    }

    #[test]
    fn single_node_tree() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let t = RootedTree::bfs(&g, NodeId::new(0));
        assert_eq!(t.depth_of_tree(), 0);
        assert_eq!(t.tree_edge_count(), 0);
        assert_eq!(t.nodes_bottom_up(), &[NodeId::new(0)]);
    }
}
