//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use lcs_graph::{
    bfs_distances, connected_components, diameter_exact, diameter_lower_bound_double_sweep,
    generators, is_connected, kruskal_mst, mst_weight, prim_mst, EdgeWeights, NodeId, Partition,
    RootedTree, UnionFind,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BFS trees of connected random graphs are spanning and depth-consistent.
    #[test]
    fn bfs_tree_spans_random_connected_graphs(
        n in 2usize..60,
        extra in 0usize..40,
        seed in 0u64..1_000,
        root_choice in 0usize..1_000,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let root = NodeId::new(root_choice % n);
        let t = RootedTree::bfs(&g, root);
        prop_assert_eq!(t.tree_edges().count(), n - 1);
        prop_assert_eq!(t.root(), root);
        // Depth equals BFS distance from the root.
        let bfs = bfs_distances(&g, root);
        for v in g.nodes() {
            prop_assert_eq!(Some(t.depth(v)), bfs.dist[v.index()]);
        }
        // Tree depth is at most the diameter of the graph.
        prop_assert!(t.depth_of_tree() <= diameter_exact(&g));
    }

    /// The double-sweep bound never exceeds the exact diameter.
    #[test]
    fn double_sweep_is_a_lower_bound(
        n in 2usize..50,
        extra in 0usize..30,
        seed in 0u64..1_000,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let exact = diameter_exact(&g);
        let lb = diameter_lower_bound_double_sweep(&g, NodeId::new(0));
        prop_assert!(lb <= exact);
        // On trees the double sweep is exact.
        let t = generators::random_tree(n, seed);
        prop_assert_eq!(
            diameter_lower_bound_double_sweep(&t, NodeId::new(0)),
            diameter_exact(&t)
        );
    }

    /// Kruskal and Prim agree whenever edge weights are distinct, and the
    /// MST weight never exceeds the weight of any spanning tree we can
    /// easily exhibit (the BFS tree).
    #[test]
    fn mst_reference_algorithms_agree(
        n in 2usize..40,
        extra in 0usize..40,
        seed in 0u64..1_000,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let w = EdgeWeights::random_permutation(&g, seed ^ 0xabcd);
        let k = kruskal_mst(&g, &w);
        let p = prim_mst(&g, &w, NodeId::new(0));
        prop_assert_eq!(&k, &p);
        prop_assert_eq!(k.len(), n - 1);

        let bfs_tree = RootedTree::bfs(&g, NodeId::new(0));
        let bfs_weight: u64 = bfs_tree.tree_edges().map(|e| w.weight(e)).sum();
        prop_assert!(mst_weight(&g, &w) <= bfs_weight);
    }

    /// Multi-source BFS partitions always produce connected parts covering
    /// the whole graph.
    #[test]
    fn bfs_ball_partitions_are_valid(
        n in 4usize..60,
        extra in 0usize..30,
        parts in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let parts = parts.min(n);
        let p = generators::partitions::random_bfs_balls(&g, parts, seed);
        prop_assert_eq!(p.part_count(), parts);
        prop_assert_eq!(p.assigned_count(), n);
        prop_assert!(p.validate(&g).is_ok());
        // Part diameters never exceed the number of nodes.
        prop_assert!(p.max_part_diameter(&g) < n as u32);
    }

    /// Union-find connectivity matches the graph's connected components.
    #[test]
    fn union_find_matches_components(
        n in 1usize..50,
        edges in proptest::collection::vec((0usize..50, 0usize..50), 0..80),
    ) {
        let edge_list: Vec<(NodeId, NodeId)> = edges
            .into_iter()
            .filter(|(a, b)| a != b && *a < n && *b < n)
            .map(|(a, b)| (NodeId::new(a), NodeId::new(b)))
            .collect();
        // Deduplicate so Graph::from_edges accepts the list.
        let mut seen = std::collections::HashSet::new();
        let edge_list: Vec<_> = edge_list
            .into_iter()
            .filter(|&(a, b)| seen.insert(if a < b { (a, b) } else { (b, a) }))
            .collect();
        let g = lcs_graph::Graph::from_edges(n, &edge_list).unwrap();

        let mut uf = UnionFind::new(n);
        for (_, e) in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        let (comp, count) = connected_components(&g);
        prop_assert_eq!(uf.set_count(), count);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(uf.connected(a, b), comp[a] == comp[b]);
            }
        }
        prop_assert_eq!(is_connected(&g), count <= 1);
    }

    /// The singleton partition is always valid and has max part size one.
    #[test]
    fn singleton_partition_always_valid(
        n in 1usize..60,
        extra in 0usize..30,
        seed in 0u64..1_000,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let p = Partition::singletons(&g);
        prop_assert!(p.validate(&g).is_ok());
        prop_assert_eq!(p.part_count(), n);
        prop_assert_eq!(p.max_part_size(), 1);
        prop_assert_eq!(p.max_part_diameter(&g), 0);
    }

    /// The CSR layout behaves identically to the adjacency-list
    /// representation it replaced: per-node neighbor/edge-id pairs in edge
    /// insertion order, parallel slices, degrees, and `edge_between` over
    /// all node pairs, checked against a naive model built from the same
    /// edge list.
    #[test]
    fn csr_matches_adjacency_list_model(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let mut seen = std::collections::HashSet::new();
        let edge_list: Vec<(NodeId, NodeId)> = edges
            .into_iter()
            .filter(|(a, b)| a != b && *a < n && *b < n)
            .filter(|&(a, b)| seen.insert(if a < b { (a, b) } else { (b, a) }))
            .map(|(a, b)| (NodeId::new(a), NodeId::new(b)))
            .collect();
        let g = lcs_graph::Graph::from_edges(n, &edge_list).unwrap();

        // Naive reference: exactly the old Vec<Vec<(NodeId, EdgeId)>> build.
        let mut model: Vec<Vec<(NodeId, lcs_graph::EdgeId)>> = vec![Vec::new(); n];
        for (i, &(a, b)) in edge_list.iter().enumerate() {
            let id = lcs_graph::EdgeId::new(i);
            let (u, v) = if a <= b { (a, b) } else { (b, a) };
            model[u.index()].push((v, id));
            model[v.index()].push((u, id));
        }

        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), edge_list.len());
        for v in g.nodes() {
            let pairs: Vec<_> = g.neighbors(v).collect();
            prop_assert_eq!(&pairs, &model[v.index()]);
            prop_assert_eq!(g.degree(v), model[v.index()].len());
            prop_assert_eq!(g.neighbor_ids(v).len(), g.degree(v));
            for (k, &(w, e)) in pairs.iter().enumerate() {
                prop_assert_eq!(g.neighbor_ids(v)[k], w);
                prop_assert_eq!(g.incident_edge_ids(v)[k], e);
                prop_assert_eq!(g.edge(e).other(v), w);
            }
        }
        prop_assert_eq!(
            g.max_degree(),
            model.iter().map(Vec::len).max().unwrap_or(0)
        );
        for a in g.nodes() {
            for b in g.nodes() {
                let expected = model[a.index()]
                    .iter()
                    .find(|(w, _)| *w == b)
                    .map(|&(_, e)| e);
                prop_assert_eq!(g.edge_between(a, b), expected);
                prop_assert_eq!(g.edge_between(b, a), expected);
            }
        }
    }

    /// `from_edges` rejects exactly the invalid inputs: any duplicate (in
    /// either orientation) fails, and removing the duplicates makes the
    /// same list succeed.
    #[test]
    fn from_edges_duplicate_detection_is_exact(
        n in 2usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 1..60),
        dup_at in 0usize..60,
    ) {
        let valid: Vec<(NodeId, NodeId)> = {
            let mut seen = std::collections::HashSet::new();
            edges
                .iter()
                .filter(|(a, b)| a != b && *a < n && *b < n)
                .filter(|&&(a, b)| seen.insert(if a < b { (a, b) } else { (b, a) }))
                .map(|&(a, b)| (NodeId::new(a), NodeId::new(b)))
                .collect()
        };
        prop_assert!(lcs_graph::Graph::from_edges(n, &valid).is_ok());
        if !valid.is_empty() {
            // Re-adding any edge (flipped, to exercise normalization) fails.
            let (a, b) = valid[dup_at % valid.len()];
            let mut with_dup = valid.clone();
            with_dup.push((b, a));
            prop_assert!(lcs_graph::Graph::from_edges(n, &with_dup).is_err());
        }
    }

    /// Generator invariants for grid-family graphs.
    #[test]
    fn grid_family_invariants(rows in 1usize..12, cols in 1usize..12, g_param in 0usize..6) {
        let grid = generators::grid(rows, cols);
        prop_assert_eq!(grid.node_count(), rows * cols);
        prop_assert!(is_connected(&grid));
        prop_assert_eq!(diameter_exact(&grid) as usize, rows - 1 + cols - 1);

        if g_param < cols {
            let handled = generators::genus_handles(rows, cols, g_param);
            prop_assert!(is_connected(&handled));
            prop_assert!(handled.edge_count() <= grid.edge_count() + g_param);
        }
        if rows >= 3 && cols >= 3 {
            let torus = generators::torus(rows, cols);
            prop_assert_eq!(torus.edge_count(), 2 * rows * cols);
            prop_assert_eq!(diameter_exact(&torus) as usize, rows / 2 + cols / 2);
        }
    }
}
