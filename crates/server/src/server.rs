//! The serving loop: a bound listener, one warm [`Session`] per corpus,
//! and N worker threads sharing both.
//!
//! # Ownership
//!
//! The spawned server thread owns its corpora and sessions on its own
//! stack; workers are *scoped* threads borrowing `&Session` — the
//! checkout-pool refactor made [`Session::serve_shared`] take `&self`,
//! so no locking wraps the hot path. One worker handles one connection
//! at a time; extra connections wait in the kernel accept backlog until
//! a worker frees up.
//!
//! # Drain semantics
//!
//! Shutdown is a protocol line, not a signal. On `{"op":"shutdown"}` the
//! handling worker acknowledges with a `draining` response, raises the
//! shared shutdown flag, and pokes every sibling worker awake with
//! loopback self-connects. From that point no *new* connection is
//! served — wakeup (and unlucky late) connections are dropped unread —
//! but every connection already being served runs to client-side EOF.
//! When the last worker returns, the server thread reports its
//! [`ServerStats`] and exits.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

use lcs_api::{Pipeline, Session, Threads};
use lcs_obs::Obs;
use lcs_workload::{query_of, Corpus, CorpusSpec, QueryEvent, QueryKind};

use crate::protocol::{Request, Response};
use crate::ServeError;

/// Everything the server needs to start: where to bind, how many
/// workers, which corpora to build, and the session knobs every warm
/// session shares.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker thread count (clamped to at least 1).
    pub workers: usize,
    /// One corpus per graph the server answers for; the corpus label
    /// (its family label) is the protocol's `"graph"` key.
    pub corpora: Vec<CorpusSpec>,
    /// Build corpora with pre-generated repair cases so `"repair"`
    /// queries are servable (costs extra build time; default off).
    pub with_repair: bool,
    /// Session seed shared by every warm session.
    pub seed: u64,
    /// Engine selection shared by every warm session
    /// ([`Threads::Auto`] reads `LCS_THREADS`).
    pub threads: Threads,
    /// Instrumentation handle; [`Obs::off`] keeps serving probe-free.
    pub obs: Obs,
}

impl ServerConfig {
    /// A loopback-ephemeral config over `corpora` with 2 workers,
    /// seed 7, `Threads::Auto`, no repair cases, and probes off.
    pub fn new(corpora: Vec<CorpusSpec>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            corpora,
            with_repair: false,
            seed: 7,
            threads: Threads::Auto,
            obs: Obs::off(),
        }
    }

    /// Sets the worker thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shared session seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the engine thread knob for every warm session.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Builds corpora with repair cases so `"repair"` queries work.
    pub fn with_repair(mut self) -> Self {
        self.with_repair = true;
        self
    }

    /// Attaches an instrumentation handle (server probes + per-session
    /// serve probes report into it).
    pub fn recorder(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

/// What the server counted over its lifetime (exact, from atomics — not
/// a sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections served to EOF (wakeup/dropped connections excluded).
    pub connections: u64,
    /// Requests answered (including error responses).
    pub requests: u64,
}

/// A running server: the bound address plus the join handle of the
/// serving thread.
pub struct ServerHandle {
    addr: SocketAddr,
    join: thread::JoinHandle<Result<ServerStats, ServeError>>,
}

impl ServerHandle {
    /// Binds `config.addr`, then starts the serving thread (corpus and
    /// session builds happen there — binding first means an ephemeral
    /// port is known immediately and bind errors surface synchronously).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind fails.
    pub fn spawn(config: ServerConfig) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let join = thread::spawn(move || run_on(listener, addr, &config));
        Ok(ServerHandle { addr, join })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to drain and returns its lifetime stats.
    ///
    /// # Errors
    ///
    /// Whatever the serving thread failed with — corpus build errors,
    /// session build errors, or listener I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the serving thread itself panicked.
    pub fn join(self) -> Result<ServerStats, ServeError> {
        self.join.join().expect("server thread panicked")
    }
}

/// Shared per-server state the workers borrow.
struct Shared<'g> {
    sessions: HashMap<&'g str, (&'g Corpus, Session<'g>)>,
    shutdown: AtomicBool,
    in_flight: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    obs: Obs,
    addr: SocketAddr,
    workers: usize,
}

fn run_on(
    listener: TcpListener,
    addr: SocketAddr,
    config: &ServerConfig,
) -> Result<ServerStats, ServeError> {
    let mut corpora = Vec::with_capacity(config.corpora.len());
    for spec in &config.corpora {
        let corpus = if config.with_repair {
            Corpus::build_with_repair(spec)?
        } else {
            Corpus::build(spec)?
        };
        corpora.push(corpus);
    }
    let mut sessions = HashMap::new();
    for (spec, corpus) in config.corpora.iter().zip(&corpora) {
        let session = Pipeline::on(corpus.graph())
            .seed(config.seed)
            .threads(config.threads)
            .recorder(config.obs.clone())
            .build()?;
        let label = spec.family.label();
        if sessions.insert(label, (corpus, session)).is_some() {
            return Err(ServeError::Protocol(format!(
                "duplicate graph label `{label}` — one corpus per family"
            )));
        }
    }
    let shared = Shared {
        sessions,
        shutdown: AtomicBool::new(false),
        in_flight: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        obs: config.obs.clone(),
        addr,
        workers: config.workers.max(1),
    };
    thread::scope(|scope| {
        for _ in 0..shared.workers {
            scope.spawn(|| worker_loop(&listener, &shared));
        }
    });
    Ok(ServerStats {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
    })
}

fn worker_loop(listener: &TcpListener, shared: &Shared<'_>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        // A connection accepted after the flag went up is a shutdown
        // wakeup (or an unlucky late client): drop it unread.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        serve_connection(stream, shared);
    }
}

/// Serves one connection to EOF: read a line, answer a line. Returns
/// when the client closes (or on an unrecoverable socket error).
fn serve_connection(stream: TcpStream, shared: &Shared<'_>) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    if shared.obs.is_on() {
        shared.obs.counter_add("server/connections", 1);
    }
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return, // client went away mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let depth = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        if shared.obs.is_on() {
            shared.obs.gauge_max("server/queue_depth", depth);
        }
        let response = answer(&line, shared);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.requests.fetch_add(1, Ordering::SeqCst);
        if shared.obs.is_on() {
            shared.obs.counter_add("server/requests", 1);
        }
        let mut wire = response.to_line();
        wire.push('\n');
        if writer.write_all(wire.as_bytes()).is_err() {
            return;
        }
        // `shutdown` keeps this connection alive for the client to close,
        // but stops every other worker from taking new ones.
        if matches!(response, Response::Draining) {
            begin_drain(shared);
        }
    }
}

/// Raises the shutdown flag and self-connects once per worker so no
/// sibling stays parked in `accept()` forever.
fn begin_drain(shared: &Shared<'_>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // someone else already started the drain
    }
    if shared.obs.is_on() {
        shared.obs.counter_add("server/shutdowns", 1);
    }
    for _ in 0..shared.workers {
        drop(TcpStream::connect(shared.addr));
    }
}

fn answer(line: &str, shared: &Shared<'_>) -> Response {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return Response::Error { message },
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Draining,
        Request::Metrics => Response::Metrics {
            prometheus: shared.obs.snapshot().to_prometheus(),
        },
        Request::Query { graph, kind, entry } => serve_query(&graph, kind, entry, shared),
    }
}

/// Timer path for one query kind — static so recording never allocates.
fn kind_timer(kind: QueryKind) -> &'static str {
    match kind {
        QueryKind::Construct => "server/query/construct",
        QueryKind::Verify => "server/query/verify",
        QueryKind::Quality => "server/query/quality",
        QueryKind::Mst => "server/query/mst",
        QueryKind::Repair => "server/query/repair",
    }
}

fn serve_query(graph: &str, kind: QueryKind, entry: usize, shared: &Shared<'_>) -> Response {
    let Some((corpus, session)) = shared.sessions.get(graph) else {
        let known: Vec<&str> = shared.sessions.keys().copied().collect();
        return Response::Error {
            message: format!("unknown graph `{graph}`; serving {known:?}"),
        };
    };
    if entry >= corpus.len() {
        return Response::Error {
            message: format!(
                "entry {entry} out of range for `{graph}` ({} entries)",
                corpus.len()
            ),
        };
    }
    if kind == QueryKind::Repair && corpus.entries()[entry].repair.is_none() {
        return Response::Error {
            message: format!(
                "`{graph}` was built without repair cases; start the server with with_repair"
            ),
        };
    }
    let event = QueryEvent {
        kind,
        entry,
        arrival_nanos: 0,
    };
    match session.serve_shared(query_of(corpus, &event)) {
        Ok(served) => {
            if shared.obs.is_on() {
                shared.obs.timer_record(kind_timer(kind), served.wall_nanos);
            }
            Response::Served {
                kind,
                entry,
                digest: served.digest,
                wall_nanos: served.wall_nanos,
                rounds_charged: served.rounds_charged,
                all_good: served.all_good,
            }
        }
        Err(err) => Response::Error {
            message: format!("query failed: {err}"),
        },
    }
}
