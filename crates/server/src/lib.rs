//! A long-running concurrent query server over shared warm
//! [`Session`](lcs_api::Session)s: line-JSON over TCP, `std::net` only.
//!
//! Every earlier tier rebuilds its sessions per run; this crate is the
//! process that *holds* them. Decomposition state is expensive to build
//! and cheap to query — exactly the asymmetry a warm server amortizes —
//! so the server builds one [`lcs_workload::Corpus`] per graph family at
//! startup, wraps each graph in one warm session, and lets N worker
//! threads answer concurrent client connections through
//! [`Session::serve_shared`](lcs_api::Session::serve_shared) (`&self` —
//! the checkout-pool refactor made query paths lock-free above the
//! workspace free-list, so concurrent serving needs no session lock).
//!
//! The pieces:
//!
//! * **[`protocol`]** — the wire grammar: one JSON object per line, four
//!   request ops (`query` / `metrics` / `ping` / `shutdown`), typed
//!   parse/format with round-trip tests. Digests travel as bare JSON
//!   integers and survive beyond 2^53.
//! * **[`server`]** — [`ServerConfig`] → [`ServerHandle::spawn`]: bind,
//!   build corpora + warm sessions, serve until a `shutdown` line;
//!   graceful drain (no signals), per-kind latency probes, queue-depth
//!   gauge, Prometheus export over the `metrics` op.
//! * **[`client`]** — loopback replay drivers that re-use
//!   [`lcs_workload::generate_trace`] traces: closed loop (k
//!   connections, round-robin, per-request round-trip time) and open
//!   loop (one connection pacing the arrival schedule, queueing delay
//!   charged). Outcomes carry trace-order digest sequences, so a TCP
//!   replay is digest-comparable to an in-process replay.
//!
//! # Determinism contract
//!
//! The wire adds latency, never values: a response's `digest` is the
//! same [`lcs_api::ValueDigest`] the in-process serve path produces, so
//! the digest multiset of any replay is identical across client counts,
//! worker counts, and `LCS_THREADS`. Timings are measurements; values
//! are facts.
//!
//! # Quick start
//!
//! ```
//! use lcs_server::{client, ServerConfig, ServerHandle};
//! use lcs_workload::{generate_trace, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec};
//!
//! let server = ServerHandle::spawn(ServerConfig::new(vec![CorpusSpec {
//!     family: Family::Grid,
//!     size: 5,
//!     entries: 2,
//!     seed: 7,
//! }]))
//! .unwrap();
//! let spec = WorkloadSpec::new(
//!     Mode::Closed { clients: 2, think_nanos: 0 },
//!     8,
//!     0.0,
//!     QueryMix::consume(),
//!     7,
//! );
//! let trace = generate_trace(&spec, 2).unwrap();
//! let outcome = client::replay_closed(server.addr(), "grid", &trace, 2, 0).unwrap();
//! assert_eq!(outcome.queries, 8);
//! client::shutdown(server.addr()).unwrap();
//! server.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{replay_closed, replay_open, ReplayOutcome};
pub use protocol::{Request, Response};
pub use server::{ServerConfig, ServerHandle, ServerStats};

/// Everything that can go wrong serving or replaying: socket I/O,
/// pipeline errors from corpus/session building or query serving, and
/// wire-protocol violations.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or stream error.
    Io(std::io::Error),
    /// A pipeline error (corpus build, session build, or query).
    Lcs(lcs_api::LcsError),
    /// A malformed or unexpected protocol line (including server-side
    /// `Error` responses surfaced to a replay caller).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "server i/o error: {err}"),
            ServeError::Lcs(err) => write!(f, "pipeline error: {err}"),
            ServeError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(err) => Some(err),
            ServeError::Lcs(err) => Some(err),
            ServeError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

impl From<lcs_api::LcsError> for ServeError {
    fn from(err: lcs_api::LcsError) -> Self {
        ServeError::Lcs(err)
    }
}
