//! Loopback replay clients: drive a running server with a
//! [`lcs_workload`] trace and measure what the wire adds.
//!
//! The two drivers mirror `lcs_workload::run_workload`'s pacing models,
//! but over TCP instead of in-process calls:
//!
//! * **Closed loop** — `k` client threads, each with its own connection,
//!   serving the trace round-robin (client `i` takes events
//!   `i, i+k, i+2k, …`); latency is per-request round-trip time.
//! * **Open loop** — one connection replaying the trace's arrival
//!   schedule; latency is completion − scheduled arrival, so queueing
//!   delay counts (no coordinated omission).
//!
//! Digests follow the same determinism contract as the in-process
//! drivers: [`ReplayOutcome::digests`] is the per-query digest sequence
//! *in trace order* (reassembled from the round-robin split), and
//! [`ReplayOutcome::digest`] folds per-client chains in client order —
//! so a TCP replay is digest-comparable against a direct
//! `Session::serve` replay of the same trace.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use lcs_api::ValueDigest;
use lcs_workload::{LatencyHistogram, QueryEvent};

use crate::protocol::{Request, Response};
use crate::ServeError;

/// What a replay measured and observed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// All clients' latency sub-histograms merged.
    pub histogram: LatencyHistogram,
    /// Per-kind latency histograms, in
    /// `[construct, verify, quality, mst, repair]` order.
    pub kind_histograms: [LatencyHistogram; 5],
    /// Every response's value digest, in trace order.
    pub digests: Vec<u64>,
    /// FNV-1a fold of per-client digest chains, in client order — the
    /// one-number determinism check.
    pub digest: u64,
    /// Requests answered (equals the trace length on success).
    pub queries: u64,
    /// Wall-clock nanoseconds for the whole replay.
    pub wall_nanos: u64,
}

impl ReplayOutcome {
    /// Served queries per second of wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.queries as f64 * 1e9 / self.wall_nanos as f64
        }
    }
}

/// One blocking request/response exchange on an open connection.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Result<Response, ServeError> {
    let mut wire = request.to_line();
    wire.push('\n');
    writer.write_all(wire.as_bytes())?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ServeError::Protocol(
            "server closed the connection mid-replay".to_string(),
        ));
    }
    Response::parse(&line).map_err(ServeError::Protocol)
}

/// Opens a connection as a (writer, reader) pair.
fn connect(addr: SocketAddr) -> Result<(TcpStream, BufReader<TcpStream>), ServeError> {
    let stream = TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

/// What one client thread brings back: (slot, digest, latency) per
/// request in its serving order, plus its chain digest.
struct ClientRun {
    client: usize,
    samples: Vec<(usize, u64, u64, usize)>, // (trace slot, digest, latency nanos, kind index)
    chain: u64,
}

fn serve_slice(
    client: usize,
    addr: SocketAddr,
    graph: &str,
    events: &[(usize, QueryEvent)],
    think_nanos: u64,
) -> Result<ClientRun, ServeError> {
    let (mut writer, mut reader) = connect(addr)?;
    let mut samples = Vec::with_capacity(events.len());
    let mut chain = ValueDigest::new();
    for &(slot, event) in events {
        let request = Request::Query {
            graph: graph.to_string(),
            kind: event.kind,
            entry: event.entry,
        };
        let started = Instant::now();
        let response = exchange(&mut writer, &mut reader, &request)?;
        let latency = started.elapsed().as_nanos() as u64;
        match response {
            Response::Served { digest, .. } => {
                chain.push(digest);
                samples.push((slot, digest, latency, event.kind.index()));
            }
            Response::Error { message } => return Err(ServeError::Protocol(message)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected a served response, got {other:?}"
                )))
            }
        }
        if think_nanos > 0 {
            thread::sleep(Duration::from_nanos(think_nanos));
        }
    }
    Ok(ClientRun {
        client,
        samples,
        chain: chain.value(),
    })
}

fn assemble(mut runs: Vec<ClientRun>, trace_len: usize, wall_nanos: u64) -> ReplayOutcome {
    runs.sort_by_key(|run| run.client);
    let mut histogram = LatencyHistogram::new();
    let mut kind_histograms: [LatencyHistogram; 5] = Default::default();
    let mut digests = vec![0u64; trace_len];
    let mut fold = ValueDigest::new();
    let mut queries = 0u64;
    for run in &runs {
        for &(slot, digest, latency, kind) in &run.samples {
            digests[slot] = digest;
            histogram.record(latency);
            kind_histograms[kind].record(latency);
            queries += 1;
        }
        fold.push(run.chain);
    }
    ReplayOutcome {
        histogram,
        kind_histograms,
        digests,
        digest: fold.value(),
        queries,
        wall_nanos,
    }
}

/// Closed-loop replay: `clients` threads round-robin the trace against
/// `graph` on the server at `addr`, each measuring per-request
/// round-trip time, with optional per-request think time.
///
/// # Errors
///
/// The first I/O or protocol error any client hits (a server-side
/// `Error` response is a [`ServeError::Protocol`]).
pub fn replay_closed(
    addr: SocketAddr,
    graph: &str,
    trace: &[QueryEvent],
    clients: usize,
    think_nanos: u64,
) -> Result<ReplayOutcome, ServeError> {
    let clients = clients.max(1);
    let started = Instant::now();
    let runs: Vec<Result<ClientRun, ServeError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let slice: Vec<(usize, QueryEvent)> = trace
                    .iter()
                    .enumerate()
                    .skip(client)
                    .step_by(clients)
                    .map(|(slot, &event)| (slot, event))
                    .collect();
                scope.spawn(move || serve_slice(client, addr, graph, &slice, think_nanos))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("replay client panicked"))
            .collect()
    });
    let runs: Result<Vec<ClientRun>, ServeError> = runs.into_iter().collect();
    Ok(assemble(
        runs?,
        trace.len(),
        started.elapsed().as_nanos() as u64,
    ))
}

/// Open-loop replay: one connection paces the trace's arrival schedule
/// and charges completion − scheduled arrival to latency, so a request
/// that queues behind a slow one pays its queueing delay.
///
/// # Errors
///
/// The first I/O or protocol error (a server-side `Error` response is a
/// [`ServeError::Protocol`]).
pub fn replay_open(
    addr: SocketAddr,
    graph: &str,
    trace: &[QueryEvent],
) -> Result<ReplayOutcome, ServeError> {
    let (mut writer, mut reader) = connect(addr)?;
    let started = Instant::now();
    let mut samples = Vec::with_capacity(trace.len());
    let mut chain = ValueDigest::new();
    for (slot, event) in trace.iter().enumerate() {
        let scheduled = Duration::from_nanos(event.arrival_nanos);
        if let Some(wait) = scheduled.checked_sub(started.elapsed()) {
            if !wait.is_zero() {
                thread::sleep(wait);
            }
        }
        let request = Request::Query {
            graph: graph.to_string(),
            kind: event.kind,
            entry: event.entry,
        };
        let response = exchange(&mut writer, &mut reader, &request)?;
        let latency = started.elapsed().saturating_sub(scheduled).as_nanos() as u64;
        match response {
            Response::Served { digest, .. } => {
                chain.push(digest);
                samples.push((slot, digest, latency, event.kind.index()));
            }
            Response::Error { message } => return Err(ServeError::Protocol(message)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected a served response, got {other:?}"
                )))
            }
        }
    }
    let wall_nanos = started.elapsed().as_nanos() as u64;
    let run = ClientRun {
        client: 0,
        samples,
        chain: chain.value(),
    };
    Ok(assemble(vec![run], trace.len(), wall_nanos))
}

/// Sends `{"op":"shutdown"}` and waits for the draining acknowledgment.
///
/// # Errors
///
/// I/O errors, or a protocol error if the server answers anything but
/// `draining`.
pub fn shutdown(addr: SocketAddr) -> Result<(), ServeError> {
    let (mut writer, mut reader) = connect(addr)?;
    match exchange(&mut writer, &mut reader, &Request::Shutdown)? {
        Response::Draining => Ok(()),
        other => Err(ServeError::Protocol(format!(
            "expected draining, got {other:?}"
        ))),
    }
}

/// Sends `{"op":"ping"}` and checks for the pong.
///
/// # Errors
///
/// I/O errors, or a protocol error on any non-pong answer.
pub fn ping(addr: SocketAddr) -> Result<(), ServeError> {
    let (mut writer, mut reader) = connect(addr)?;
    match exchange(&mut writer, &mut reader, &Request::Ping)? {
        Response::Pong => Ok(()),
        other => Err(ServeError::Protocol(format!(
            "expected pong, got {other:?}"
        ))),
    }
}

/// Fetches the server's Prometheus metrics snapshot.
///
/// # Errors
///
/// I/O errors, or a protocol error on any non-metrics answer.
pub fn fetch_metrics(addr: SocketAddr) -> Result<String, ServeError> {
    let (mut writer, mut reader) = connect(addr)?;
    match exchange(&mut writer, &mut reader, &Request::Metrics)? {
        Response::Metrics { prometheus } => Ok(prometheus),
        other => Err(ServeError::Protocol(format!(
            "expected metrics, got {other:?}"
        ))),
    }
}
