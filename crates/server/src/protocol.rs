//! The line-JSON wire protocol: one JSON object per `\n`-terminated line,
//! in both directions.
//!
//! The grammar is deliberately tiny — four request ops, five response
//! shapes — because the server's job is dispatch, not negotiation. Every
//! request names its operation in an `"op"` member; every response leads
//! with an `"ok"` boolean so clients can branch before looking at
//! anything else. Digests travel as bare JSON integers: the
//! [`lcs_obs::json::JsonValue`] parser keeps number tokens as raw text,
//! so `u64` digests beyond 2^53 round-trip exactly (and Python readers
//! get arbitrary-precision ints for free).
//!
//! ```text
//! request  = query | metrics | ping | shutdown
//! query    = {"op":"query","graph":<label>,"kind":<kind>,"entry":<n>}
//! metrics  = {"op":"metrics"}
//! ping     = {"op":"ping"}
//! shutdown = {"op":"shutdown"}
//! kind     = "construct" | "verify" | "quality" | "mst" | "repair"
//!
//! response = served | metrics' | pong | draining | error
//! served   = {"ok":true,"op":"query","kind":<kind>,"entry":<n>,
//!             "digest":<u64>,"wall_nanos":<u64>,
//!             "rounds_charged":<u64>,"all_good":<bool>}
//! metrics' = {"ok":true,"op":"metrics","prometheus":<string>}
//! pong     = {"ok":true,"op":"pong"}
//! draining = {"ok":true,"op":"shutdown","draining":true}
//! error    = {"ok":false,"error":<string>}
//! ```
//!
//! Both sides parse with the same recursive-descent parser, and
//! [`Request::to_line`] / [`Response::to_line`] emit exactly the member
//! order above, so a formatted line re-parses to an equal value (pinned
//! by the round-trip tests below).

use lcs_obs::json::{escape, JsonValue};
use lcs_workload::QueryKind;

/// A client request, one per protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Serve one query against a named graph's corpus entry.
    Query {
        /// Corpus label (the graph family label, e.g. `"grid"`).
        graph: String,
        /// Which query kind to run against the entry.
        kind: QueryKind,
        /// Corpus entry index.
        entry: usize,
    },
    /// Return the server's metrics snapshot in Prometheus text format.
    Metrics,
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Begin graceful shutdown: the server acknowledges with
    /// [`Response::Draining`], stops accepting new connections, and
    /// drains in-flight ones.
    Shutdown,
}

/// A server response, one per protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A served query result — the wire form of [`lcs_api::Served`],
    /// echoing the kind and entry for client-side bookkeeping.
    Served {
        /// Query kind echoed from the request.
        kind: QueryKind,
        /// Corpus entry echoed from the request.
        entry: usize,
        /// FNV-1a digest of the result value ([`lcs_api::ValueDigest`]).
        digest: u64,
        /// Server-side service time in nanoseconds (a measurement).
        wall_nanos: u64,
        /// Simulated-engine rounds charged (0 under the scheduled engine).
        rounds_charged: u64,
        /// Whether the result satisfied its quality/verification check.
        all_good: bool,
    },
    /// Prometheus text-format metrics snapshot.
    Metrics {
        /// The full export body (newline-separated series).
        prometheus: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledges [`Request::Shutdown`]; the connection stays usable
    /// until the client closes it.
    Draining,
    /// Any failure: unparseable line, unknown graph/kind, out-of-range
    /// entry, or a query error.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Parses a query-kind label (`"construct"`, `"verify"`, …).
///
/// # Errors
///
/// A message naming the unknown label.
pub fn kind_from_label(label: &str) -> Result<QueryKind, String> {
    QueryKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| format!("unknown query kind `{label}`"))
}

fn member<'v>(value: &'v JsonValue, key: &str, line_kind: &str) -> Result<&'v JsonValue, String> {
    value
        .get(key)
        .ok_or_else(|| format!("{line_kind} line missing `{key}`"))
}

fn string_member(value: &JsonValue, key: &str, line_kind: &str) -> Result<String, String> {
    member(value, key, line_kind)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{line_kind} `{key}` must be a string"))
}

fn u64_member(value: &JsonValue, key: &str, line_kind: &str) -> Result<u64, String> {
    member(value, key, line_kind)?
        .as_u64()
        .ok_or_else(|| format!("{line_kind} `{key}` must be an unsigned integer"))
}

fn bool_member(value: &JsonValue, key: &str, line_kind: &str) -> Result<bool, String> {
    match member(value, key, line_kind)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{line_kind} `{key}` must be a boolean")),
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem (JSON syntax,
    /// missing member, unknown op or kind).
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = JsonValue::parse(line.trim())?;
        let op = string_member(&value, "op", "request")?;
        match op.as_str() {
            "query" => Ok(Request::Query {
                graph: string_member(&value, "graph", "query")?,
                kind: kind_from_label(&string_member(&value, "kind", "query")?)?,
                entry: u64_member(&value, "entry", "query")? as usize,
            }),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Formats the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Query { graph, kind, entry } => format!(
                "{{\"op\":\"query\",\"graph\":\"{}\",\"kind\":\"{}\",\"entry\":{entry}}}",
                escape(graph),
                kind.label(),
            ),
            Request::Metrics => "{\"op\":\"metrics\"}".to_string(),
            Request::Ping => "{\"op\":\"ping\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        }
    }
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem.
    pub fn parse(line: &str) -> Result<Response, String> {
        let value = JsonValue::parse(line.trim())?;
        if !bool_member(&value, "ok", "response")? {
            return Ok(Response::Error {
                message: string_member(&value, "error", "error")?,
            });
        }
        let op = string_member(&value, "op", "response")?;
        match op.as_str() {
            "query" => Ok(Response::Served {
                kind: kind_from_label(&string_member(&value, "kind", "served")?)?,
                entry: u64_member(&value, "entry", "served")? as usize,
                digest: u64_member(&value, "digest", "served")?,
                wall_nanos: u64_member(&value, "wall_nanos", "served")?,
                rounds_charged: u64_member(&value, "rounds_charged", "served")?,
                all_good: bool_member(&value, "all_good", "served")?,
            }),
            "metrics" => Ok(Response::Metrics {
                prometheus: string_member(&value, "prometheus", "metrics")?,
            }),
            "pong" => Ok(Response::Pong),
            "shutdown" => Ok(Response::Draining),
            other => Err(format!("unknown response op `{other}`")),
        }
    }

    /// Formats the response as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Served {
                kind,
                entry,
                digest,
                wall_nanos,
                rounds_charged,
                all_good,
            } => format!(
                "{{\"ok\":true,\"op\":\"query\",\"kind\":\"{}\",\"entry\":{entry},\"digest\":{digest},\"wall_nanos\":{wall_nanos},\"rounds_charged\":{rounds_charged},\"all_good\":{all_good}}}",
                kind.label(),
            ),
            Response::Metrics { prometheus } => format!(
                "{{\"ok\":true,\"op\":\"metrics\",\"prometheus\":\"{}\"}}",
                escape(prometheus),
            ),
            Response::Pong => "{\"ok\":true,\"op\":\"pong\"}".to_string(),
            Response::Draining => "{\"ok\":true,\"op\":\"shutdown\",\"draining\":true}".to_string(),
            Response::Error { message } => {
                format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(message))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_wire_form() {
        let requests = [
            Request::Query {
                graph: "grid".to_string(),
                kind: QueryKind::Verify,
                entry: 3,
            },
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(Request::parse(&line), Ok(request), "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip_including_large_digests() {
        let responses = [
            Response::Served {
                kind: QueryKind::Mst,
                entry: 7,
                digest: u64::MAX - 11, // beyond 2^53: raw-token numbers must survive
                wall_nanos: 123_456_789,
                rounds_charged: 42,
                all_good: true,
            },
            Response::Metrics {
                prometheus: "lcs_server_requests_total 5\n# escaped \"quotes\"".to_string(),
            },
            Response::Pong,
            Response::Draining,
            Response::Error {
                message: "unknown graph `m\u{f6}bius`".to_string(),
            },
        ];
        for response in responses {
            let line = response.to_line();
            assert_eq!(Response::parse(&line), Ok(response), "line: {line}");
        }
    }

    #[test]
    fn every_kind_label_parses_back() {
        for kind in QueryKind::ALL {
            assert_eq!(kind_from_label(kind.label()), Ok(kind));
        }
        assert!(kind_from_label("bogus").is_err());
    }

    #[test]
    fn malformed_lines_are_descriptive_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\":\"warp\"}")
            .unwrap_err()
            .contains("warp"));
        assert!(Request::parse("{\"op\":\"query\",\"graph\":\"grid\"}")
            .unwrap_err()
            .contains("kind"));
        assert!(Response::parse("{\"ok\":false,\"error\":\"boom\"}").is_ok());
        assert!(Response::parse("{\"ok\":true,\"op\":\"query\",\"kind\":\"verify\"}").is_err());
    }
}
