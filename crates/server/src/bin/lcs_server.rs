//! The `lcs_server` binary: build a corpus per requested graph family,
//! warm one session per graph, and serve line-JSON queries over TCP
//! until a client sends `{"op":"shutdown"}`.
//!
//! ```text
//! lcs_server [--addr 127.0.0.1:0] [--workers N] [--family grid]...
//!            [--size N] [--entries K] [--seed S] [--with-repair]
//! ```
//!
//! `--family` may repeat (one corpus per family; default `grid`). The
//! bound address is printed as `listening on <addr>` once serving is
//! ready — with `--addr 127.0.0.1:0` that line is how scripts learn the
//! ephemeral port. Engine selection follows `LCS_THREADS` as everywhere
//! else. Exits 0 after a graceful drain, printing lifetime stats.

use std::process::ExitCode;

use lcs_obs::Obs;
use lcs_server::{ServeError, ServerConfig, ServerHandle};
use lcs_workload::{CorpusSpec, Family};

struct Args {
    addr: String,
    workers: usize,
    families: Vec<Family>,
    size: usize,
    entries: usize,
    seed: u64,
    with_repair: bool,
}

fn family_from_label(label: &str) -> Result<Family, String> {
    Family::ALL
        .into_iter()
        .find(|f| f.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = Family::ALL.iter().map(|f| f.label()).collect();
            format!("unknown family `{label}`; expected one of {known:?}")
        })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        families: Vec::new(),
        size: 8,
        entries: 4,
        seed: 7,
        with_repair: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--family" => args.families.push(family_from_label(&value("--family")?)?),
            "--size" => {
                args.size = value("--size")?
                    .parse()
                    .map_err(|e| format!("--size: {e}"))?
            }
            "--entries" => {
                args.entries = value("--entries")?
                    .parse()
                    .map_err(|e| format!("--entries: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--with-repair" => args.with_repair = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lcs_server [--addr A] [--workers N] [--family F]... \
                            [--size N] [--entries K] [--seed S] [--with-repair]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    if args.families.is_empty() {
        args.families.push(Family::Grid);
    }
    Ok(args)
}

fn serve(args: Args) -> Result<(), ServeError> {
    let corpora: Vec<CorpusSpec> = args
        .families
        .iter()
        .map(|&family| CorpusSpec {
            family,
            size: args.size,
            entries: args.entries,
            seed: args.seed,
        })
        .collect();
    let labels: Vec<&str> = args.families.iter().map(|f| f.label()).collect();
    let mut config = ServerConfig::new(corpora)
        .workers(args.workers)
        .seed(args.seed)
        .recorder(Obs::recording());
    if args.with_repair {
        config = config.with_repair();
    }
    let server = ServerHandle::spawn(config)?;
    // Corpora build on the server thread; wait for readiness so the
    // printed address means "connect now works".
    lcs_server::client::ping(server.addr())?;
    println!(
        "listening on {} ({:?}, {} workers)",
        server.addr(),
        labels,
        args.workers
    );
    let stats = server.join()?;
    println!(
        "drained: {} connections, {} requests",
        stats.connections, stats.requests
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match serve(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("lcs_server: {err}");
            ExitCode::FAILURE
        }
    }
}
