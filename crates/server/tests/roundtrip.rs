//! End-to-end server tests on loopback: replayed traces must be
//! digest-identical to an in-process `Session::serve_shared` replay,
//! shutdown must drain gracefully, and the metrics op must export the
//! serving probes.

use lcs_api::Pipeline;
use lcs_obs::Obs;
use lcs_server::{client, ServerConfig, ServerHandle};
use lcs_workload::{
    generate_trace, query_of, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec,
};

fn spec_for(family: Family) -> CorpusSpec {
    CorpusSpec {
        family,
        size: 5,
        entries: 3,
        seed: 11,
    }
}

fn trace_spec(queries: usize, clients: usize) -> WorkloadSpec {
    WorkloadSpec::new(
        Mode::Closed {
            clients,
            think_nanos: 0,
        },
        queries,
        1.0,
        QueryMix::mixed(),
        11,
    )
}

/// The trace replayed directly through one warm session, in trace order.
fn direct_digests(corpus: &Corpus, spec: &WorkloadSpec) -> Vec<u64> {
    let session = Pipeline::on(corpus.graph())
        .seed(spec.seed)
        .build()
        .expect("session builds");
    let trace = generate_trace(spec, corpus.len()).expect("trace generates");
    trace
        .iter()
        .map(|event| {
            session
                .serve_shared(query_of(corpus, event))
                .expect("query serves")
                .digest
        })
        .collect()
}

#[test]
fn tcp_replay_is_digest_identical_to_direct_serving() {
    let corpus_spec = spec_for(Family::Grid);
    let corpus = Corpus::build(&corpus_spec).expect("corpus builds");
    let spec = trace_spec(24, 3);
    let want = direct_digests(&corpus, &spec);

    let server = ServerHandle::spawn(ServerConfig::new(vec![corpus_spec]).workers(3).seed(11))
        .expect("server spawns");
    let trace = generate_trace(&spec, corpus.len()).expect("trace generates");
    let outcome = client::replay_closed(server.addr(), "grid", &trace, 3, 0).expect("replay runs");
    assert_eq!(outcome.queries, 24);
    assert_eq!(outcome.digests, want, "wire must add latency, not values");

    // Open loop over the same trace: same digests, same order.
    let open = client::replay_open(server.addr(), "grid", &trace).expect("open replay runs");
    assert_eq!(open.digests, want);

    client::shutdown(server.addr()).expect("shutdown acknowledged");
    let stats = server.join().expect("server drains");
    // 3 closed-loop clients + 1 open-loop + 1 shutdown connection.
    assert_eq!(stats.connections, 5);
    assert_eq!(stats.requests, 24 + 24 + 1);
}

#[test]
fn scripted_session_pings_queries_and_shuts_down() {
    let server = ServerHandle::spawn(
        ServerConfig::new(vec![spec_for(Family::Wheel)])
            .workers(2)
            .seed(11)
            .recorder(Obs::recording()),
    )
    .expect("server spawns");
    let addr = server.addr();
    client::ping(addr).expect("ping answers");

    let spec = trace_spec(8, 1);
    let corpus = Corpus::build(&spec_for(Family::Wheel)).expect("corpus builds");
    let trace = generate_trace(&spec, corpus.len()).expect("trace generates");
    let outcome = client::replay_closed(addr, "wheel", &trace, 1, 0).expect("replay runs");
    assert_eq!(outcome.digests, direct_digests(&corpus, &spec));

    let prometheus = client::fetch_metrics(addr).expect("metrics export");
    assert!(
        prometheus.contains("lcs_server_requests_total"),
        "export should carry the server request counter:\n{prometheus}"
    );
    assert!(
        prometheus.contains("lcs_server_query_"),
        "export should carry per-kind latency summaries:\n{prometheus}"
    );

    client::shutdown(addr).expect("shutdown acknowledged");
    server.join().expect("server drains");
    // After the drain, new connections must be refused or dropped unread.
    assert!(client::ping(addr).is_err(), "drained server must not serve");
}

#[test]
fn unknown_graphs_kinds_and_entries_are_typed_errors() {
    let server = ServerHandle::spawn(ServerConfig::new(vec![spec_for(Family::Torus)]).seed(11))
        .expect("server spawns");
    let addr = server.addr();

    let corpus = Corpus::build(&spec_for(Family::Torus)).expect("corpus builds");
    let spec = trace_spec(4, 1);
    let trace = generate_trace(&spec, corpus.len()).expect("trace generates");

    // Wrong graph label → protocol error naming the known graphs.
    let err = client::replay_closed(addr, "grid", &trace[..1], 1, 0).unwrap_err();
    assert!(err.to_string().contains("unknown graph"), "got: {err}");

    // Out-of-range entry → protocol error, connection stays serviceable.
    let mut event = trace[0];
    event.entry = 99;
    let err = client::replay_closed(addr, "torus", &[event], 1, 0).unwrap_err();
    assert!(err.to_string().contains("out of range"), "got: {err}");

    // Repair against a corpus built without repair cases.
    let mut repair = trace[0];
    repair.kind = lcs_workload::QueryKind::Repair;
    repair.entry = 0;
    let err = client::replay_closed(addr, "torus", &[repair], 1, 0).unwrap_err();
    assert!(err.to_string().contains("repair"), "got: {err}");

    // The server survives all of that and still answers.
    let outcome = client::replay_closed(addr, "torus", &trace, 1, 0).expect("replay runs");
    assert_eq!(outcome.queries, 4);

    client::shutdown(addr).expect("shutdown acknowledged");
    server.join().expect("server drains");
}
