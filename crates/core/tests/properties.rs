//! Property-based tests for the shortcut framework invariants.
//!
//! These check the paper's structural guarantees on randomized instances:
//! Lemma 1 (dilation vs block parameter), Lemma 7 / Lemma 5 (core subroutine
//! guarantees), Theorem 3 (FindShortcut output quality), and the internal
//! consistency of the block-component decomposition.

#![allow(deprecated)]

use proptest::prelude::*;

use lcs_core::construction::{
    core_fast, core_slow, doubling_search, CoreFastConfig, DoublingConfig, FindShortcut,
    FindShortcutConfig,
};
use lcs_core::existential::{ancestor_shortcut, reference_parameters};
use lcs_core::routing::PartRouter;
use lcs_core::TreeShortcut;
use lcs_graph::{generators, NodeId, Partition, RootedTree};

/// A random connected instance: graph, BFS tree and a BFS-ball partition.
fn random_instance(
    n: usize,
    extra: usize,
    parts: usize,
    seed: u64,
) -> (lcs_graph::Graph, RootedTree, Partition) {
    let graph = generators::random_connected(n, extra, seed);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let parts = parts.clamp(1, n);
    let partition = generators::partitions::random_bfs_balls(&graph, parts, seed ^ 0x5a5a);
    (graph, tree, partition)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 1: for any tree-restricted shortcut, dilation ≤ b(2D + 1).
    /// Checked on the ancestor reference shortcut and on the empty shortcut.
    #[test]
    fn lemma1_dilation_bound(
        n in 6usize..40,
        extra in 0usize..30,
        parts in 1usize..8,
        seed in 0u64..500,
    ) {
        let (graph, tree, partition) = random_instance(n, extra, parts, seed);
        let depth = tree.depth_of_tree();

        let reference = ancestor_shortcut(&graph, &tree, &partition);
        let q = reference.quality(&graph, &partition);
        prop_assert!(q.satisfies_lemma1(depth), "ancestor shortcut: {q:?}, depth {depth}");

        let empty = TreeShortcut::empty(&graph, &partition);
        let q = empty.quality(&graph, &partition);
        prop_assert!(q.satisfies_lemma1(depth), "empty shortcut: {q:?}, depth {depth}");
    }

    /// Lemma 7: CoreSlow respects the 2c assignment cap and leaves at least
    /// half the parts with block parameter ≤ 3b, for (c, b) certified by the
    /// ancestor reference shortcut.
    #[test]
    fn core_slow_guarantees(
        n in 8usize..40,
        extra in 0usize..25,
        parts in 2usize..8,
        seed in 0u64..500,
    ) {
        let (graph, tree, partition) = random_instance(n, extra, parts, seed);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        let active = vec![true; partition.part_count()];

        let outcome = core_slow(&graph, &tree, &partition, c, &active);
        prop_assert!(outcome.shortcut.validate(&tree, &partition).is_ok());
        // Assignment cap 2c on every edge.
        for e in graph.edge_ids() {
            prop_assert!(outcome.shortcut.parts_on_edge(e).len() <= 2 * c);
        }
        // At least half the parts good.
        let good = outcome
            .shortcut
            .block_counts(&graph, &partition)
            .into_iter()
            .filter(|&k| k <= 3 * b)
            .count();
        prop_assert!(2 * good >= partition.part_count());
        // Unusable edges carry no assignment.
        for e in outcome.unusable_edges() {
            prop_assert!(outcome.shortcut.parts_on_edge(e).is_empty());
        }
        // Round count respects the level-synchronous schedule bounds.
        let depth = u64::from(tree.depth_of_tree());
        prop_assert!(outcome.rounds >= depth);
        prop_assert!(outcome.rounds <= depth * (2 * c as u64).max(1));
    }

    /// Lemma 5 (structure only): CoreFast produces a valid tree-restricted
    /// shortcut, never assigns unusable edges, and with the reference
    /// parameters at least half the parts are good for most seeds (checked
    /// deterministically per seed since the instance and seed are both
    /// drawn by proptest).
    #[test]
    fn core_fast_guarantees(
        n in 8usize..40,
        extra in 0usize..25,
        parts in 2usize..8,
        seed in 0u64..500,
    ) {
        let (graph, tree, partition) = random_instance(n, extra, parts, seed);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let c = reference.congestion.max(1);
        let active = vec![true; partition.part_count()];

        let outcome = core_fast(
            &graph,
            &tree,
            &partition,
            &CoreFastConfig::new(c).with_seed(seed),
            &active,
        );
        prop_assert!(outcome.shortcut.validate(&tree, &partition).is_ok());
        for e in outcome.unusable_edges() {
            prop_assert!(outcome.shortcut.parts_on_edge(e).is_empty());
        }
        // The sampling threshold is at least log n, so with the reference
        // congestion every edge assignment stays below threshold * c-ish;
        // at minimum the shortcut must not assign an edge to more parts
        // than exist.
        for e in graph.edge_ids() {
            prop_assert!(outcome.shortcut.parts_on_edge(e).len() <= partition.part_count());
        }
    }

    /// Theorem 3 via the doubling search: the construction terminates on
    /// random connected instances and its output block parameter is at most
    /// 3 times the successful guess.
    #[test]
    fn doubling_search_output_quality(
        n in 8usize..32,
        extra in 0usize..20,
        parts in 1usize..6,
        seed in 0u64..200,
    ) {
        let (graph, tree, partition) = random_instance(n, extra, parts, seed);
        let result = doubling_search(
            &graph,
            &tree,
            &partition,
            DoublingConfig::new().with_seed(seed),
        )
        .expect("doubling always succeeds eventually on small instances");
        let q = result.shortcut.quality(&graph, &partition);
        prop_assert!(q.block_parameter <= 3 * result.block_guess);
        prop_assert!(q.satisfies_lemma1(tree.depth_of_tree()));
        prop_assert!(result.shortcut.validate(&tree, &partition).is_ok());
    }

    /// FindShortcut with exact reference parameters always succeeds and
    /// satisfies the Theorem 3 quality bounds.
    #[test]
    fn find_shortcut_with_reference_parameters(
        n in 8usize..32,
        extra in 0usize..20,
        parts in 1usize..6,
        seed in 0u64..200,
    ) {
        let (graph, tree, partition) = random_instance(n, extra, parts, seed);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        let result = FindShortcut::new(FindShortcutConfig::new(c, b).with_seed(seed))
            .run(&graph, &tree, &partition)
            .unwrap();
        prop_assert!(result.all_parts_good);
        let q = result.shortcut.quality(&graph, &partition);
        prop_assert!(q.block_parameter <= 3 * b);
        prop_assert!(q.congestion <= 8 * c * result.iterations + 1);
    }

    /// Block-component decomposition invariants: blocks of a part are
    /// disjoint, cover every member, and each block is connected within the
    /// tree edges of the part's subgraph.
    #[test]
    fn block_decomposition_invariants(
        n in 6usize..40,
        extra in 0usize..30,
        parts in 1usize..8,
        seed in 0u64..500,
        levels in 0u32..6,
    ) {
        let (graph, tree, partition) = random_instance(n, extra, parts, seed);
        let shortcut = lcs_core::existential::truncated_ancestor_shortcut(
            &graph, &tree, &partition, levels,
        );
        for p in partition.parts() {
            let blocks = shortcut.block_components(&graph, &tree, &partition, p);
            prop_assert_eq!(blocks.len(), shortcut.block_count(&graph, &partition, p));
            // Disjointness and member coverage.
            let mut seen = std::collections::HashSet::new();
            for block in &blocks {
                for &v in &block.nodes {
                    prop_assert!(seen.insert(v), "node {v} appears in two blocks");
                }
                // The root is the shallowest node of the block.
                for &v in &block.nodes {
                    prop_assert!(tree.depth(v) >= block.root_depth);
                }
            }
            for &member in partition.members(p) {
                prop_assert!(seen.contains(&member), "member {member} not covered");
            }
        }
        // The routing engine agrees with the decomposition and its
        // supergraphs are connected.
        let router = PartRouter::new(&graph, &tree, &partition, &shortcut);
        prop_assert!(router.supergraphs_connected());
        prop_assert_eq!(router.block_parameter(), shortcut.block_parameter(&graph, &partition));
    }
}
