//! Property pins of the incremental repair path (DESIGN.md §1d).
//!
//! Two contracts:
//!
//! 1. **Repair ≡ rebuild** — `Session::update_partition(delta)` yields a
//!    byte-identical shortcut, quality record, and per-part verdicts to
//!    tracking the post-delta partition from scratch — across generator
//!    families, delta shapes, engine thread counts {1, 4}, and both
//!    execution modes.
//! 2. **Dirty-closure soundness** — `Partition::apply_tracked` marks
//!    every part whose member set *or* induced edge set changes as dirty;
//!    a clean part keeps both verbatim (up to renumbering via its origin
//!    id), which is exactly the precondition the corpus reuse relies on.

use lcs_api::graph::{generators, EdgeId, Graph, NodeId, Partition};
use lcs_api::{ExecutionMode, PartitionDelta, Pipeline, Strategy, Threads};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small family instance: the graph plus a valid starting partition.
fn family_instance(family: usize, seed: u64) -> (Graph, Partition) {
    match family % 4 {
        0 => (
            generators::grid(5, 5),
            generators::partitions::grid_columns(5, 5),
        ),
        1 => {
            let g = generators::torus(4, 4);
            let p = generators::partitions::random_bfs_balls(&g, 4, seed);
            (g, p)
        }
        2 => {
            let g = generators::random_connected(24, 30, seed);
            let p = generators::partitions::random_bfs_balls(&g, 4, seed ^ 1);
            (g, p)
        }
        _ => (
            generators::wheel(21),
            generators::partitions::wheel_arcs(21, 4),
        ),
    }
}

/// Draws a valid delta of the requested shape, falling back through
/// simpler shapes when the drawn one does not apply to this partition:
/// 0 = single boundary move, 1 = merge two adjacent parts, 2 = split a
/// part at a member, 3 = two stacked boundary moves.
fn valid_delta(graph: &Graph, partition: &Partition, shape: usize, seed: u64) -> PartitionDelta {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let try_move = |rng: &mut ChaCha8Rng| -> Option<PartitionDelta> {
        for _ in 0..64 {
            let v = NodeId::new(rng.gen_range(0..graph.node_count()));
            let Some(src) = partition.part_of(v) else {
                continue;
            };
            if partition.members(src).len() < 2 {
                continue;
            }
            let Some(dst) = graph
                .neighbors(v)
                .find_map(|(u, _)| partition.part_of(u).filter(|&p| p != src))
            else {
                continue;
            };
            let delta = PartitionDelta::new().move_nodes(vec![v], dst);
            if partition
                .apply(&delta)
                .is_ok_and(|p| p.validate(graph).is_ok())
            {
                return Some(delta);
            }
        }
        None
    };
    let merge = || -> Option<PartitionDelta> {
        for (_, edge) in graph.edges() {
            let (Some(a), Some(b)) = (partition.part_of(edge.u), partition.part_of(edge.v)) else {
                continue;
            };
            if a != b {
                return Some(PartitionDelta::new().merge_parts(a.min(b), a.max(b)));
            }
        }
        None
    };
    let split = |rng: &mut ChaCha8Rng| -> Option<PartitionDelta> {
        for _ in 0..64 {
            let v = NodeId::new(rng.gen_range(0..graph.node_count()));
            let Some(src) = partition.part_of(v) else {
                continue;
            };
            if partition.members(src).len() < 2 {
                continue;
            }
            let delta = PartitionDelta::new().split_part(src, vec![v]);
            if partition
                .apply(&delta)
                .is_ok_and(|p| p.validate(graph).is_ok())
            {
                return Some(delta);
            }
        }
        None
    };
    let stacked = |rng: &mut ChaCha8Rng| -> Option<PartitionDelta> {
        let first = try_move(rng)?;
        let mid = partition.apply(&first).ok()?;
        for _ in 0..64 {
            let v = NodeId::new(rng.gen_range(0..graph.node_count()));
            let Some(src) = mid.part_of(v) else {
                continue;
            };
            if mid.members(src).len() < 2 {
                continue;
            }
            let Some(dst) = graph
                .neighbors(v)
                .find_map(|(u, _)| mid.part_of(u).filter(|&p| p != src))
            else {
                continue;
            };
            let mut delta = first.clone();
            delta = delta.move_nodes(vec![v], dst);
            if partition
                .apply(&delta)
                .is_ok_and(|p| p.validate(graph).is_ok())
            {
                return Some(delta);
            }
        }
        Some(first)
    };
    let chosen = match shape % 4 {
        0 => try_move(&mut rng),
        1 => merge(),
        2 => split(&mut rng),
        _ => stacked(&mut rng),
    };
    chosen
        .or_else(merge)
        .expect("every multi-part partition admits at least an adjacent merge")
}

/// Sorted induced edge ids of one part's member set.
fn induced_edges(graph: &Graph, members: &[NodeId]) -> Vec<EdgeId> {
    let mut inside = vec![false; graph.node_count()];
    for &v in members {
        inside[v.index()] = true;
    }
    let mut edges: Vec<EdgeId> = Vec::new();
    for &v in members {
        for (u, e) in graph.neighbors(v) {
            if inside[u.index()] && u > v {
                edges.push(e);
            }
        }
    }
    edges.sort_unstable();
    edges
}

fn check_repair_equals_rebuild(
    family: usize,
    shape: usize,
    seed: u64,
    execution: ExecutionMode,
    threads: usize,
) {
    let (graph, partition) = family_instance(family, seed);
    let delta = valid_delta(&graph, &partition, shape, seed ^ 0xD317A);
    let repaired_partition = partition.apply(&delta).unwrap();

    let build = |target: &Partition| {
        let mut session = Pipeline::on(&graph)
            .seed(seed)
            .execution(execution)
            .threads(Threads::Fixed(threads))
            .build()
            .unwrap();
        session
            .track_partition(target, Strategy::doubling())
            .unwrap()
    };

    // Incremental: track the original, then repair through the delta.
    let mut session = Pipeline::on(&graph)
        .seed(seed)
        .execution(execution)
        .threads(Threads::Fixed(threads))
        .build()
        .unwrap();
    session
        .track_partition(&partition, Strategy::doubling())
        .unwrap();
    let repaired = session.update_partition(&delta).unwrap();

    // From scratch: a fresh session tracks the post-delta partition.
    let rebuilt = build(&repaired_partition);

    assert_eq!(
        repaired.shortcut, rebuilt.shortcut,
        "repair and rebuild disagree on the shortcut \
         (family {family}, shape {shape}, seed {seed}, {execution:?}, t{threads})"
    );
    assert_eq!(repaired.quality, rebuilt.quality, "quality diverged");
    assert_eq!(repaired.good, rebuilt.good, "per-part verdicts diverged");
    assert_eq!(
        repaired.repaired_parts + repaired.reused_parts,
        repaired_partition.part_count(),
        "repair accounting must cover every part"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1, scheduled mode: all four families × all delta shapes
    /// × thread counts 1 and 4.
    #[test]
    fn repair_equals_rebuild_scheduled(
        family in 0usize..4,
        shape in 0usize..4,
        seed in 0u64..1_000,
        four_threads in 0u8..2,
    ) {
        let threads = if four_threads == 1 { 4 } else { 1 };
        check_repair_equals_rebuild(family, shape, seed, ExecutionMode::Scheduled, threads);
    }

    /// Contract 2: a clean (non-dirty) part keeps its member set and its
    /// induced edge set verbatim, located in the new partition via its
    /// origin map — the precondition for reusing its cached state.
    #[test]
    fn dirty_closure_is_sound(
        family in 0usize..4,
        shape in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let (graph, partition) = family_instance(family, seed);
        let delta = valid_delta(&graph, &partition, shape, seed ^ 0xC105);
        let applied = partition.apply_tracked(&graph, &delta).unwrap();
        for p in applied.partition.parts() {
            if applied.dirty.contains(p) {
                continue;
            }
            let origin = applied.origin[p.index()]
                .expect("a clean part always has an origin");
            let old_members = partition.members(origin);
            let new_members = applied.partition.members(p);
            prop_assert_eq!(
                old_members, new_members,
                "clean part changed members"
            );
            prop_assert_eq!(
                induced_edges(&graph, old_members),
                induced_edges(&graph, new_members),
                "clean part changed induced edges"
            );
        }
        // And the closure is tight enough to be useful: a pure merge of
        // two parts never dirties unrelated parts.
        prop_assert!(applied.dirty.len() <= partition.part_count());
    }
}

/// Contract 1, simulated mode: the CONGEST-simulator verification path is
/// expensive, so it runs as a fixed sweep rather than a proptest — one
/// case per family, covering both thread counts and two delta shapes.
#[test]
fn repair_equals_rebuild_simulated_sweep() {
    for family in 0..4 {
        let (shape, threads) = match family % 2 {
            0 => (0, 1),
            _ => (1, 4),
        };
        check_repair_equals_rebuild(
            family,
            shape,
            41 + family as u64,
            ExecutionMode::Simulated,
            threads,
        );
    }
}
