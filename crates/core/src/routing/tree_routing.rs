//! Lemma 2: deterministic routing on families of subtrees.
//!
//! Given a rooted tree `T` of depth `D` and a family of subtrees such that
//! any tree edge is contained in at most `c` subtrees, a convergecast on all
//! subtrees in parallel completes in `O(D + c)` rounds, provided messages
//! contending for the same edge are forwarded in order of (smallest depth of
//! the subtree root, smallest subtree id). This module simulates that
//! schedule edge-by-edge and round-by-round, so the reported round count is
//! the exact behaviour of the deterministic algorithm rather than the bound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lcs_graph::{NodeId, RootedTree};

use crate::BlockComponent;

/// One subtree of the family: its root (shallowest node), the root's depth
/// (the Lemma 2 priority key) and its node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeSpec {
    /// The shallowest node of the subtree.
    pub root: NodeId,
    /// Depth of the root in `T`.
    pub root_depth: u32,
    /// All nodes of the subtree, sorted. Every non-root node's tree parent
    /// must also be in the set (the set must induce a subtree of `T`).
    pub nodes: Vec<NodeId>,
}

impl SubtreeSpec {
    /// Builds a spec from an unsorted node list.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(tree: &RootedTree, mut nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a subtree needs at least one node");
        nodes.sort();
        nodes.dedup();
        let root = *nodes
            .iter()
            .min_by_key(|v| (tree.depth(**v), **v))
            .expect("nonempty");
        SubtreeSpec {
            root,
            root_depth: tree.depth(root),
            nodes,
        }
    }

    /// Returns `true` if `node` belongs to the subtree.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }
}

/// Converts a set of block components (from any number of parts) into the
/// subtree family they form for routing purposes.
pub fn subtree_specs_from_blocks(blocks: &[BlockComponent]) -> Vec<SubtreeSpec> {
    blocks
        .iter()
        .map(|b| SubtreeSpec {
            root: b.root,
            root_depth: b.root_depth,
            nodes: b.nodes.clone(),
        })
        .collect()
}

/// The forwarding priority used when several subtrees contend for the same
/// tree edge in the same round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPriority {
    /// The Lemma 2 rule: smallest subtree-root depth first, ties broken by
    /// smallest subtree index. Guarantees completion within `D + c` rounds.
    #[default]
    BlockRootDepth,
    /// Ablation: ignore the root depth and order by subtree index only.
    IndexOnly,
    /// Ablation: *deepest* subtree root first — the reverse of the Lemma 2
    /// rule, used to demonstrate that the priority matters.
    ReverseDepth,
}

impl RoutingPriority {
    fn key(self, spec: &SubtreeSpec, index: usize) -> (i64, usize) {
        match self {
            RoutingPriority::BlockRootDepth => (i64::from(spec.root_depth), index),
            RoutingPriority::IndexOnly => (0, index),
            RoutingPriority::ReverseDepth => (-i64::from(spec.root_depth), index),
        }
    }
}

/// Result of simulating the Lemma 2 convergecast schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingSchedule {
    /// Number of rounds until every subtree's root has received the
    /// aggregate of its subtree.
    pub rounds: u64,
    /// The largest number of subtrees sharing a single tree edge (the `c` of
    /// Lemma 2).
    pub max_edge_load: usize,
    /// Total number of point-to-point message deliveries performed.
    pub deliveries: u64,
}

/// Simulates a convergecast on every subtree of the family in parallel and
/// returns the exact round count of the deterministic schedule.
///
/// In each round, every node picks — among the subtrees for which it has
/// already heard from all of its children and not yet forwarded — the one
/// with the highest priority and forwards a single (aggregated) message over
/// its tree parent edge. The broadcast direction is symmetric, so the same
/// count applies to broadcasts (Lemma 2 states both).
///
/// The simulation is event-driven in flat, node-indexed scratch: every
/// `(subtree, node)` pair is forwarded exactly once, becoming *ready* the
/// moment its last in-subtree child is heard from, so a per-node heap of
/// ready subtrees replaces the seed implementation's per-round rescan of
/// the whole family through hash maps. Readiness gained during a round is
/// deferred to the next round — exactly the synchronous-rounds semantics —
/// so the reported schedule is unchanged; only the cost of computing it
/// drops from `O(rounds · Σ|subtrees|)` hash operations to
/// `O(Σ|subtrees| · log)` heap operations. (This is what un-bottlenecks
/// the centralized `WholeTree` MST baseline of experiment E4, whose block
/// family is `N` copies of the entire spanning tree.)
///
/// # Panics
///
/// Panics if a subtree is not actually a subtree of `tree` (a non-root node
/// whose parent is outside the node set).
pub fn convergecast_rounds(
    tree: &RootedTree,
    subtrees: &[SubtreeSpec],
    priority: RoutingPriority,
) -> RoutingSchedule {
    if subtrees.is_empty() {
        return RoutingSchedule {
            rounds: 0,
            max_edge_load: 0,
            deliveries: 0,
        };
    }

    let n = tree.node_count();
    // pending[offsets[s] + i] = number of in-subtree children of
    // subtrees[s].nodes[i] not yet heard from (the flat stand-in for the
    // seed's pending[(subtree, node)] hash map).
    let mut offsets: Vec<usize> = Vec::with_capacity(subtrees.len() + 1);
    offsets.push(0);
    for spec in subtrees {
        offsets.push(offsets.last().expect("nonempty") + spec.nodes.len());
    }
    let mut pending: Vec<u32> = vec![0; *offsets.last().expect("nonempty")];
    // How many subtrees contain each node's parent edge.
    let mut edge_load: Vec<u32> = vec![0; n];
    // ready[v]: min-heap of the priority keys of the subtrees node v has
    // fully heard and not yet forwarded. Keys embed the subtree index, so
    // popping the minimum reproduces the seed's "best key wins" scan.
    let mut ready: Vec<BinaryHeap<Reverse<(i64, usize)>>> = vec![BinaryHeap::new(); n];
    let mut active: Vec<NodeId> = Vec::new();
    let mut on_active: Vec<bool> = vec![false; n];
    let mut total_to_send: usize = 0;

    for (s_idx, spec) in subtrees.iter().enumerate() {
        let base = offsets[s_idx];
        for (i, &v) in spec.nodes.iter().enumerate() {
            let children_in_subtree = tree
                .children(v)
                .iter()
                .filter(|c| spec.contains(**c))
                .count();
            pending[base + i] = children_in_subtree as u32;
            if v == spec.root {
                continue;
            }
            let parent = tree
                .parent(v)
                .expect("non-root subtree nodes have tree parents");
            assert!(
                spec.contains(parent),
                "node {v} of subtree {s_idx} has its tree parent outside the subtree"
            );
            edge_load[v.index()] += 1;
            total_to_send += 1;
            if children_in_subtree == 0 {
                ready[v.index()].push(Reverse(priority.key(spec, s_idx)));
                if !on_active[v.index()] {
                    on_active[v.index()] = true;
                    active.push(v);
                }
            }
        }
    }

    let max_edge_load = edge_load.iter().copied().max().unwrap_or(0) as usize;
    let mut deliveries: u64 = 0;
    let mut rounds: u64 = 0;
    let mut sent = 0usize;
    // Readiness earned during a round only takes effect next round; the
    // deferral buffer is what keeps the event-driven loop synchronous.
    let mut deferred: Vec<(NodeId, (i64, usize))> = Vec::new();

    while sent < total_to_send {
        rounds += 1;
        if active.is_empty() {
            // No node can make progress: the family was malformed. The
            // subtree assertion above should prevent this.
            panic!("routing schedule stalled before completion");
        }
        let round_nodes = std::mem::take(&mut active);
        for &v in &round_nodes {
            let Reverse((_, s_idx)) = ready[v.index()]
                .pop()
                .expect("active nodes have a ready subtree");
            let parent = tree.parent(v).expect("senders are non-root nodes");
            let spec = &subtrees[s_idx];
            let pi = spec
                .nodes
                .binary_search(&parent)
                .expect("parent is in the subtree");
            let slot = &mut pending[offsets[s_idx] + pi];
            *slot = slot.checked_sub(1).expect("no surplus child messages");
            if *slot == 0 && parent != spec.root {
                deferred.push((parent, priority.key(spec, s_idx)));
            }
            deliveries += 1;
            sent += 1;
        }
        for &v in &round_nodes {
            on_active[v.index()] = false;
        }
        for &v in &round_nodes {
            if !ready[v.index()].is_empty() && !on_active[v.index()] {
                on_active[v.index()] = true;
                active.push(v);
            }
        }
        for (v, key) in deferred.drain(..) {
            ready[v.index()].push(Reverse(key));
            if !on_active[v.index()] {
                on_active[v.index()] = true;
                active.push(v);
            }
        }
    }

    RoutingSchedule {
        rounds,
        max_edge_load,
        deliveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    /// Whole-tree convergecast: a single subtree covering T finishes in
    /// depth(T) rounds.
    #[test]
    fn single_subtree_takes_depth_rounds() {
        let g = generators::grid(5, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let spec = SubtreeSpec::new(&t, g.nodes().collect());
        let schedule = convergecast_rounds(&t, &[spec], RoutingPriority::BlockRootDepth);
        assert_eq!(schedule.rounds, u64::from(t.depth_of_tree()));
        assert_eq!(schedule.max_edge_load, 1);
        assert_eq!(schedule.deliveries, (g.node_count() - 1) as u64);
    }

    /// c identical copies of a path subtree: the Lemma 2 bound D + c holds
    /// and is essentially tight.
    #[test]
    fn overlapping_copies_respect_depth_plus_congestion() {
        let g = generators::path(30);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let all: Vec<NodeId> = g.nodes().collect();
        for c in [1usize, 2, 5, 10] {
            let family: Vec<SubtreeSpec> =
                (0..c).map(|_| SubtreeSpec::new(&t, all.clone())).collect();
            let schedule = convergecast_rounds(&t, &family, RoutingPriority::BlockRootDepth);
            assert_eq!(schedule.max_edge_load, c);
            let d = u64::from(t.depth_of_tree());
            assert!(
                schedule.rounds <= d + c as u64,
                "c={c}: {} > D + c",
                schedule.rounds
            );
            assert!(schedule.rounds >= d);
        }
    }

    /// Disjoint subtrees route completely in parallel.
    #[test]
    fn disjoint_subtrees_run_in_parallel() {
        let g = generators::grid(6, 8);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        // One subtree per tree child of the root (each child's full subtree).
        let mut family = Vec::new();
        for &child in t.children(t.root()) {
            let mut nodes = vec![child];
            // Collect the child's descendants.
            let mut stack = vec![child];
            while let Some(v) = stack.pop() {
                for &c in t.children(v) {
                    nodes.push(c);
                    stack.push(c);
                }
            }
            family.push(SubtreeSpec::new(&t, nodes));
        }
        let schedule = convergecast_rounds(&t, &family, RoutingPriority::BlockRootDepth);
        assert_eq!(schedule.max_edge_load, 1);
        assert!(schedule.rounds <= u64::from(t.depth_of_tree()));
    }

    /// The Lemma 2 bound D + c holds for the canonical priority on nested
    /// subtree families, and the measured schedule never beats the trivial
    /// lower bound of the deepest subtree height.
    #[test]
    fn nested_subtrees_within_bound() {
        let g = generators::path(40);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        // Subtree k = suffix of the path starting at node 5k (rooted there).
        let family: Vec<SubtreeSpec> = (0..8)
            .map(|k| SubtreeSpec::new(&t, (5 * k..40).map(NodeId::new).collect()))
            .collect();
        let schedule = convergecast_rounds(&t, &family, RoutingPriority::BlockRootDepth);
        let c = schedule.max_edge_load as u64;
        assert_eq!(c, 8);
        assert!(schedule.rounds <= u64::from(t.depth_of_tree()) + c);
    }

    /// The reverse priority can only be worse (or equal), demonstrating that
    /// the priority rule carries real weight.
    #[test]
    fn reverse_priority_is_never_better() {
        let g = generators::path(40);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let family: Vec<SubtreeSpec> = (0..8)
            .map(|k| SubtreeSpec::new(&t, (5 * k..40).map(NodeId::new).collect()))
            .collect();
        let good = convergecast_rounds(&t, &family, RoutingPriority::BlockRootDepth);
        let bad = convergecast_rounds(&t, &family, RoutingPriority::ReverseDepth);
        assert!(bad.rounds >= good.rounds);
    }

    #[test]
    fn empty_family_costs_nothing() {
        let g = generators::path(3);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let schedule = convergecast_rounds(&t, &[], RoutingPriority::BlockRootDepth);
        assert_eq!(schedule.rounds, 0);
        assert_eq!(schedule.deliveries, 0);
    }

    #[test]
    #[should_panic(expected = "outside the subtree")]
    fn malformed_subtree_is_rejected() {
        let g = generators::path(5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        // Nodes 0 and 3: node 3's parent (2) is missing.
        let spec = SubtreeSpec::new(&t, vec![NodeId::new(0), NodeId::new(3)]);
        let _ = convergecast_rounds(&t, &[spec], RoutingPriority::BlockRootDepth);
    }

    #[test]
    fn singleton_subtrees_cost_zero_rounds() {
        let g = generators::grid(3, 3);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let family: Vec<SubtreeSpec> = g.nodes().map(|v| SubtreeSpec::new(&t, vec![v])).collect();
        let schedule = convergecast_rounds(&t, &family, RoutingPriority::BlockRootDepth);
        // A singleton subtree has nothing to forward.
        assert_eq!(schedule.rounds, 0);
        assert_eq!(schedule.max_edge_load, 0);
    }
}
