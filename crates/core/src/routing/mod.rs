//! Deterministic routing on tree-restricted shortcuts.
//!
//! * [`convergecast_rounds`] — the Lemma 2 scheduler: given a family of
//!   subtrees of `T` such that every tree edge lies in at most `c` of them,
//!   a convergecast on all subtrees in parallel finishes within `D + c`
//!   rounds when messages are forwarded with the priority "smallest depth of
//!   the subtree root, ties by smallest subtree id".
//! * [`PartRouter`] — the Theorem 2 part-parallel primitives built on top:
//!   leader election, convergecast to the leaders, broadcast from the
//!   leaders, plus the Lemma 3 block-component counting used by the
//!   verification subroutine. Each primitive reports the exact number of
//!   CONGEST rounds it would take, computed from the actually scheduled
//!   intra-block routings and the supergraph steps it performs.

mod parts;
mod tree_routing;

pub use parts::{PartRouter, PartRouterOutcome};
pub use tree_routing::{
    convergecast_rounds, subtree_specs_from_blocks, RoutingPriority, RoutingSchedule, SubtreeSpec,
};
