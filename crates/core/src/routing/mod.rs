//! Deterministic routing on tree-restricted shortcuts.
//!
//! * [`convergecast_rounds`] — the Lemma 2 scheduler: given a family of
//!   subtrees of `T` such that every tree edge lies in at most `c` of them,
//!   a convergecast on all subtrees in parallel finishes within `D + c`
//!   rounds when messages are forwarded with the priority "smallest depth of
//!   the subtree root, ties by smallest subtree id".
//! * [`PartRouter`] — the Theorem 2 part-parallel primitives built on top:
//!   leader election, convergecast to the leaders, broadcast from the
//!   leaders, plus the Lemma 3 block-component counting used by the
//!   verification subroutine. Each primitive reports the exact number of
//!   CONGEST rounds it would take, computed from the actually scheduled
//!   intra-block routings and the supergraph steps it performs.

mod parts;
mod tree_routing;

pub use parts::{PartRouter, PartRouterOutcome};
pub use tree_routing::{
    convergecast_rounds, subtree_specs_from_blocks, RoutingPriority, RoutingSchedule, SubtreeSpec,
};

/// How a routing primitive or construction subroutine executes its
/// communication.
///
/// * [`ExecutionMode::Scheduled`] — the seed behaviour: results are computed
///   centrally and the round count is the exact length of the
///   level-synchronous schedule the primitive would execute (what
///   [`PartRouter`] and `construction::verification` report).
/// * [`ExecutionMode::Simulated`] — the primitive runs as a real
///   message-passing [`lcs_congest::NodeProtocol`] in the CONGEST simulator,
///   with per-edge bandwidth enforced; the round count is
///   `lcs_congest::SimStats::rounds` of the actual execution. The protocol
///   implementations live in the `lcs_dist` crate (which depends on this
///   one); entry points that accept an `ExecutionMode` dispatch to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Centralized results, exact scheduled round counts (the default).
    #[default]
    Scheduled,
    /// Real message-passing execution in the CONGEST simulator.
    Simulated,
}
