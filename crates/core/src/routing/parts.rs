//! Theorem 2: part-parallel primitives on a tree-restricted shortcut.
//!
//! Each part's shortcut subgraph is viewed as a *supergraph* whose
//! supernodes are the block components; two supernodes are adjacent if some
//! `G[P_i]` edge connects them. Leader election, convergecast and broadcast
//! run on this supergraph in `O(b)` supersteps, and every superstep is an
//! intra-block convergecast + broadcast scheduled by Lemma 2 over the whole
//! block family (all parts in parallel), so a superstep costs `O(D + c)`
//! rounds. The round counts reported here charge exactly that: the number
//! of supersteps actually performed times the exact Lemma 2 schedule length
//! measured on the actual block family.

use lcs_congest::RoundCost;
use lcs_graph::{Graph, NodeId, PartId, Partition, RootedTree};

use super::tree_routing::{convergecast_rounds, subtree_specs_from_blocks, RoutingPriority};
use crate::{BlockComponent, TreeShortcut};

/// The result of one part-parallel routing primitive: the per-part (or
/// per-node) outputs plus the number of CONGEST rounds charged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartRouterOutcome<T> {
    /// The primitive's output.
    pub values: T,
    /// Exact number of CONGEST rounds charged for the primitive.
    pub rounds: u64,
}

/// Routing engine for a fixed `(graph, tree, partition, shortcut)` tuple.
#[derive(Debug, Clone)]
pub struct PartRouter<'a> {
    graph: &'a Graph,
    partition: &'a Partition,
    /// Block components per part.
    blocks: Vec<Vec<BlockComponent>>,
    /// Supergraph adjacency per part: `super_adj[p][i]` lists the block
    /// indices adjacent to block `i` through `G[P_p]` edges.
    super_adj: Vec<Vec<Vec<usize>>>,
    /// Exact Lemma 2 schedule length for one intra-block convergecast over
    /// the entire block family (all parts in parallel).
    intra_block_rounds: u64,
    /// The measured maximum edge load of the family (the `c` of Lemma 2).
    max_edge_load: usize,
}

impl<'a> PartRouter<'a> {
    /// Builds the routing engine: computes every part's block components,
    /// the per-part supergraphs, and the exact Lemma 2 schedule length of
    /// one intra-block communication step.
    pub fn new(
        graph: &'a Graph,
        tree: &'a RootedTree,
        partition: &'a Partition,
        shortcut: &TreeShortcut,
    ) -> Self {
        let active = vec![true; partition.part_count()];
        let blocks = shortcut.active_block_components(graph, tree, partition, &active);
        // A part member belongs to exactly one block of its own part, so a
        // flat node-indexed map answers the per-edge lookups below (Steiner
        // nodes never carry induced part edges and need no entry).
        let mut member_block = vec![u32::MAX; graph.node_count()];
        for (p, part_blocks) in blocks.iter().enumerate() {
            for (i, b) in part_blocks.iter().enumerate() {
                for &v in &b.nodes {
                    if partition.part_of(v) == Some(PartId::new(p)) {
                        member_block[v.index()] = i as u32;
                    }
                }
            }
        }

        // Supergraph adjacency through induced part edges.
        let mut super_adj: Vec<Vec<Vec<usize>>> =
            blocks.iter().map(|bs| vec![Vec::new(); bs.len()]).collect();
        for (_, edge) in graph.edges() {
            let (pu, pv) = (partition.part_of(edge.u), partition.part_of(edge.v));
            if pu.is_none() || pu != pv {
                continue;
            }
            let p = pu.expect("checked above").index();
            let (bu, bv) = (
                member_block[edge.u.index()] as usize,
                member_block[edge.v.index()] as usize,
            );
            if bu != bv {
                if !super_adj[p][bu].contains(&bv) {
                    super_adj[p][bu].push(bv);
                }
                if !super_adj[p][bv].contains(&bu) {
                    super_adj[p][bv].push(bu);
                }
            }
        }

        let family: Vec<BlockComponent> = blocks.iter().flatten().cloned().collect();
        let specs = subtree_specs_from_blocks(&family);
        let schedule = convergecast_rounds(tree, &specs, RoutingPriority::BlockRootDepth);

        PartRouter {
            graph,
            partition,
            blocks,
            super_adj,
            intra_block_rounds: schedule.rounds,
            max_edge_load: schedule.max_edge_load,
        }
    }

    /// The block components of part `p`.
    pub fn blocks_of(&self, p: PartId) -> &[BlockComponent] {
        &self.blocks[p.index()]
    }

    /// The block parameter of the shortcut the router was built for: the
    /// maximum block-component count over all parts.
    pub fn block_parameter(&self) -> usize {
        self.blocks.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The measured Lemma 2 congestion of the block family.
    pub fn max_edge_load(&self) -> usize {
        self.max_edge_load
    }

    /// Exact round cost of one superstep: an intra-block convergecast
    /// followed by an intra-block broadcast, both scheduled by Lemma 2 over
    /// the whole block family.
    pub fn superstep_rounds(&self) -> u64 {
        2 * self.intra_block_rounds
    }

    /// Theorem 2(i): elects a leader for every part in parallel. The leader
    /// is the smallest node id of the part (every supernode starts with the
    /// smallest id it contains and the minimum is flooded over the
    /// supergraph for `b` supersteps).
    pub fn elect_leaders(&self) -> PartRouterOutcome<Vec<NodeId>> {
        let b = self.block_parameter() as u64;
        let mut leaders = Vec::with_capacity(self.partition.part_count());
        for p in self.partition.parts() {
            // Flooding minima for `b` supersteps on a connected supergraph
            // of at most `b` supernodes converges to the global minimum of
            // the part members.
            let leader = self
                .partition
                .members(p)
                .iter()
                .copied()
                .min()
                .expect("parts are nonempty");
            leaders.push(leader);
        }
        PartRouterOutcome {
            values: leaders,
            rounds: b * self.superstep_rounds(),
        }
    }

    /// Theorem 2(ii): convergecasts one value per part member to the part's
    /// leader, combining values with `combine` (an associative, commutative
    /// operator). Nodes outside every part, or with `None`, contribute
    /// nothing. Returns the combined value per part (`None` for parts none
    /// of whose members carried a value — impossible if every member
    /// carries one).
    pub fn aggregate_to_leaders<T, F>(
        &self,
        values: &[Option<T>],
        combine: F,
    ) -> PartRouterOutcome<Vec<Option<T>>>
    where
        T: Clone,
        F: Fn(&T, &T) -> T,
    {
        assert_eq!(
            values.len(),
            self.graph.node_count(),
            "one optional value per node is required"
        );
        let mut per_part: Vec<Option<T>> = vec![None; self.partition.part_count()];
        for p in self.partition.parts() {
            for &v in self.partition.members(p) {
                if let Some(value) = &values[v.index()] {
                    per_part[p.index()] = Some(match &per_part[p.index()] {
                        None => value.clone(),
                        Some(acc) => combine(acc, value),
                    });
                }
            }
        }
        // A BFS over the supergraph from the leader block takes at most `b`
        // supersteps; values travel with it.
        let b = self.block_parameter() as u64;
        PartRouterOutcome {
            values: per_part,
            rounds: b * self.superstep_rounds(),
        }
    }

    /// Theorem 2(iii): broadcasts one value per part from the part's leader
    /// to every member. Returns the value received by every node (`None`
    /// for nodes outside every part).
    pub fn broadcast_from_leaders<T: Clone>(
        &self,
        per_part: &[T],
    ) -> PartRouterOutcome<Vec<Option<T>>> {
        assert_eq!(
            per_part.len(),
            self.partition.part_count(),
            "one value per part is required"
        );
        let mut per_node: Vec<Option<T>> = vec![None; self.graph.node_count()];
        for p in self.partition.parts() {
            for &v in self.partition.members(p) {
                per_node[v.index()] = Some(per_part[p.index()].clone());
            }
        }
        let b = self.block_parameter() as u64;
        PartRouterOutcome {
            values: per_node,
            rounds: b * self.superstep_rounds(),
        }
    }

    /// Lemma 3: finds all parts whose shortcut subgraph has at most
    /// `threshold` block components. The algorithm performs `threshold`
    /// leader-flooding supersteps followed by a supergraph BFS and a count
    /// convergecast, so it is charged `(threshold + 2)` supersteps.
    pub fn parts_with_at_most_blocks(&self, threshold: usize) -> PartRouterOutcome<Vec<bool>> {
        let good: Vec<bool> = self.blocks.iter().map(|bs| bs.len() <= threshold).collect();
        let rounds = (threshold as u64 + 2) * self.superstep_rounds();
        PartRouterOutcome {
            values: good,
            rounds,
        }
    }

    /// Returns `true` if every part's supergraph is connected — a structural
    /// invariant that must hold whenever the partition is valid (used by
    /// tests and debug assertions).
    pub fn supergraphs_connected(&self) -> bool {
        for p in self.partition.parts() {
            let adj = &self.super_adj[p.index()];
            let block_count = self.blocks[p.index()].len();
            if block_count == 0 {
                return false;
            }
            let mut seen = vec![false; block_count];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut reached = 1;
            while let Some(i) = stack.pop() {
                for &j in &adj[i] {
                    if !seen[j] {
                        seen[j] = true;
                        reached += 1;
                        stack.push(j);
                    }
                }
            }
            if reached != block_count {
                return false;
            }
        }
        true
    }

    /// Total round cost of a full "aggregate then broadcast" exchange —
    /// the pattern every Boruvka phase performs.
    pub fn exchange_rounds(&self) -> u64 {
        2 * self.block_parameter() as u64 * self.superstep_rounds()
    }

    /// Summarizes the router state as a [`RoundCost`] entry for reporting.
    pub fn describe(&self, cost: &mut RoundCost, label: &str) {
        cost.charge(
            format!(
                "{label}/superstep (b={}, D+c schedule)",
                self.block_parameter()
            ),
            self.superstep_rounds(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::existential::ancestor_shortcut;
    use lcs_graph::generators;

    fn wheel_setup(n: usize, parts: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::wheel(n);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(n, parts);
        (g, t, p)
    }

    #[test]
    fn wheel_router_has_single_blocks_and_small_supersteps() {
        let (g, t, p) = wheel_setup(41, 5);
        let s = ancestor_shortcut(&g, &t, &p);
        let router = PartRouter::new(&g, &t, &p, &s);
        assert_eq!(router.block_parameter(), 1);
        assert!(router.supergraphs_connected());
        // One block per part, rooted at the hub; the Lemma 2 congestion is
        // the number of parts because all blocks contain the hub's edges...
        // actually each spoke edge is in exactly one block, so the load is 1.
        assert_eq!(router.max_edge_load(), 1);
        let leaders = router.elect_leaders();
        // The leader of each arc is its smallest node id.
        for part in p.parts() {
            let expected = p.members(part).iter().copied().min().unwrap();
            assert_eq!(leaders.values[part.index()], expected);
        }
        assert!(leaders.rounds > 0);
    }

    #[test]
    fn aggregate_and_broadcast_round_trip() {
        let (g, t, p) = wheel_setup(21, 4);
        let s = ancestor_shortcut(&g, &t, &p);
        let router = PartRouter::new(&g, &t, &p, &s);

        // Every member contributes its node id; the per-part minimum must be
        // the leader id.
        let values: Vec<Option<u64>> = g
            .nodes()
            .map(|v| p.part_of(v).map(|_| v.index() as u64))
            .collect();
        let agg = router.aggregate_to_leaders(&values, |a, b| *a.min(b));
        let leaders = router.elect_leaders();
        for part in p.parts() {
            assert_eq!(
                agg.values[part.index()],
                Some(leaders.values[part.index()].index() as u64)
            );
        }

        // Broadcast the aggregates back: every member sees its part's value.
        let flat: Vec<u64> = agg.values.iter().map(|v| v.unwrap()).collect();
        let bc = router.broadcast_from_leaders(&flat);
        for v in g.nodes() {
            match p.part_of(v) {
                Some(part) => assert_eq!(bc.values[v.index()], Some(flat[part.index()])),
                None => assert_eq!(bc.values[v.index()], None),
            }
        }
        assert_eq!(agg.rounds, bc.rounds);
    }

    #[test]
    fn empty_shortcut_router_counts_singleton_blocks() {
        let g = generators::grid(4, 4);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(4, 4);
        let s = TreeShortcut::empty(&g, &p);
        let router = PartRouter::new(&g, &t, &p, &s);
        assert_eq!(router.block_parameter(), 4);
        assert!(router.supergraphs_connected());
        // With no shortcut edges there is nothing to route inside blocks.
        assert_eq!(router.superstep_rounds(), 0);
        let outcome = router.parts_with_at_most_blocks(3);
        assert_eq!(outcome.values, vec![false; 4]);
        let outcome = router.parts_with_at_most_blocks(4);
        assert_eq!(outcome.values, vec![true; 4]);
    }

    #[test]
    fn ancestor_shortcut_router_on_grid_reduces_blocks_to_one() {
        let g = generators::grid(5, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(5, 5);
        let s = ancestor_shortcut(&g, &t, &p);
        let router = PartRouter::new(&g, &t, &p, &s);
        assert_eq!(router.block_parameter(), 1);
        assert!(router.supergraphs_connected());
        // The exchange cost of a Boruvka phase is positive and bounded by
        // 2 * b * 2 * (D + c), with b = 1 on this instance.
        let b = 1;
        let bound = 2 * b * 2 * (u64::from(t.depth_of_tree()) + router.max_edge_load() as u64);
        assert!(router.exchange_rounds() <= bound);
    }

    #[test]
    #[should_panic(expected = "one optional value per node")]
    fn aggregate_requires_per_node_values() {
        let (g, t, p) = wheel_setup(11, 2);
        let s = ancestor_shortcut(&g, &t, &p);
        let router = PartRouter::new(&g, &t, &p, &s);
        let _ = router.aggregate_to_leaders::<u64, _>(&[None, None], |a, _| *a);
    }
}
