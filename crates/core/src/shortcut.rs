//! General low-congestion shortcuts (Definition 1 of the paper).

use lcs_graph::{EdgeId, Graph, NodeId, PartId, Partition};

use crate::quality;

/// A general shortcut: one extra edge set `H_i ⊆ E(G)` per part `P_i`
/// (Definition 1). Part `P_i` is allowed to communicate over
/// `G[P_i] + H_i`.
///
/// Quality is measured by *congestion* (the largest number of subgraphs
/// `G[P_i] + H_i` any single edge participates in) and *dilation* (the
/// largest diameter of any `G[P_i] + H_i`); the routines on
/// [`ShortcutQuality`](crate::ShortcutQuality) compute both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shortcut {
    /// `edges_of[i]` is the edge set `H_i` (sorted, deduplicated).
    edges_of: Vec<Vec<EdgeId>>,
}

impl Shortcut {
    /// Creates the empty shortcut (`H_i = ∅` for every part): every part is
    /// left to communicate over `G[P_i]` alone.
    pub fn empty(part_count: usize) -> Self {
        Shortcut {
            edges_of: vec![Vec::new(); part_count],
        }
    }

    /// Creates a shortcut from explicit per-part edge sets. The sets are
    /// sorted and deduplicated.
    pub fn from_edge_sets(mut edges_of: Vec<Vec<EdgeId>>) -> Self {
        for set in &mut edges_of {
            set.sort();
            set.dedup();
        }
        Shortcut { edges_of }
    }

    /// Number of parts the shortcut is defined for.
    pub fn part_count(&self) -> usize {
        self.edges_of.len()
    }

    /// The edge set `H_i` of part `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn edges_of(&self, p: PartId) -> &[EdgeId] {
        &self.edges_of[p.index()]
    }

    /// Adds `edge` to `H_p` (keeping the set sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn assign(&mut self, p: PartId, edge: EdgeId) {
        let set = &mut self.edges_of[p.index()];
        if let Err(pos) = set.binary_search(&edge) {
            set.insert(pos, edge);
        }
    }

    /// Returns `true` if `edge ∈ H_p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn contains(&self, p: PartId, edge: EdgeId) -> bool {
        self.edges_of[p.index()].binary_search(&edge).is_ok()
    }

    /// Total number of `(part, edge)` assignments.
    pub fn assignment_count(&self) -> usize {
        self.edges_of.iter().map(Vec::len).sum()
    }

    /// The congestion of the shortcut with respect to `partition`
    /// (Definition 1(i)): the maximum over edges `e` of the number of
    /// subgraphs `G[P_i] + H_i` containing `e`. Measured over the parts in
    /// parallel when `LCS_THREADS` is set (the result is identical for
    /// every thread count).
    pub fn congestion(&self, graph: &Graph, partition: &Partition) -> usize {
        quality::congestion(
            graph,
            partition,
            |p| self.edges_of(p),
            lcs_graph::configured_threads(),
        )
    }

    /// The dilation of the shortcut (Definition 1(ii)): the maximum over
    /// parts of the diameter of `G[P_i] + H_i`. Measured over the parts in
    /// parallel when `LCS_THREADS` is set (the result is identical for
    /// every thread count).
    pub fn dilation(&self, graph: &Graph, partition: &Partition) -> u32 {
        quality::dilation(
            graph,
            partition,
            |p| self.edges_of(p),
            lcs_graph::configured_threads(),
        )
    }

    /// Nodes spanned by `G[P_p] + H_p`: the part members plus every endpoint
    /// of an edge of `H_p`.
    pub fn subgraph_nodes(&self, graph: &Graph, partition: &Partition, p: PartId) -> Vec<NodeId> {
        quality::subgraph_nodes(graph, partition, p, self.edges_of(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    #[test]
    fn empty_shortcut_has_induced_congestion_only() {
        // Grid columns: every edge inside a column is used by exactly one
        // part, every cross-column edge by none.
        let g = generators::grid(4, 4);
        let p = generators::partitions::grid_columns(4, 4);
        let s = Shortcut::empty(p.part_count());
        assert_eq!(s.congestion(&g, &p), 1);
        // Column diameter is 3.
        assert_eq!(s.dilation(&g, &p), 3);
        assert_eq!(s.assignment_count(), 0);
    }

    #[test]
    fn assign_and_contains_round_trip() {
        let mut s = Shortcut::empty(2);
        s.assign(PartId::new(0), EdgeId::new(5));
        s.assign(PartId::new(0), EdgeId::new(2));
        s.assign(PartId::new(0), EdgeId::new(5));
        assert_eq!(
            s.edges_of(PartId::new(0)),
            &[EdgeId::new(2), EdgeId::new(5)]
        );
        assert!(s.contains(PartId::new(0), EdgeId::new(5)));
        assert!(!s.contains(PartId::new(1), EdgeId::new(5)));
        assert_eq!(s.assignment_count(), 2);
    }

    #[test]
    fn from_edge_sets_normalizes() {
        let s =
            Shortcut::from_edge_sets(vec![vec![EdgeId::new(3), EdgeId::new(1), EdgeId::new(3)]]);
        assert_eq!(
            s.edges_of(PartId::new(0)),
            &[EdgeId::new(1), EdgeId::new(3)]
        );
    }

    #[test]
    fn hub_shortcut_on_wheel_reduces_dilation_to_constant() {
        // Arcs of the wheel rim have long induced diameter; adding the hub's
        // spoke edges to each arc's shortcut drops the diameter to <= 2 at
        // congestion 1 (each spoke serves exactly one arc, and rim edges are
        // used only by their own arc).
        let n = 33;
        let g = generators::wheel(n);
        let partition = generators::partitions::wheel_arcs(n, 4);
        let mut s = Shortcut::empty(partition.part_count());
        for part in partition.parts() {
            for &v in partition.members(part) {
                let spoke = g
                    .edge_between(NodeId::new(0), v)
                    .expect("hub is adjacent to rim");
                s.assign(part, spoke);
            }
        }
        let empty = Shortcut::empty(partition.part_count());
        assert!(empty.dilation(&g, &partition) >= 7);
        assert_eq!(s.dilation(&g, &partition), 2);
        assert_eq!(s.congestion(&g, &partition), 1);
    }

    #[test]
    fn overlapping_assignments_increase_congestion() {
        let g = generators::grid(3, 3);
        let p = generators::partitions::grid_columns(3, 3);
        let mut s = Shortcut::empty(p.part_count());
        // Assign the same edge to every part.
        let e = EdgeId::new(0);
        for part in p.parts() {
            s.assign(part, e);
        }
        assert!(s.congestion(&g, &p) >= p.part_count());
    }
}
