//! Error type for shortcut construction and routing.

use std::error::Error;
use std::fmt;

use lcs_graph::{EdgeId, PartId};

/// Errors raised by the shortcut framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A shortcut subgraph contained an edge that is not a tree edge even
    /// though the shortcut was declared tree-restricted.
    NotATreeEdge {
        /// The offending edge.
        edge: EdgeId,
        /// The part whose subgraph contained it.
        part: PartId,
    },
    /// A part id was out of range for the partition in use.
    PartOutOfRange {
        /// The offending part id.
        part: PartId,
        /// Number of parts in the partition.
        part_count: usize,
    },
    /// The construction did not mark every part good within the iteration
    /// budget (used by the fixed-parameter `FindShortcut` run and detected
    /// by the doubling search).
    IterationBudgetExhausted {
        /// Number of iterations executed.
        iterations: usize,
        /// Number of parts still bad.
        remaining_bad: usize,
    },
    /// A lower-level simulation failed.
    Simulation {
        /// Human readable description.
        reason: String,
    },
    /// The graph, tree and partition passed to an algorithm are mutually
    /// inconsistent (for example differing node counts).
    InconsistentInputs {
        /// Human readable description.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotATreeEdge { edge, part } => {
                write!(f, "edge {edge} assigned to part {part} is not an edge of the spanning tree")
            }
            CoreError::PartOutOfRange { part, part_count } => {
                write!(f, "part {part} out of range for a partition with {part_count} parts")
            }
            CoreError::IterationBudgetExhausted { iterations, remaining_bad } => write!(
                f,
                "construction stopped after {iterations} iterations with {remaining_bad} parts still bad"
            ),
            CoreError::Simulation { reason } => write!(f, "simulation error: {reason}"),
            CoreError::InconsistentInputs { reason } => write!(f, "inconsistent inputs: {reason}"),
        }
    }
}

impl Error for CoreError {}

impl From<lcs_congest::SimError> for CoreError {
    fn from(err: lcs_congest::SimError) -> Self {
        CoreError::Simulation {
            reason: err.to_string(),
        }
    }
}

impl From<CoreError> for lcs_graph::LcsError {
    fn from(err: CoreError) -> Self {
        use lcs_graph::LcsError;
        match err {
            CoreError::IterationBudgetExhausted {
                iterations,
                remaining_bad,
            } => LcsError::BudgetExhausted {
                iterations,
                remaining_bad,
            },
            CoreError::InconsistentInputs { reason } => LcsError::InconsistentInputs { reason },
            CoreError::Simulation { reason } => LcsError::Simulation { reason },
            other => LcsError::Construction {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CoreError::NotATreeEdge {
            edge: EdgeId::new(7),
            part: PartId::new(2),
        };
        assert!(err.to_string().contains("e7"));
        assert!(err.to_string().contains("P2"));
        let err = CoreError::IterationBudgetExhausted {
            iterations: 5,
            remaining_bad: 3,
        };
        assert!(err.to_string().contains("5 iterations"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }

    #[test]
    fn sim_error_converts() {
        let sim = lcs_congest::SimError::RoundLimitExceeded { limit: 3 };
        let core: CoreError = sim.into();
        assert!(matches!(core, CoreError::Simulation { .. }));
    }
}
