//! Centralized reference constructions of tree-restricted shortcuts.
//!
//! Theorem 3 is *relative*: it finds a shortcut nearly as good as the best
//! tree-restricted shortcut that exists. To exercise and validate that
//! guarantee the tests and benchmarks need an explicit shortcut whose
//! parameters `(c, b)` they can measure and feed to the construction
//! algorithms. This module provides two such reference constructions:
//!
//! * [`ancestor_shortcut`] — `H_i` is the union of the tree paths from every
//!   member of `P_i` to the root of `T`. Block parameter exactly 1 (all
//!   members hang off one subtree containing the root); congestion can be as
//!   large as the number of parts whose members share an ancestor edge.
//! * [`truncated_ancestor_shortcut`] — the same but each member only walks
//!   `levels` tree edges towards the root, trading block parameter for
//!   congestion.
//!
//! Neither is the paper's Theorem 1 embedding-based construction (which is
//! exactly what this paper removes the need for); they simply witness
//! existence so that the *relative* guarantee of Theorem 3 can be tested
//! against a concrete `(c, b)` pair. On planar families such as grids and
//! wheels the ancestor shortcut is already good (congestion `O(D)` on grid
//! columns), matching the regime Theorem 1 promises.

use lcs_graph::{Graph, Partition, RootedTree};

use crate::{ShortcutQuality, TreeShortcut};

/// Builds the full-ancestor reference shortcut: every part may use every
/// tree edge on the path from any of its members to the root.
///
/// The resulting shortcut always has block parameter 1.
pub fn ancestor_shortcut(graph: &Graph, tree: &RootedTree, partition: &Partition) -> TreeShortcut {
    truncated_ancestor_shortcut(graph, tree, partition, u32::MAX)
}

/// Builds the truncated-ancestor reference shortcut: every member walks at
/// most `levels` tree edges towards the root and contributes those edges to
/// its part's subgraph.
///
/// `levels = 0` yields the empty shortcut; `levels = u32::MAX` yields
/// [`ancestor_shortcut`].
pub fn truncated_ancestor_shortcut(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    levels: u32,
) -> TreeShortcut {
    let mut shortcut = TreeShortcut::empty(graph, partition);
    for p in partition.parts() {
        for &member in partition.members(p) {
            let mut walked = 0u32;
            for node in tree.path_to_root(member) {
                if walked >= levels {
                    break;
                }
                match tree.parent_edge(node) {
                    Some(e) => {
                        shortcut
                            .assign(tree, p, e)
                            .expect("parent edges are tree edges and parts are in range");
                        walked += 1;
                    }
                    None => break,
                }
            }
        }
    }
    shortcut
}

/// Builds the ancestor reference shortcut and measures its quality, giving
/// the `(c, b)` pair that certifies existence for Theorem 3 on this
/// instance.
pub fn reference_parameters(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
) -> (TreeShortcut, ShortcutQuality) {
    let shortcut = ancestor_shortcut(graph, tree, partition);
    let quality = shortcut.quality(graph, partition);
    (shortcut, quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, NodeId};

    #[test]
    fn ancestor_shortcut_has_block_parameter_one() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(6, 6);
        let s = ancestor_shortcut(&g, &t, &p);
        s.validate(&t, &p).unwrap();
        assert_eq!(s.block_parameter(&g, &p), 1);
        let q = s.quality(&g, &p);
        assert!(q.satisfies_lemma1(t.depth_of_tree()));
        // Congestion on grid columns stays below the number of columns + 1.
        assert!(q.congestion <= 7);
    }

    #[test]
    fn truncation_interpolates_between_empty_and_full() {
        let g = generators::grid(5, 7);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(5, 7);
        let empty = truncated_ancestor_shortcut(&g, &t, &p, 0);
        assert_eq!(empty.assignment_count(), 0);
        let full = ancestor_shortcut(&g, &t, &p);
        let mut previous = 0;
        for levels in [1u32, 2, 4, 8, 16] {
            let s = truncated_ancestor_shortcut(&g, &t, &p, levels);
            assert!(s.assignment_count() >= previous);
            assert!(s.assignment_count() <= full.assignment_count());
            previous = s.assignment_count();
            // More levels can only reduce (or keep) the number of blocks.
            assert!(s.block_parameter(&g, &p) >= full.block_parameter(&g, &p));
        }
    }

    #[test]
    fn reference_parameters_reports_consistent_quality() {
        let g = generators::wheel(25);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(25, 4);
        let (s, q) = reference_parameters(&g, &t, &p);
        assert_eq!(q.block_parameter, 1);
        assert_eq!(q.congestion, s.quality(&g, &p).congestion);
        // On the wheel the spokes are private to their arcs: congestion 1.
        assert_eq!(q.congestion, 1);
        assert_eq!(q.dilation, 2);
    }

    #[test]
    fn lower_bound_instance_forces_high_congestion() {
        // On the lower-bound graph the ancestor shortcut routes every path
        // through the connector tree, so some tree edge near the root is
        // shared by (almost) all parts: congestion Ω(number of paths).
        let (g, layout) = generators::lower_bound_graph(8, 16);
        let t = RootedTree::bfs(&g, layout.connector(0));
        let p = generators::partitions::lower_bound_paths(&layout);
        let (_s, q) = reference_parameters(&g, &t, &p);
        assert!(
            q.congestion >= 8,
            "expected congestion >= 8, got {}",
            q.congestion
        );
        assert_eq!(q.block_parameter, 1);
    }
}
