//! Tree-restricted shortcuts (Definitions 2 and 3 of the paper).

use lcs_graph::{EdgeId, Graph, NodeId, PartId, Partition, RootedTree, UnionFind};

use crate::quality::{self, ShortcutQuality};
use crate::{CoreError, Result, Shortcut};

/// One block component of a part's shortcut subgraph (Definition 3): a
/// connected component of the spanning subgraph `(V, H_i)` that intersects
/// `P_i`. Block components are subtrees of `T`; their shallowest node is the
/// *block root*, whose depth is the routing priority of Lemma 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockComponent {
    /// The part this block belongs to.
    pub part: PartId,
    /// The shallowest node of the block (its root within `T`).
    pub root: NodeId,
    /// Depth of the block root in `T`.
    pub root_depth: u32,
    /// All nodes of the block (part members and Steiner nodes), sorted.
    pub nodes: Vec<NodeId>,
    /// The tree edges of the block, sorted.
    pub edges: Vec<EdgeId>,
}

impl BlockComponent {
    /// Number of nodes in the block.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A block always contains at least one node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `node` belongs to this block.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }
}

/// A `T`-restricted shortcut (Definition 2): every shortcut subgraph `H_i`
/// consists solely of edges of the fixed rooted spanning tree `T`.
///
/// The structure is stored in both directions — per part ("which tree edges
/// may part `i` use") and per edge ("which parts may use this tree edge") —
/// because the construction algorithms write per edge while the routing
/// algorithms read per part. The distributed representation described in
/// Section 4.1 of the paper is exactly the per-edge view restricted to each
/// node's parent edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShortcut {
    part_count: usize,
    /// `parts_on_edge[e]` — sorted list of parts assigned to tree edge `e`
    /// (empty for non-tree edges).
    parts_on_edge: Vec<Vec<PartId>>,
    /// `edges_of[p]` — sorted list of tree edges assigned to part `p`.
    edges_of: Vec<Vec<EdgeId>>,
}

impl TreeShortcut {
    /// Creates the empty `T`-restricted shortcut (`H_i = ∅`).
    pub fn empty(graph: &Graph, partition: &Partition) -> Self {
        TreeShortcut {
            part_count: partition.part_count(),
            parts_on_edge: vec![Vec::new(); graph.edge_count()],
            edges_of: vec![Vec::new(); partition.part_count()],
        }
    }

    /// Number of parts the shortcut is defined for.
    pub fn part_count(&self) -> usize {
        self.part_count
    }

    /// Assigns tree edge `edge` to part `part`'s shortcut subgraph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotATreeEdge`] if `edge` is not an edge of
    /// `tree` and [`CoreError::PartOutOfRange`] if the part does not exist.
    pub fn assign(&mut self, tree: &RootedTree, part: PartId, edge: EdgeId) -> Result<()> {
        if !tree.is_tree_edge(edge) {
            return Err(CoreError::NotATreeEdge { edge, part });
        }
        if part.index() >= self.part_count {
            return Err(CoreError::PartOutOfRange {
                part,
                part_count: self.part_count,
            });
        }
        if let Err(pos) = self.parts_on_edge[edge.index()].binary_search(&part) {
            self.parts_on_edge[edge.index()].insert(pos, part);
        }
        if let Err(pos) = self.edges_of[part.index()].binary_search(&edge) {
            self.edges_of[part.index()].insert(pos, edge);
        }
        Ok(())
    }

    /// The parts assigned to tree edge `e` (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn parts_on_edge(&self, e: EdgeId) -> &[PartId] {
        &self.parts_on_edge[e.index()]
    }

    /// The tree edges assigned to part `p` (sorted). This is `H_p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn edges_of(&self, p: PartId) -> &[EdgeId] {
        &self.edges_of[p.index()]
    }

    /// Returns `true` if tree edge `e` belongs to `H_p`.
    pub fn contains(&self, p: PartId, e: EdgeId) -> bool {
        self.edges_of[p.index()].binary_search(&e).is_ok()
    }

    /// Total number of `(part, edge)` assignments.
    pub fn assignment_count(&self) -> usize {
        self.edges_of.iter().map(Vec::len).sum()
    }

    /// Merges another shortcut over the same graph and partition into this
    /// one (`H_i ← H_i ∪ H'_i`). Used by `FindShortcut`, which fixes the
    /// subgraphs of "good" parts across iterations; the congestion of the
    /// union is at most the sum of the congestions.
    ///
    /// # Panics
    ///
    /// Panics if the two shortcuts disagree on the number of parts or edges.
    pub fn merge(&mut self, other: &TreeShortcut) {
        assert_eq!(self.part_count, other.part_count, "part counts must match");
        assert_eq!(
            self.parts_on_edge.len(),
            other.parts_on_edge.len(),
            "edge counts must match"
        );
        for (p_idx, edges) in other.edges_of.iter().enumerate() {
            for &e in edges {
                let part = PartId::new(p_idx);
                if let Err(pos) = self.parts_on_edge[e.index()].binary_search(&part) {
                    self.parts_on_edge[e.index()].insert(pos, part);
                }
                if let Err(pos) = self.edges_of[p_idx].binary_search(&e) {
                    self.edges_of[p_idx].insert(pos, e);
                }
            }
        }
    }

    /// Replaces part `p`'s subgraph with the given edge set. Used when a
    /// part's tentative subgraph is fixed by the verification step.
    ///
    /// # Errors
    ///
    /// Same as [`TreeShortcut::assign`].
    pub fn set_part_edges(&mut self, tree: &RootedTree, p: PartId, edges: &[EdgeId]) -> Result<()> {
        // Remove existing assignments of p.
        for e in std::mem::take(&mut self.edges_of[p.index()]) {
            self.parts_on_edge[e.index()].retain(|&q| q != p);
        }
        for &e in edges {
            self.assign(tree, p, e)?;
        }
        Ok(())
    }

    /// Validates that every assigned edge is a tree edge and every part id
    /// is in range for `partition`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, tree: &RootedTree, partition: &Partition) -> Result<()> {
        if self.part_count != partition.part_count() {
            return Err(CoreError::InconsistentInputs {
                reason: format!(
                    "shortcut built for {} parts but partition has {}",
                    self.part_count,
                    partition.part_count()
                ),
            });
        }
        for (p_idx, edges) in self.edges_of.iter().enumerate() {
            for &e in edges {
                if !tree.is_tree_edge(e) {
                    return Err(CoreError::NotATreeEdge {
                        edge: e,
                        part: PartId::new(p_idx),
                    });
                }
            }
        }
        Ok(())
    }

    /// Converts into a general [`Shortcut`] (forgetting the tree structure).
    pub fn to_shortcut(&self) -> Shortcut {
        Shortcut::from_edge_sets(self.edges_of.clone())
    }

    /// Number of block components of part `p` (Definition 3): connected
    /// components of `(V, H_p)` that intersect `P_p`. Isolated part members
    /// count as singleton blocks.
    pub fn block_count(&self, graph: &Graph, partition: &Partition, p: PartId) -> usize {
        let mut ws = quality::QualityWorkspace::new(graph);
        self.local_components(graph, partition, p, &mut ws).len()
    }

    /// Block-component counts for every part, sharing one epoch-stamped
    /// scratch across the sweep.
    pub fn block_counts(&self, graph: &Graph, partition: &Partition) -> Vec<usize> {
        let mut ws = quality::QualityWorkspace::new(graph);
        self.block_counts_with(graph, partition, &mut ws)
    }

    /// [`TreeShortcut::block_counts`] against a caller-provided scratch.
    fn block_counts_with(
        &self,
        graph: &Graph,
        partition: &Partition,
        ws: &mut quality::QualityWorkspace,
    ) -> Vec<usize> {
        partition
            .parts()
            .map(|p| self.local_components(graph, partition, p, ws).len())
            .collect()
    }

    /// The block parameter `b`: the maximum block-component count over all
    /// parts (Definition 3).
    pub fn block_parameter(&self, graph: &Graph, partition: &Partition) -> usize {
        self.block_counts(graph, partition)
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// The full block-component structure of part `p`, each block annotated
    /// with its root (shallowest node) and the root's depth — the
    /// information the Lemma 2 routing priority needs.
    pub fn block_components(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        p: PartId,
    ) -> Vec<BlockComponent> {
        let mut ws = quality::QualityWorkspace::new(graph);
        self.block_components_with(graph, tree, partition, p, &mut ws)
    }

    /// Block components of every part (inactive parts get an empty list),
    /// sharing one epoch-stamped scratch across the whole sweep — the bulk
    /// entry point `lcs_dist::BlockFamily` builds its per-node views from.
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the partition's part count.
    pub fn active_block_components(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        active: &[bool],
    ) -> Vec<Vec<BlockComponent>> {
        assert_eq!(
            active.len(),
            partition.part_count(),
            "one active flag per part is required"
        );
        let mut ws = quality::QualityWorkspace::new(graph);
        partition
            .parts()
            .map(|p| {
                if active[p.index()] {
                    self.block_components_with(graph, tree, partition, p, &mut ws)
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    /// [`TreeShortcut::block_components`] against a caller-provided
    /// scratch workspace (shared across parts by the sweeping callers).
    pub(crate) fn block_components_with(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        p: PartId,
        ws: &mut quality::QualityWorkspace,
    ) -> Vec<BlockComponent> {
        let groups = self.local_components(graph, partition, p, ws);
        let mut blocks = Vec::with_capacity(groups.len());
        for mut nodes in groups {
            nodes.sort();
            nodes.dedup();
            let root = *nodes
                .iter()
                .min_by_key(|v| (tree.depth(**v), **v))
                .expect("blocks are nonempty");
            let mut edges: Vec<EdgeId> = self
                .edges_of(p)
                .iter()
                .copied()
                .filter(|&e| {
                    let edge = graph.edge(e);
                    nodes.binary_search(&edge.u).is_ok() && nodes.binary_search(&edge.v).is_ok()
                })
                .collect();
            edges.sort();
            blocks.push(BlockComponent {
                part: p,
                root,
                root_depth: tree.depth(root),
                nodes,
                edges,
            });
        }
        // Deterministic order: by root depth, then root id.
        blocks.sort_by_key(|b| (b.root_depth, b.root));
        blocks
    }

    /// Measures congestion, dilation and block parameter in one pass. The
    /// dilation sweep runs parallel-over-parts when `LCS_THREADS` is set;
    /// the measured values are identical for every thread count.
    pub fn quality(&self, graph: &Graph, partition: &Partition) -> ShortcutQuality {
        let threads = lcs_graph::configured_threads();
        self.quality_with(
            graph,
            partition,
            &mut quality::QualityPool::new(graph, threads),
        )
    }

    /// [`TreeShortcut::quality`] against a caller-provided
    /// [`crate::QualityPool`], whose scratch arrays and worker-thread
    /// count are reused across calls — the measurement path a serving
    /// session keeps warm. The measured values are identical to
    /// [`TreeShortcut::quality`] for every pool size.
    pub fn quality_with(
        &self,
        graph: &Graph,
        partition: &Partition,
        pool: &mut quality::QualityPool,
    ) -> ShortcutQuality {
        let per_part_blocks = {
            let ws = pool.primary();
            self.block_counts_with(graph, partition, ws)
        };
        ShortcutQuality {
            congestion: quality::congestion_with(graph, partition, |p| self.edges_of(p), pool),
            dilation: quality::dilation_with(graph, partition, |p| self.edges_of(p), pool),
            block_parameter: per_part_blocks.iter().copied().max().unwrap_or(0),
            per_part_blocks,
        }
    }

    /// Groups the nodes relevant to part `p` (members plus `H_p` endpoints)
    /// into connected components of `(V, H_p)`, returning only the
    /// components that contain at least one part member. The cost is
    /// proportional to `|P_p| + |H_p|`, not `n`: the node interning runs on
    /// the workspace's epoch-stamped marks (no per-part hash map or clear).
    fn local_components(
        &self,
        graph: &Graph,
        partition: &Partition,
        p: PartId,
        ws: &mut quality::QualityWorkspace,
    ) -> Vec<Vec<NodeId>> {
        ws.begin_local();
        for &v in partition.members(p) {
            ws.intern(v);
        }
        for &e in self.edges_of(p) {
            let edge = graph.edge(e);
            ws.intern(edge.u);
            ws.intern(edge.v);
        }
        let count = ws.local_nodes().len();
        let mut uf = UnionFind::new(count);
        for &e in self.edges_of(p) {
            let edge = graph.edge(e);
            let (u, v) = (ws.intern(edge.u), ws.intern(edge.v));
            uf.union(u, v);
        }
        // Collect components that contain a part member, grouped by
        // union-find representative in first-seen order (the final order is
        // fixed by the sort below, exactly as the seed implementation's).
        let mut group_of_rep: Vec<u32> = vec![u32::MAX; count];
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..count {
            let rep = uf.find(i);
            let g = if group_of_rep[rep] == u32::MAX {
                group_of_rep[rep] = groups.len() as u32;
                groups.push(Vec::new());
                groups.len() - 1
            } else {
                group_of_rep[rep] as usize
            };
            groups[g].push(ws.local_nodes()[i]);
        }
        let mut result: Vec<Vec<NodeId>> = groups
            .into_iter()
            .filter(|group| group.iter().any(|&v| partition.part_of(v) == Some(p)))
            .collect();
        result.sort_by_key(|g| g.iter().min().copied());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    fn grid_setup() -> (Graph, RootedTree, Partition) {
        let g = generators::grid(4, 4);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(4, 4);
        (g, t, p)
    }

    #[test]
    fn empty_shortcut_blocks_are_singleton_members() {
        let (g, _t, p) = grid_setup();
        let s = TreeShortcut::empty(&g, &p);
        // Every part has 4 members and no shortcut edges, so every member is
        // its own block component.
        assert_eq!(s.block_counts(&g, &p), vec![4; 4]);
        assert_eq!(s.block_parameter(&g, &p), 4);
        assert_eq!(s.assignment_count(), 0);
    }

    #[test]
    fn assign_rejects_non_tree_edges_and_bad_parts() {
        let (g, t, p) = grid_setup();
        let mut s = TreeShortcut::empty(&g, &p);
        let non_tree = g
            .edge_ids()
            .find(|&e| !t.is_tree_edge(e))
            .expect("a grid has non-tree edges");
        let err = s.assign(&t, PartId::new(0), non_tree).unwrap_err();
        assert!(matches!(err, CoreError::NotATreeEdge { .. }));

        let tree_edge = t.tree_edges().next().unwrap();
        let err = s.assign(&t, PartId::new(99), tree_edge).unwrap_err();
        assert!(matches!(err, CoreError::PartOutOfRange { .. }));
    }

    #[test]
    fn assigning_a_connecting_path_reduces_block_count() {
        // Column 3 of the 4x4 grid: nodes 3, 7, 11, 15. The BFS tree from
        // node 0 connects them through row 0, so assigning the column's own
        // vertical tree edges merges blocks.
        let (g, t, p) = grid_setup();
        let part = PartId::new(3);
        let mut s = TreeShortcut::empty(&g, &p);
        // Assign every tree edge whose lower endpoint lies in column 3.
        for e in t.tree_edges() {
            let lower = t.lower_endpoint(&g, e);
            if p.part_of(lower) == Some(part) {
                s.assign(&t, part, e).unwrap();
            }
        }
        let before = TreeShortcut::empty(&g, &p).block_count(&g, &p, part);
        let after = s.block_count(&g, &p, part);
        assert!(
            after < before,
            "assigning ancestor edges must merge blocks ({after} < {before})"
        );
        s.validate(&t, &p).unwrap();
    }

    #[test]
    fn block_components_report_roots_and_steiner_nodes() {
        let (g, t, p) = grid_setup();
        let part = PartId::new(2);
        let mut s = TreeShortcut::empty(&g, &p);
        // Assign the full tree path from each member of column 2 to the
        // root; all members join one block rooted at the tree root.
        for &v in p.members(part) {
            for node in t.path_to_root(v) {
                if let Some(e) = t.parent_edge(node) {
                    s.assign(&t, part, e).unwrap();
                }
            }
        }
        let blocks = s.block_components(&g, &t, &p, part);
        assert_eq!(blocks.len(), 1);
        let block = &blocks[0];
        assert_eq!(block.root, t.root());
        assert_eq!(block.root_depth, 0);
        assert!(!block.is_empty());
        // Contains the members and at least one Steiner node (the root,
        // which is in column 0, not column 2).
        for &v in p.members(part) {
            assert!(block.contains(v));
        }
        assert!(block.contains(t.root()));
        assert!(block.len() > p.members(part).len());
        assert_eq!(s.block_count(&g, &p, part), 1);
    }

    #[test]
    fn merge_unions_assignments() {
        let (g, t, p) = grid_setup();
        let e0 = t.tree_edges().next().unwrap();
        let e1 = t.tree_edges().nth(1).unwrap();
        let mut a = TreeShortcut::empty(&g, &p);
        a.assign(&t, PartId::new(0), e0).unwrap();
        let mut b = TreeShortcut::empty(&g, &p);
        b.assign(&t, PartId::new(1), e0).unwrap();
        b.assign(&t, PartId::new(0), e1).unwrap();
        a.merge(&b);
        assert!(a.contains(PartId::new(0), e0));
        assert!(a.contains(PartId::new(0), e1));
        assert!(a.contains(PartId::new(1), e0));
        assert_eq!(a.parts_on_edge(e0), &[PartId::new(0), PartId::new(1)]);
        assert_eq!(a.assignment_count(), 3);
    }

    #[test]
    fn set_part_edges_replaces_previous_assignment() {
        let (g, t, p) = grid_setup();
        let edges: Vec<EdgeId> = t.tree_edges().take(3).collect();
        let mut s = TreeShortcut::empty(&g, &p);
        s.assign(&t, PartId::new(1), edges[0]).unwrap();
        s.set_part_edges(&t, PartId::new(1), &edges[1..]).unwrap();
        assert!(!s.contains(PartId::new(1), edges[0]));
        assert!(s.contains(PartId::new(1), edges[1]));
        assert!(s.contains(PartId::new(1), edges[2]));
        assert!(s.parts_on_edge(edges[0]).is_empty());
    }

    #[test]
    fn quality_satisfies_lemma1_on_wheel_hub_shortcut() {
        let n = 21;
        let g = generators::wheel(n);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        assert_eq!(t.depth_of_tree(), 1);
        let p = generators::partitions::wheel_arcs(n, 4);
        let mut s = TreeShortcut::empty(&g, &p);
        // The BFS tree from the hub is exactly the star of spokes; assign
        // each arc its members' spokes.
        for part in p.parts() {
            for &v in p.members(part) {
                let spoke = t.parent_edge(v).expect("rim nodes have the hub as parent");
                s.assign(&t, part, spoke).unwrap();
            }
        }
        let q = s.quality(&g, &p);
        assert_eq!(q.block_parameter, 1);
        assert_eq!(q.congestion, 1);
        assert_eq!(q.dilation, 2);
        assert!(q.satisfies_lemma1(t.depth_of_tree()));
    }

    #[test]
    fn to_shortcut_preserves_edge_sets() {
        let (g, t, p) = grid_setup();
        let mut s = TreeShortcut::empty(&g, &p);
        let e = t.tree_edges().next().unwrap();
        s.assign(&t, PartId::new(2), e).unwrap();
        let general = s.to_shortcut();
        assert_eq!(general.edges_of(PartId::new(2)), &[e]);
        assert_eq!(general.part_count(), 4);
    }

    #[test]
    fn validate_detects_partition_mismatch() {
        let (g, t, p) = grid_setup();
        let s = TreeShortcut::empty(&g, &p);
        let other = generators::partitions::grid_rows(4, 4);
        assert!(s.validate(&t, &other).is_ok()); // same part count (4): fine
        let tiny = generators::partitions::grid_columns(4, 2);
        // Partition over a different graph/size: part count differs.
        assert!(matches!(
            s.validate(&t, &tiny),
            Err(CoreError::InconsistentInputs { .. })
        ));
    }
}
