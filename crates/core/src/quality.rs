//! Quality measurement: congestion, dilation, and helpers shared by the
//! general and tree-restricted shortcut types.
//!
//! The measurement routines are written for the scale tier: the BFS scratch
//! (distance array, queue, allowed-node/edge marks) lives in a
//! [`QualityWorkspace`] that is allocated once per measurement and reused
//! across every part and every BFS source, with epoch stamps standing in
//! for `O(n)` clears. The per-part shortcut edge sets are taken as slices
//! (both shortcut representations store them sorted and deduplicated), so
//! measuring never copies an edge set.

use std::collections::VecDeque;

use lcs_graph::{EdgeId, Graph, NodeId, PartId, Partition};

/// Summary of the measured quality of a shortcut with respect to a graph
/// and partition.
///
/// * `congestion` — maximum number of subgraphs `G[P_i] + H_i` sharing one
///   edge (Definition 1(i)),
/// * `dilation` — maximum diameter of a subgraph `G[P_i] + H_i`
///   (Definition 1(ii)),
/// * `block_parameter` — maximum number of block components of any `H_i`
///   (Definition 3); only meaningful for tree-restricted shortcuts and `0`
///   when not measured,
/// * `per_part_blocks` — the individual block-component counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortcutQuality {
    /// Measured congestion.
    pub congestion: usize,
    /// Measured dilation.
    pub dilation: u32,
    /// Measured block parameter (0 if not applicable).
    pub block_parameter: usize,
    /// Block-component count per part (empty if not applicable).
    pub per_part_blocks: Vec<usize>,
}

impl ShortcutQuality {
    /// The paper's headline quantity `congestion + dilation`, which governs
    /// the running time of shortcut-based algorithms.
    pub fn congestion_plus_dilation(&self) -> u64 {
        self.congestion as u64 + u64::from(self.dilation)
    }

    /// Checks Lemma 1: `dilation ≤ block_parameter · (2 · depth + 1)` for a
    /// tree of the given depth. Returns `true` when the inequality holds
    /// (or when the block parameter was not measured).
    pub fn satisfies_lemma1(&self, tree_depth: u32) -> bool {
        if self.block_parameter == 0 {
            return true;
        }
        u64::from(self.dilation) <= self.block_parameter as u64 * (2 * u64::from(tree_depth) + 1)
    }
}

/// Per-worker scratch of a [`QualityPool`]: the BFS workspace plus the
/// counter/stamp arrays of the congestion pass.
struct WorkerScratch {
    ws: QualityWorkspace,
    users: Vec<u32>,
    last_part: Vec<u32>,
}

impl WorkerScratch {
    fn new(graph: &Graph) -> Self {
        WorkerScratch {
            ws: QualityWorkspace::new(graph),
            users: vec![0; graph.edge_count()],
            last_part: vec![0; graph.edge_count()],
        }
    }
}

/// Reusable scratch for repeated quality measurements over one graph.
///
/// A pool is sized once — for a graph and a worker-thread count — and then
/// serves any number of [`crate::TreeShortcut::quality_with`] calls (and
/// the crate-internal congestion/dilation passes) without allocating: the
/// BFS workspaces are epoch-stamped (moving to the next part or query is a
/// counter bump), and the congestion counters are `O(m)` fills of arrays
/// that already exist. This is the state a serving `Session` (the
/// `lcs_api` façade) keeps warm across queries; the partition and shortcut
/// may differ from call to call, only the graph is fixed.
pub struct QualityPool {
    threads: usize,
    node_count: usize,
    edge_count: usize,
    /// One scratch per worker; index 0 doubles as the serial scratch.
    scratches: Vec<WorkerScratch>,
    /// `users[e]` accumulator of the congestion pass (also holds the
    /// induced-edge base counts).
    users: Vec<u32>,
    /// The part an edge is induced in (`u32::MAX` = none); per-query
    /// content, allocated once.
    induced_part: Vec<u32>,
}

impl QualityPool {
    /// Creates a pool for `graph` with `threads` workers (clamped to at
    /// least 1). The pool is only valid for graphs with the same node and
    /// edge counts as `graph` (checked at measurement time).
    pub fn new(graph: &Graph, threads: usize) -> Self {
        let threads = threads.max(1);
        QualityPool {
            threads,
            node_count: graph.node_count(),
            edge_count: graph.edge_count(),
            scratches: (0..threads).map(|_| WorkerScratch::new(graph)).collect(),
            users: vec![0; graph.edge_count()],
            induced_part: vec![u32::MAX; graph.edge_count()],
        }
    }

    /// The worker-thread count the pool was sized for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The primary BFS workspace (serial sweeps share this one scratch).
    pub(crate) fn primary(&mut self) -> &mut QualityWorkspace {
        &mut self.scratches[0].ws
    }

    fn assert_graph(&self, graph: &Graph) {
        assert_eq!(
            (self.node_count, self.edge_count),
            (graph.node_count(), graph.edge_count()),
            "QualityPool was sized for a different graph"
        );
    }
}

/// Computes congestion: for every edge, the number of parts `i` such that
/// the edge lies in `G[P_i] + H_i`. The per-part shortcut edge sets are
/// supplied by the `edges_of` accessor (a borrowed slice — no copy) so the
/// same routine serves both shortcut representations. Repeated edges within
/// one part's slice are counted once (a per-edge part stamp, no sorting).
/// Runs in `O(m + Σ|H_i|)` work; with more than one pool worker the
/// per-part pass is split over contiguous part ranges on scoped workers
/// (each with its own stamp and counter arrays, merged by summation —
/// per-edge use counts are sums of per-part indicators, so the split
/// cannot change the result).
pub(crate) fn congestion_with<'a, F>(
    graph: &Graph,
    partition: &Partition,
    edges_of: F,
    pool: &mut QualityPool,
) -> usize
where
    F: Fn(PartId) -> &'a [EdgeId] + Sync,
{
    pool.assert_graph(graph);
    // users[e] = number of distinct parts using edge e. A part uses e either
    // because e ∈ H_i or because both endpoints of e lie in P_i; count each
    // part at most once per edge.
    let users = &mut pool.users;
    users.fill(0);
    // The part an edge is induced in (u32::MAX = none) — computed once,
    // reused by every worker.
    let induced_part = &mut pool.induced_part;
    induced_part.fill(u32::MAX);
    for (e, edge) in graph.edges() {
        if let Some(pu) = partition.part_of(edge.u) {
            if Some(pu) == partition.part_of(edge.v) {
                users[e.index()] += 1;
                induced_part[e.index()] = pu.index() as u32;
            }
        }
    }
    let induced_part: &[u32] = induced_part;

    // Adds the slice contributions of the parts in `range` to `users`.
    // last_part[e] = 1 + index of the last part whose slice listed e; the
    // stamp deduplicates within a part without sorting the slice.
    let count_range = |range: std::ops::Range<usize>, users: &mut [u32], last_part: &mut [u32]| {
        for pi in range {
            let p = PartId::new(pi);
            let stamp = pi as u32 + 1;
            for &e in edges_of(p) {
                if last_part[e.index()] == stamp {
                    continue;
                }
                last_part[e.index()] = stamp;
                if induced_part[e.index()] != pi as u32 {
                    users[e.index()] += 1;
                }
            }
        }
    };

    let parts = partition.part_count();
    let t = pool.threads.min(parts.max(1));
    if t <= 1 {
        let scratch = &mut pool.scratches[0];
        scratch.last_part.fill(0);
        count_range(0..parts, users, &mut scratch.last_part);
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t);
            for (k, scratch) in pool.scratches[..t].iter_mut().enumerate() {
                let count_range = &count_range;
                handles.push(scope.spawn(move || {
                    scratch.users.fill(0);
                    scratch.last_part.fill(0);
                    count_range(
                        parts * k / t..parts * (k + 1) / t,
                        &mut scratch.users,
                        &mut scratch.last_part,
                    );
                }));
            }
            for h in handles {
                h.join().expect("quality workers do not panic");
            }
        });
        for scratch in &pool.scratches[..t] {
            for (acc, w) in users.iter_mut().zip(&scratch.users) {
                *acc += w;
            }
        }
    }
    users.iter().copied().max().unwrap_or(0) as usize
}

/// One-shot [`congestion_with`] against a freshly allocated pool.
pub(crate) fn congestion<'a, F>(
    graph: &Graph,
    partition: &Partition,
    edges_of: F,
    threads: usize,
) -> usize
where
    F: Fn(PartId) -> &'a [EdgeId] + Sync,
{
    congestion_with(
        graph,
        partition,
        edges_of,
        &mut QualityPool::new(graph, threads),
    )
}

/// Nodes of the subgraph `G[P_p] + H_p`: the members of the part plus every
/// endpoint of a shortcut edge.
pub(crate) fn subgraph_nodes(
    graph: &Graph,
    partition: &Partition,
    p: PartId,
    shortcut_edges: &[EdgeId],
) -> Vec<NodeId> {
    let mut member = vec![false; graph.node_count()];
    for &v in partition.members(p) {
        member[v.index()] = true;
    }
    for &e in shortcut_edges {
        let edge = graph.edge(e);
        member[edge.u.index()] = true;
        member[edge.v.index()] = true;
    }
    graph.nodes().filter(|v| member[v.index()]).collect()
}

/// Reusable scratch for the per-part diameter BFS sweeps. All arrays are
/// node- or edge-indexed and epoch-stamped: "allowed in the current part's
/// subgraph" is `mark == epoch`, and "visited from the current source" is
/// `visit == visit_epoch`, so moving to the next part or source is a
/// counter bump instead of an `O(n + m)` clear.
pub(crate) struct QualityWorkspace {
    node_mark: Vec<u32>,
    edge_mark: Vec<u32>,
    epoch: u32,
    visit: Vec<u32>,
    visit_epoch: u32,
    dist: Vec<u32>,
    queue: VecDeque<NodeId>,
    /// Nodes of the current part's subgraph (also the intern list of the
    /// current [`QualityWorkspace::begin_local`] epoch).
    nodes: Vec<NodeId>,
    /// Local index assigned to each node in the current interning epoch.
    node_pos: Vec<u32>,
}

impl QualityWorkspace {
    pub(crate) fn new(graph: &Graph) -> Self {
        QualityWorkspace {
            node_mark: vec![0; graph.node_count()],
            edge_mark: vec![0; graph.edge_count()],
            epoch: 0,
            visit: vec![0; graph.node_count()],
            visit_epoch: 0,
            dist: vec![0; graph.node_count()],
            queue: VecDeque::new(),
            nodes: Vec::new(),
            node_pos: vec![0; graph.node_count()],
        }
    }

    /// Opens a fresh node-interning epoch (used by the block-component
    /// sweep of `TreeShortcut`, which maps the nodes relevant to one part
    /// onto dense local indices without a per-part hash map).
    pub(crate) fn begin_local(&mut self) {
        self.epoch += 1;
        self.nodes.clear();
    }

    /// Dense local index of `v` in the current interning epoch, assigning
    /// the next free index on first sight.
    pub(crate) fn intern(&mut self, v: NodeId) -> usize {
        if self.node_mark[v.index()] != self.epoch {
            self.node_mark[v.index()] = self.epoch;
            self.node_pos[v.index()] = self.nodes.len() as u32;
            self.nodes.push(v);
        }
        self.node_pos[v.index()] as usize
    }

    /// The nodes interned since [`QualityWorkspace::begin_local`], in
    /// interning order (their local indices).
    pub(crate) fn local_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Diameter of the subgraph `G[P_p] + H_p` (see
    /// [`part_subgraph_diameter`]), using this workspace's scratch.
    pub(crate) fn part_diameter(
        &mut self,
        graph: &Graph,
        partition: &Partition,
        p: PartId,
        shortcut_edges: &[EdgeId],
    ) -> u32 {
        // Open a fresh epoch for this part's allowed sets.
        self.epoch += 1;
        let epoch = self.epoch;
        self.nodes.clear();

        // Allowed nodes: part members plus shortcut-edge endpoints.
        for &v in partition.members(p) {
            if self.node_mark[v.index()] != epoch {
                self.node_mark[v.index()] = epoch;
                self.nodes.push(v);
            }
        }
        for &e in shortcut_edges {
            let edge = graph.edge(e);
            for v in [edge.u, edge.v] {
                if self.node_mark[v.index()] != epoch {
                    self.node_mark[v.index()] = epoch;
                    self.nodes.push(v);
                }
            }
        }
        // The old representation collected subgraph nodes in node-id order;
        // keep that order so BFS tie-breaking (and thus measured values on
        // degenerate inputs) is unchanged.
        self.nodes.sort_unstable();

        // Allowed edges: induced edges of the part (found by scanning the
        // members' incident slices — O(vol(P_p)), not O(m)) plus the
        // shortcut edges themselves.
        for &v in partition.members(p) {
            for &e in graph.incident_edge_ids(v) {
                if self.edge_mark[e.index()] != epoch {
                    let edge = graph.edge(e);
                    if partition.part_of(edge.u) == Some(p) && partition.part_of(edge.v) == Some(p)
                    {
                        self.edge_mark[e.index()] = epoch;
                    }
                }
            }
        }
        for &e in shortcut_edges {
            self.edge_mark[e.index()] = epoch;
        }

        // BFS restricted to allowed nodes and edges, from every node of the
        // subgraph. A BFS that misses an allowed node means the subgraph is
        // disconnected; by convention that is reported as a diameter of
        // "number of nodes", larger than any connected diameter, and no
        // further source can change the outcome.
        let mut diameter = 0;
        let nodes = std::mem::take(&mut self.nodes);
        'sources: for &source in &nodes {
            self.visit_epoch += 1;
            let visit_epoch = self.visit_epoch;
            self.visit[source.index()] = visit_epoch;
            self.dist[source.index()] = 0;
            self.queue.clear();
            self.queue.push_back(source);
            let mut reached = 1usize;
            while let Some(u) = self.queue.pop_front() {
                let du = self.dist[u.index()];
                diameter = diameter.max(du);
                for (v, e) in graph.neighbors(u) {
                    if self.edge_mark[e.index()] == epoch
                        && self.node_mark[v.index()] == epoch
                        && self.visit[v.index()] != visit_epoch
                    {
                        self.visit[v.index()] = visit_epoch;
                        self.dist[v.index()] = du + 1;
                        reached += 1;
                        self.queue.push_back(v);
                    }
                }
            }
            if reached < nodes.len() {
                diameter = diameter.max(graph.node_count() as u32);
                break 'sources;
            }
        }
        self.nodes = nodes;
        diameter
    }
}

/// Diameter of the subgraph `G[P_p] + H_p`. The allowed edges are the edges
/// of `G` with both endpoints in `P_p` plus the shortcut edges themselves;
/// the allowed nodes are the part members plus shortcut-edge endpoints.
/// One-shot convenience over [`QualityWorkspace::part_diameter`]; sweeps
/// over many parts share a workspace instead (see [`dilation`]).
#[cfg(test)]
pub(crate) fn part_subgraph_diameter(
    graph: &Graph,
    partition: &Partition,
    p: PartId,
    shortcut_edges: &[EdgeId],
) -> u32 {
    QualityWorkspace::new(graph).part_diameter(graph, partition, p, shortcut_edges)
}

/// Computes dilation: the maximum subgraph diameter over all parts — the
/// dominant cost of a quality measurement (a BFS from every subgraph
/// node). With one pool worker a single [`QualityWorkspace`] is shared by
/// every part; with more, scoped workers pull parts off a shared counter,
/// each reusing its own pooled workspace, and the per-worker maxima are
/// combined — a max of maxima, identical for every thread count and
/// schedule.
pub(crate) fn dilation_with<'a, F>(
    graph: &Graph,
    partition: &Partition,
    edges_of: F,
    pool: &mut QualityPool,
) -> u32
where
    F: Fn(PartId) -> &'a [EdgeId] + Sync,
{
    pool.assert_graph(graph);
    let parts = partition.part_count();
    let t = pool.threads.min(parts.max(1));
    if t <= 1 {
        let ws = &mut pool.scratches[0].ws;
        return partition
            .parts()
            .map(|p| ws.part_diameter(graph, partition, p, edges_of(p)))
            .max()
            .unwrap_or(0);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut best = 0u32;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        for scratch in pool.scratches[..t].iter_mut() {
            let next = &next;
            let edges_of = &edges_of;
            handles.push(scope.spawn(move || {
                let ws = &mut scratch.ws;
                let mut local = 0u32;
                loop {
                    let pi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if pi >= parts {
                        break;
                    }
                    let p = PartId::new(pi);
                    local = local.max(ws.part_diameter(graph, partition, p, edges_of(p)));
                }
                local
            }));
        }
        for h in handles {
            best = best.max(h.join().expect("quality workers do not panic"));
        }
    });
    best
}

/// One-shot [`dilation_with`] against a freshly allocated pool.
pub(crate) fn dilation<'a, F>(
    graph: &Graph,
    partition: &Partition,
    edges_of: F,
    threads: usize,
) -> u32
where
    F: Fn(PartId) -> &'a [EdgeId] + Sync,
{
    dilation_with(
        graph,
        partition,
        edges_of,
        &mut QualityPool::new(graph, threads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    #[test]
    fn congestion_of_induced_only_partition() {
        let g = generators::grid(3, 5);
        let p = generators::partitions::grid_rows(3, 5);
        // No shortcut edges at all: row edges have congestion 1, column
        // edges 0, so the measured congestion is 1.
        assert_eq!(congestion(&g, &p, |_| &[][..], 1), 1);
    }

    #[test]
    fn congestion_counts_shortcut_and_induced_use_together() {
        let g = generators::path(3);
        // Two parts: {0} and {1,2}. Edge (1,2) is induced for part 1; if we
        // also put it in part 0's shortcut the edge serves two subgraphs.
        let mut b = lcs_graph::PartitionBuilder::new(3);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        b.add_part(vec![NodeId::new(1), NodeId::new(2)]).unwrap();
        let p = b.build();
        let shared = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        // Listing an induced edge in the part's own shortcut must not
        // double-count it; listing it twice in one slice counts once.
        let sets: Vec<Vec<EdgeId>> = vec![vec![shared], vec![shared, shared]];
        let c = congestion(&g, &p, |part| sets[part.index()].as_slice(), 1);
        assert_eq!(c, 2);
    }

    #[test]
    fn subgraph_diameter_uses_shortcut_edges() {
        // Path 0-1-2-3-4 with part {0, 4}... is not connected, so instead
        // use part {0} and check that adding the whole path as shortcut
        // edges lets it reach node 4 in 4 hops.
        let g = generators::path(5);
        let mut b = lcs_graph::PartitionBuilder::new(5);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        let p = b.build();
        let all_edges: Vec<EdgeId> = g.edge_ids().collect();
        assert_eq!(
            part_subgraph_diameter(&g, &p, PartId::new(0), &all_edges),
            4
        );
        assert_eq!(part_subgraph_diameter(&g, &p, PartId::new(0), &[]), 0);
    }

    #[test]
    fn disconnected_subgraph_is_flagged_with_a_large_diameter() {
        let g = generators::path(4);
        let mut b = lcs_graph::PartitionBuilder::new(4);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        let p = b.build();
        // A single shortcut edge at the far end of the path is not connected
        // to the part member.
        let far = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        let d = part_subgraph_diameter(&g, &p, PartId::new(0), &[far]);
        assert!(d >= g.node_count() as u32);
    }

    #[test]
    fn workspace_reuse_across_parts_matches_fresh_workspaces() {
        // The epoch-stamped workspace must behave as if freshly cleared for
        // every part, including when parts interleave disconnected and
        // connected subgraphs.
        let g = generators::grid(4, 4);
        let p = generators::partitions::grid_columns(4, 4);
        let mut ws = QualityWorkspace::new(&g);
        for part in p.parts() {
            let reused = ws.part_diameter(&g, &p, part, &[]);
            let fresh = part_subgraph_diameter(&g, &p, part, &[]);
            assert_eq!(reused, fresh);
        }
        // And a second sweep over the same parts gives the same answers.
        for part in p.parts() {
            let again = ws.part_diameter(&g, &p, part, &[]);
            assert_eq!(again, part_subgraph_diameter(&g, &p, part, &[]));
        }
    }

    #[test]
    fn parallel_quality_matches_serial_for_every_thread_count() {
        // Congestion and dilation are reductions (sum-of-indicators max,
        // max-of-maxima), so any worker split must reproduce the serial
        // values exactly.
        let g = generators::grid(6, 6);
        let p = generators::partitions::random_bfs_balls(&g, 7, 3);
        let tree = lcs_graph::RootedTree::bfs(&g, NodeId::new(0));
        let sets: Vec<Vec<EdgeId>> = p
            .parts()
            .map(|part| {
                // An arbitrary but deterministic per-part edge set: the
                // members' parent edges.
                let mut edges: Vec<EdgeId> = p
                    .members(part)
                    .iter()
                    .filter_map(|&v| tree.parent_edge(v))
                    .collect();
                edges.sort();
                edges
            })
            .collect();
        let edges_of = |part: PartId| sets[part.index()].as_slice();
        let c1 = congestion(&g, &p, edges_of, 1);
        let d1 = dilation(&g, &p, edges_of, 1);
        for threads in [2usize, 3, 8, 64] {
            assert_eq!(congestion(&g, &p, edges_of, threads), c1, "t={threads}");
            assert_eq!(dilation(&g, &p, edges_of, threads), d1, "t={threads}");
        }
    }

    #[test]
    fn pool_reuse_across_queries_matches_one_shot_measurement() {
        // One pool serving several different partitions over the same graph
        // (the façade's serving shape) must reproduce the one-shot values,
        // serially and with workers.
        let g = generators::grid(6, 6);
        let tree = lcs_graph::RootedTree::bfs(&g, NodeId::new(0));
        for threads in [1usize, 3] {
            let mut pool = QualityPool::new(&g, threads);
            for seed in 0..4u64 {
                let p = generators::partitions::random_bfs_balls(&g, 5 + seed as usize, seed);
                let sets: Vec<Vec<EdgeId>> = p
                    .parts()
                    .map(|part| {
                        let mut edges: Vec<EdgeId> = p
                            .members(part)
                            .iter()
                            .filter_map(|&v| tree.parent_edge(v))
                            .collect();
                        edges.sort();
                        edges
                    })
                    .collect();
                let edges_of = |part: PartId| sets[part.index()].as_slice();
                assert_eq!(
                    congestion_with(&g, &p, edges_of, &mut pool),
                    congestion(&g, &p, edges_of, 1),
                    "threads={threads} seed={seed}"
                );
                assert_eq!(
                    dilation_with(&g, &p, edges_of, &mut pool),
                    dilation(&g, &p, edges_of, 1),
                    "threads={threads} seed={seed}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "sized for a different graph")]
    fn pool_rejects_a_mismatched_graph() {
        let g = generators::grid(3, 3);
        let other = generators::grid(4, 4);
        let p = generators::partitions::grid_columns(4, 4);
        let mut pool = QualityPool::new(&g, 1);
        congestion_with(&other, &p, |_| &[][..], &mut pool);
    }

    #[test]
    fn quality_lemma1_check() {
        let q = ShortcutQuality {
            congestion: 3,
            dilation: 10,
            block_parameter: 2,
            per_part_blocks: vec![2, 1],
        };
        assert!(q.satisfies_lemma1(4)); // 10 <= 2 * 9
        assert!(!q.satisfies_lemma1(1)); // 10 > 2 * 3
        assert_eq!(q.congestion_plus_dilation(), 13);
        let unmeasured = ShortcutQuality {
            congestion: 1,
            dilation: 100,
            block_parameter: 0,
            per_part_blocks: vec![],
        };
        assert!(unmeasured.satisfies_lemma1(0));
    }
}
