//! Quality measurement: congestion, dilation, and helpers shared by the
//! general and tree-restricted shortcut types.

use std::collections::VecDeque;

use lcs_graph::{EdgeId, Graph, NodeId, PartId, Partition};

/// Summary of the measured quality of a shortcut with respect to a graph
/// and partition.
///
/// * `congestion` — maximum number of subgraphs `G[P_i] + H_i` sharing one
///   edge (Definition 1(i)),
/// * `dilation` — maximum diameter of a subgraph `G[P_i] + H_i`
///   (Definition 1(ii)),
/// * `block_parameter` — maximum number of block components of any `H_i`
///   (Definition 3); only meaningful for tree-restricted shortcuts and `0`
///   when not measured,
/// * `per_part_blocks` — the individual block-component counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortcutQuality {
    /// Measured congestion.
    pub congestion: usize,
    /// Measured dilation.
    pub dilation: u32,
    /// Measured block parameter (0 if not applicable).
    pub block_parameter: usize,
    /// Block-component count per part (empty if not applicable).
    pub per_part_blocks: Vec<usize>,
}

impl ShortcutQuality {
    /// The paper's headline quantity `congestion + dilation`, which governs
    /// the running time of shortcut-based algorithms.
    pub fn congestion_plus_dilation(&self) -> u64 {
        self.congestion as u64 + u64::from(self.dilation)
    }

    /// Checks Lemma 1: `dilation ≤ block_parameter · (2 · depth + 1)` for a
    /// tree of the given depth. Returns `true` when the inequality holds
    /// (or when the block parameter was not measured).
    pub fn satisfies_lemma1(&self, tree_depth: u32) -> bool {
        if self.block_parameter == 0 {
            return true;
        }
        u64::from(self.dilation) <= self.block_parameter as u64 * (2 * u64::from(tree_depth) + 1)
    }
}

/// Computes congestion: for every edge, the number of parts `i` such that
/// the edge lies in `G[P_i] + H_i`. The per-part shortcut edge sets are
/// supplied by the `edges_of` accessor so the same routine serves both
/// shortcut representations. Runs in `O(m + Σ|H_i|)`.
pub(crate) fn congestion<F>(graph: &Graph, partition: &Partition, edges_of: F) -> usize
where
    F: Fn(PartId) -> Vec<EdgeId>,
{
    // users[e] = number of distinct parts using edge e. A part uses e either
    // because e ∈ H_i or because both endpoints of e lie in P_i; count each
    // part at most once per edge.
    let mut users = vec![0usize; graph.edge_count()];
    let mut induced_part = vec![None; graph.edge_count()];
    for (e, edge) in graph.edges() {
        let pu = partition.part_of(edge.u);
        if pu.is_some() && pu == partition.part_of(edge.v) {
            users[e.index()] += 1;
            induced_part[e.index()] = pu;
        }
    }
    for p in partition.parts() {
        let mut edges = edges_of(p);
        edges.sort();
        edges.dedup();
        for e in edges {
            if induced_part[e.index()] != Some(p) {
                users[e.index()] += 1;
            }
        }
    }
    users.into_iter().max().unwrap_or(0)
}

/// Nodes of the subgraph `G[P_p] + H_p`: the members of the part plus every
/// endpoint of a shortcut edge.
pub(crate) fn subgraph_nodes(
    graph: &Graph,
    partition: &Partition,
    p: PartId,
    shortcut_edges: &[EdgeId],
) -> Vec<NodeId> {
    let mut member = vec![false; graph.node_count()];
    for &v in partition.members(p) {
        member[v.index()] = true;
    }
    for &e in shortcut_edges {
        let edge = graph.edge(e);
        member[edge.u.index()] = true;
        member[edge.v.index()] = true;
    }
    graph.nodes().filter(|v| member[v.index()]).collect()
}

/// Diameter of the subgraph `G[P_p] + H_p`. The allowed edges are the edges
/// of `G` with both endpoints in `P_p` plus the shortcut edges themselves;
/// the allowed nodes are the part members plus shortcut-edge endpoints.
pub(crate) fn part_subgraph_diameter(
    graph: &Graph,
    partition: &Partition,
    p: PartId,
    shortcut_edges: &[EdgeId],
) -> u32 {
    let nodes = subgraph_nodes(graph, partition, p, shortcut_edges);
    let mut allowed_node = vec![false; graph.node_count()];
    for &v in &nodes {
        allowed_node[v.index()] = true;
    }
    let mut allowed_edge = vec![false; graph.edge_count()];
    for (e, edge) in graph.edges() {
        if partition.part_of(edge.u) == Some(p) && partition.part_of(edge.v) == Some(p) {
            allowed_edge[e.index()] = true;
        }
    }
    for &e in shortcut_edges {
        allowed_edge[e.index()] = true;
    }

    // BFS restricted to allowed nodes and edges, from every node of the
    // subgraph (the subgraphs in our experiments are small relative to G).
    let mut diameter = 0;
    let mut dist = vec![u32::MAX; graph.node_count()];
    for &source in &nodes {
        for d in dist.iter_mut() {
            *d = u32::MAX;
        }
        dist[source.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for (v, e) in graph.neighbors(u) {
                if allowed_edge[e.index()] && allowed_node[v.index()] && dist[v.index()] == u32::MAX
                {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        for &v in &nodes {
            if dist[v.index()] != u32::MAX {
                diameter = diameter.max(dist[v.index()]);
            } else {
                // Disconnected subgraph: by convention report a diameter of
                // "number of nodes" which is larger than any connected
                // diameter and flags the anomaly to callers.
                diameter = diameter.max(graph.node_count() as u32);
            }
        }
    }
    diameter
}

/// Computes dilation: the maximum subgraph diameter over all parts.
pub(crate) fn dilation<F>(graph: &Graph, partition: &Partition, edges_of: F) -> u32
where
    F: Fn(PartId) -> Vec<EdgeId>,
{
    partition
        .parts()
        .map(|p| part_subgraph_diameter(graph, partition, p, &edges_of(p)))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    #[test]
    fn congestion_of_induced_only_partition() {
        let g = generators::grid(3, 5);
        let p = generators::partitions::grid_rows(3, 5);
        // No shortcut edges at all: row edges have congestion 1, column
        // edges 0, so the measured congestion is 1.
        assert_eq!(congestion(&g, &p, |_| Vec::new()), 1);
    }

    #[test]
    fn congestion_counts_shortcut_and_induced_use_together() {
        let g = generators::path(3);
        // Two parts: {0} and {1,2}. Edge (1,2) is induced for part 1; if we
        // also put it in part 0's shortcut the edge serves two subgraphs.
        let mut b = lcs_graph::PartitionBuilder::new(3);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        b.add_part(vec![NodeId::new(1), NodeId::new(2)]).unwrap();
        let p = b.build();
        let shared = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        let c = congestion(&g, &p, |part| {
            if part == PartId::new(0) {
                vec![shared]
            } else {
                // Listing an induced edge in the part's own shortcut must
                // not double-count it.
                vec![shared]
            }
        });
        assert_eq!(c, 2);
    }

    #[test]
    fn subgraph_diameter_uses_shortcut_edges() {
        // Path 0-1-2-3-4 with part {0, 4}... is not connected, so instead
        // use part {0} and check that adding the whole path as shortcut
        // edges lets it reach node 4 in 4 hops.
        let g = generators::path(5);
        let mut b = lcs_graph::PartitionBuilder::new(5);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        let p = b.build();
        let all_edges: Vec<EdgeId> = g.edge_ids().collect();
        assert_eq!(
            part_subgraph_diameter(&g, &p, PartId::new(0), &all_edges),
            4
        );
        assert_eq!(part_subgraph_diameter(&g, &p, PartId::new(0), &[]), 0);
    }

    #[test]
    fn disconnected_subgraph_is_flagged_with_a_large_diameter() {
        let g = generators::path(4);
        let mut b = lcs_graph::PartitionBuilder::new(4);
        b.add_part(vec![NodeId::new(0)]).unwrap();
        let p = b.build();
        // A single shortcut edge at the far end of the path is not connected
        // to the part member.
        let far = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        let d = part_subgraph_diameter(&g, &p, PartId::new(0), &[far]);
        assert!(d >= g.node_count() as u32);
    }

    #[test]
    fn quality_lemma1_check() {
        let q = ShortcutQuality {
            congestion: 3,
            dilation: 10,
            block_parameter: 2,
            per_part_blocks: vec![2, 1],
        };
        assert!(q.satisfies_lemma1(4)); // 10 <= 2 * 9
        assert!(!q.satisfies_lemma1(1)); // 10 > 2 * 3
        assert_eq!(q.congestion_plus_dilation(), 13);
        let unmeasured = ShortcutQuality {
            congestion: 1,
            dilation: 100,
            block_parameter: 0,
            per_part_blocks: vec![],
        };
        assert!(unmeasured.satisfies_lemma1(0));
    }
}
