//! The `FindShortcut` driver (Theorem 3).
//!
//! Assuming a `T`-restricted shortcut with congestion `c` and block
//! parameter `b` exists, repeat: run a core subroutine on the parts not yet
//! satisfied, verify which parts obtained at most `3b` block components, fix
//! their subgraphs and remove them. Each iteration satisfies at least half
//! of the remaining parts (w.h.p. for `CoreFast`), so `O(log N)` iterations
//! suffice; the union of the fixed subgraphs has congestion `O(c·log N)` and
//! block parameter `3b`.

use lcs_congest::RoundCost;
use lcs_graph::{Graph, PartId, Partition, RootedTree};

use super::core_fast::{core_fast, CoreFastConfig};
use super::core_slow::core_slow;
use super::verification::{verification, VerificationOutcome};
use crate::{Result, TreeShortcut};

/// Configuration of the [`FindShortcut`] driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FindShortcutConfig {
    /// The congestion `c` of the canonical shortcut assumed to exist.
    pub congestion: usize,
    /// The block parameter `b` of the canonical shortcut assumed to exist.
    pub block: usize,
    /// Use the randomized `CoreFast` subroutine (default) or the
    /// deterministic `CoreSlow`.
    pub use_fast_core: bool,
    /// Sampling constant forwarded to `CoreFast`.
    pub gamma: f64,
    /// Maximum number of core/verification iterations before giving up.
    /// `None` selects `2·⌈log₂ N⌉ + 8`, comfortably above the `O(log N)`
    /// guarantee.
    pub max_iterations: Option<usize>,
    /// Seed for the randomized core (each iteration derives its own
    /// sub-seed).
    pub seed: u64,
}

impl FindShortcutConfig {
    /// Creates a configuration for canonical parameters `(congestion, block)`
    /// with the defaults: fast core, `γ = 2`, automatic iteration budget,
    /// seed 0.
    pub fn new(congestion: usize, block: usize) -> Self {
        FindShortcutConfig {
            congestion,
            block,
            use_fast_core: true,
            gamma: 2.0,
            max_iterations: None,
            seed: 0,
        }
    }

    /// Switches to the deterministic `CoreSlow` subroutine.
    pub fn with_slow_core(mut self) -> Self {
        self.use_fast_core = false;
        self
    }

    /// Overrides the iteration budget.
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = Some(iterations);
        self
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the `CoreFast` sampling constant.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    fn iteration_budget(&self, part_count: usize) -> usize {
        self.max_iterations
            .unwrap_or_else(|| 2 * (usize::BITS - part_count.max(2).leading_zeros()) as usize + 8)
    }
}

/// Result of running [`FindShortcut`].
#[derive(Debug, Clone)]
pub struct FindShortcutResult {
    /// The constructed shortcut: the union of the subgraphs fixed for each
    /// part in the iteration where the part was verified good.
    pub shortcut: TreeShortcut,
    /// Number of core/verification iterations executed.
    pub iterations: usize,
    /// `true` if every part was verified good within the iteration budget.
    pub all_parts_good: bool,
    /// Number of parts verified good after each iteration (cumulative).
    pub good_after_iteration: Vec<usize>,
    /// Exact round cost, broken down by iteration and subroutine.
    pub cost: RoundCost,
}

impl FindShortcutResult {
    /// Total round count.
    pub fn total_rounds(&self) -> u64 {
        self.cost.total()
    }
}

/// The Theorem 3 construction driver.
#[derive(Debug, Clone, Copy)]
pub struct FindShortcut {
    config: FindShortcutConfig,
}

impl FindShortcut {
    /// Creates a driver with the given configuration.
    pub fn new(config: FindShortcutConfig) -> Self {
        FindShortcut { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> FindShortcutConfig {
        self.config
    }

    /// Runs the construction on `(graph, tree, partition)` with the default
    /// scheduled verification subroutine.
    ///
    /// # Migration
    ///
    /// This is a legacy entry point kept for downstream code; new code
    /// should go through the façade: build a session with
    /// `lcs_api::Pipeline::on` (re-exported as
    /// `low_congestion_shortcuts::api`) and call `Session::shortcut` with
    /// `Strategy::Fixed { congestion, block }` — identical results, one
    /// error type, and the execution mode is a session property instead of
    /// a per-call dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InconsistentInputs`] if the tree does not
    /// span the graph or the partition was built for a different node count.
    #[deprecated(
        since = "0.1.0",
        note = "migrate to `api::Pipeline` / `api::Session::shortcut(.., Strategy::Fixed { .. })`"
    )]
    pub fn run(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
    ) -> Result<FindShortcutResult> {
        self.run_with_verifier(graph, tree, partition, |g, t, p, s, threshold, active| {
            Ok(verification(g, t, p, s, threshold, active))
        })
    }

    /// Runs the construction with a caller-supplied verification subroutine.
    ///
    /// This is the seam through which alternative verification back-ends are
    /// dropped into the Theorem 3 driver without the driver knowing about
    /// them — in particular `lcs_dist`'s message-passing implementation of
    /// the Lemma 3 block counting ([`crate::routing::ExecutionMode`]
    /// `Simulated`). The verifier receives the tentative shortcut of the
    /// current iteration, the `3b` block threshold and the active-part mask,
    /// and must return which active parts verified good plus the round count
    /// to charge.
    ///
    /// # Errors
    ///
    /// Propagates verifier errors and the input-consistency errors of
    /// [`FindShortcut::run`].
    pub fn run_with_verifier<V>(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        verifier: V,
    ) -> Result<FindShortcutResult>
    where
        V: FnMut(
            &Graph,
            &RootedTree,
            &Partition,
            &TreeShortcut,
            usize,
            &[bool],
        ) -> Result<VerificationOutcome>,
    {
        let all = vec![true; partition.part_count()];
        self.run_on_parts(graph, tree, partition, &all, verifier)
    }

    /// Runs the construction restricted to the parts flagged in
    /// `initial_active` — the part-scoped entry the incremental repair
    /// layer drives, one dirty part (or a handful) at a time. Inactive
    /// parts are never touched: the core subroutines skip them, the
    /// verifier only judges active parts, and the returned shortcut
    /// assigns edges only to parts that went active and verified good.
    ///
    /// `good_after_iteration` counts relative to the active set, so the
    /// driver's halving guarantee reads the same as for a full run. Note
    /// the *default* iteration budget is derived from the total part
    /// count; callers comparing runs across partitions with different
    /// part counts should pin an explicit
    /// [`FindShortcutConfig::with_max_iterations`].
    ///
    /// # Errors
    ///
    /// The errors of [`FindShortcut::run_with_verifier`], plus
    /// [`crate::CoreError::InconsistentInputs`] if the mask length differs
    /// from the part count.
    pub fn run_on_parts<V>(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        initial_active: &[bool],
        mut verifier: V,
    ) -> Result<FindShortcutResult>
    where
        V: FnMut(
            &Graph,
            &RootedTree,
            &Partition,
            &TreeShortcut,
            usize,
            &[bool],
        ) -> Result<VerificationOutcome>,
    {
        if initial_active.len() != partition.part_count() {
            return Err(crate::CoreError::InconsistentInputs {
                reason: format!(
                    "active mask covers {} parts but the partition has {}",
                    initial_active.len(),
                    partition.part_count()
                ),
            });
        }
        if tree.node_count() != graph.node_count() {
            return Err(crate::CoreError::InconsistentInputs {
                reason: format!(
                    "tree spans {} nodes but the graph has {}",
                    tree.node_count(),
                    graph.node_count()
                ),
            });
        }
        if partition.node_count() != graph.node_count() {
            return Err(crate::CoreError::InconsistentInputs {
                reason: format!(
                    "partition defined over {} nodes but the graph has {}",
                    partition.node_count(),
                    graph.node_count()
                ),
            });
        }

        let part_count = partition.part_count();
        let budget = self.config.iteration_budget(part_count);
        let block_threshold = 3 * self.config.block.max(1);

        let mut final_shortcut = TreeShortcut::empty(graph, partition);
        let mut remaining: Vec<bool> = initial_active.to_vec();
        let active_count = remaining.iter().filter(|&&a| a).count();
        let mut remaining_count = active_count;
        let mut cost = RoundCost::new();
        let mut good_after_iteration = Vec::new();
        let mut iterations = 0;

        while remaining_count > 0 && iterations < budget {
            iterations += 1;

            // Core subroutine on the remaining parts.
            let core = if self.config.use_fast_core {
                let cfg = CoreFastConfig::new(self.config.congestion)
                    .with_gamma(self.config.gamma)
                    .with_seed(self.config.seed.wrapping_add(iterations as u64));
                core_fast(graph, tree, partition, &cfg, &remaining)
            } else {
                core_slow(graph, tree, partition, self.config.congestion, &remaining)
            };
            cost.charge(format!("iteration-{iterations}/core"), core.rounds);

            // Verification: which remaining parts obtained <= 3b blocks?
            let verified = verifier(
                graph,
                tree,
                partition,
                &core.shortcut,
                block_threshold,
                &remaining,
            )?;
            cost.charge(
                format!("iteration-{iterations}/verification"),
                verified.rounds,
            );

            // Fix the subgraphs of the newly good parts and deactivate them.
            for (p_idx, still_remaining) in remaining.iter_mut().enumerate() {
                if *still_remaining && verified.good[p_idx] {
                    let part = PartId::new(p_idx);
                    final_shortcut.set_part_edges(tree, part, core.shortcut.edges_of(part))?;
                    *still_remaining = false;
                    remaining_count -= 1;
                }
            }
            good_after_iteration.push(active_count - remaining_count);
        }

        Ok(FindShortcutResult {
            shortcut: final_shortcut,
            iterations,
            all_parts_good: remaining_count == 0,
            good_after_iteration,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::existential::reference_parameters;
    use lcs_graph::{generators, NodeId};

    fn setup_grid(rows: usize, cols: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::grid(rows, cols);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(rows, cols);
        (g, t, p)
    }

    /// The headline guarantee (Theorem 3): with (c, b) certified by an
    /// existing shortcut, the result has block parameter at most 3b and
    /// congestion at most O(c log N) — here checked with the concrete
    /// constant 8c per iteration.
    #[test]
    fn theorem3_guarantees_hold_on_grids() {
        let (g, t, p) = setup_grid(8, 8);
        let (_, reference) = reference_parameters(&g, &t, &p);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);

        let result = FindShortcut::new(FindShortcutConfig::new(c, b).with_seed(5))
            .run(&g, &t, &p)
            .unwrap();
        assert!(result.all_parts_good);
        let quality = result.shortcut.quality(&g, &p);
        assert!(quality.block_parameter <= 3 * b);
        assert!(
            quality.congestion <= 8 * c * result.iterations + 1,
            "congestion {} exceeds 8c per iteration ({} iterations, c = {c})",
            quality.congestion,
            result.iterations
        );
        assert!(quality.satisfies_lemma1(t.depth_of_tree()));
        assert!(result.total_rounds() > 0);
    }

    #[test]
    fn slow_core_variant_is_deterministic_and_correct() {
        let (g, t, p) = setup_grid(6, 6);
        let (_, reference) = reference_parameters(&g, &t, &p);
        let config = FindShortcutConfig::new(reference.congestion.max(1), 1).with_slow_core();
        let a = FindShortcut::new(config).run(&g, &t, &p).unwrap();
        let b = FindShortcut::new(config).run(&g, &t, &p).unwrap();
        assert!(a.all_parts_good);
        assert_eq!(a.shortcut, b.shortcut);
        assert_eq!(a.total_rounds(), b.total_rounds());
    }

    #[test]
    fn iteration_count_is_logarithmic_in_practice() {
        let (g, t, p) = setup_grid(10, 10);
        let (_, reference) = reference_parameters(&g, &t, &p);
        let result = FindShortcut::new(FindShortcutConfig::new(
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        ))
        .run(&g, &t, &p)
        .unwrap();
        assert!(result.all_parts_good);
        // 10 columns: the log N bound allows ~2*4+8; in practice one or two
        // iterations suffice on this benign instance.
        assert!(
            result.iterations <= 4,
            "took {} iterations",
            result.iterations
        );
        // The cumulative good counts are nondecreasing and end at N.
        let counts = &result.good_after_iteration;
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), p.part_count());
    }

    #[test]
    fn underestimating_parameters_fails_gracefully() {
        // Claiming a (1, 1) shortcut exists on the lower-bound instance is
        // false (its connector tree is shared by every path); the driver
        // must stop at its iteration budget and report failure rather than
        // looping forever.
        let (g, layout) = generators::lower_bound_graph(8, 16);
        let t = RootedTree::bfs(&g, layout.connector(0));
        let p = generators::partitions::lower_bound_paths(&layout);
        let result = FindShortcut::new(FindShortcutConfig::new(1, 1).with_max_iterations(4))
            .run(&g, &t, &p)
            .unwrap();
        assert_eq!(result.iterations, 4);
        assert!(!result.all_parts_good);
    }

    #[test]
    fn wheel_arcs_get_perfect_shortcuts() {
        let g = generators::wheel(65);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(65, 8);
        let result = FindShortcut::new(FindShortcutConfig::new(1, 1))
            .run(&g, &t, &p)
            .unwrap();
        assert!(result.all_parts_good);
        let q = result.shortcut.quality(&g, &p);
        assert_eq!(q.block_parameter, 1);
        assert!(q.dilation <= 3);
    }

    #[test]
    fn inconsistent_inputs_are_rejected() {
        let (g, t, _) = setup_grid(4, 4);
        let other = generators::grid(3, 3);
        let p_other = generators::partitions::grid_columns(3, 3);
        let err = FindShortcut::new(FindShortcutConfig::new(1, 1))
            .run(&g, &t, &p_other)
            .unwrap_err();
        assert!(matches!(err, crate::CoreError::InconsistentInputs { .. }));
        let t_other = RootedTree::bfs(&other, NodeId::new(0));
        let p = generators::partitions::grid_columns(4, 4);
        let err = FindShortcut::new(FindShortcutConfig::new(1, 1))
            .run(&g, &t_other, &p)
            .unwrap_err();
        assert!(matches!(err, crate::CoreError::InconsistentInputs { .. }));
    }

    #[test]
    fn cost_breakdown_labels_iterations() {
        let (g, t, p) = setup_grid(5, 5);
        let result = FindShortcut::new(FindShortcutConfig::new(5, 5))
            .run(&g, &t, &p)
            .unwrap();
        assert!(result.cost.total_for_prefix("iteration-1/") > 0);
        assert_eq!(result.cost.total(), result.total_rounds());
    }
}
