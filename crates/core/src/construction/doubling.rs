//! Appendix A: shortcut construction when `(c, b)` are unknown.
//!
//! The fixed-parameter `FindShortcut` needs upper bounds on the canonical
//! congestion `c` and block parameter `b`. Because the construction
//! inherently detects its own termination (a whole-tree convergecast tells
//! every node whether bad parts remain), the parameters can simply be
//! guessed and doubled on failure: start small, run `FindShortcut` with an
//! `O(log N)` iteration budget, and double both guesses whenever some part
//! remains bad. The extra cost is a `log(bc)` factor, and — as the paper
//! notes — the search frequently finds shortcuts *better* than the
//! theoretical bound because it succeeds as soon as any good-enough
//! parameters work.

use lcs_congest::RoundCost;
use lcs_graph::{Graph, Partition, RootedTree};

use super::find_shortcut::{FindShortcut, FindShortcutConfig, FindShortcutResult};
use crate::{CoreError, Result, TreeShortcut};

/// Configuration of the doubling search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoublingConfig {
    /// Initial guess for the congestion parameter (doubled on failure).
    pub initial_congestion: usize,
    /// Initial guess for the block parameter (doubled on failure).
    pub initial_block: usize,
    /// Use the randomized core subroutine (default) or the deterministic
    /// one.
    pub use_fast_core: bool,
    /// Maximum number of doublings before giving up.
    pub max_doublings: usize,
    /// Random seed (each attempt derives its own sub-seed).
    pub seed: u64,
}

impl Default for DoublingConfig {
    fn default() -> Self {
        DoublingConfig {
            initial_congestion: 1,
            initial_block: 1,
            use_fast_core: true,
            max_doublings: 24,
            seed: 0,
        }
    }
}

impl DoublingConfig {
    /// Creates the default configuration (start at `(1, 1)`, fast core).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the initial parameter guesses.
    pub fn starting_at(mut self, congestion: usize, block: usize) -> Self {
        self.initial_congestion = congestion.max(1);
        self.initial_block = block.max(1);
        self
    }

    /// Switches to the deterministic core subroutine.
    pub fn with_slow_core(mut self) -> Self {
        self.use_fast_core = false;
        self
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One attempt of the doubling search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoublingAttempt {
    /// Congestion guess used by the attempt.
    pub congestion_guess: usize,
    /// Block-parameter guess used by the attempt.
    pub block_guess: usize,
    /// Whether every part was verified good.
    pub succeeded: bool,
    /// Rounds spent by the attempt.
    pub rounds: u64,
}

/// Result of the doubling search.
#[derive(Debug, Clone)]
pub struct DoublingResult {
    /// The shortcut produced by the first successful attempt.
    pub shortcut: TreeShortcut,
    /// The congestion guess that succeeded.
    pub congestion_guess: usize,
    /// The block-parameter guess that succeeded.
    pub block_guess: usize,
    /// Every attempt made, in order.
    pub attempts: Vec<DoublingAttempt>,
    /// Total round cost across all attempts (failed attempts included —
    /// their work is genuinely spent).
    pub cost: RoundCost,
}

impl DoublingResult {
    /// Total number of rounds across all attempts.
    pub fn total_rounds(&self) -> u64 {
        self.cost.total()
    }
}

/// Runs the Appendix A doubling search.
///
/// # Migration
///
/// This is a legacy entry point kept for downstream code; new code should
/// go through the façade: build a session with `lcs_api::Pipeline::on`
/// (re-exported as `low_congestion_shortcuts::api`) and call
/// `Session::shortcut` with `Strategy::Doubling(..)` — same attempt seeds,
/// same results, one error type, and the session reuses its workspaces
/// across queries.
///
/// # Errors
///
/// Returns [`CoreError::IterationBudgetExhausted`] if no parameter guess up
/// to `max_doublings` doublings produced a shortcut with every part good,
/// and propagates input-validation errors from `FindShortcut`.
#[deprecated(
    since = "0.1.0",
    note = "migrate to `api::Pipeline` / `api::Session::shortcut(.., Strategy::Doubling(..))`"
)]
pub fn doubling_search(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    config: DoublingConfig,
) -> Result<DoublingResult> {
    let mut congestion = config.initial_congestion.max(1);
    let mut block = config.initial_block.max(1);
    let mut cost = RoundCost::new();
    let mut attempts = Vec::new();

    for attempt_index in 0..=config.max_doublings {
        let mut fs_config = FindShortcutConfig::new(congestion, block)
            .with_seed(config.seed.wrapping_add(attempt_index as u64 * 7919));
        if !config.use_fast_core {
            fs_config = fs_config.with_slow_core();
        }
        let result: FindShortcutResult =
            FindShortcut::new(fs_config).run(graph, tree, partition)?;

        let rounds = result.total_rounds();
        cost.charge(
            format!("attempt-{attempt_index} (c={congestion}, b={block})"),
            rounds,
        );
        attempts.push(DoublingAttempt {
            congestion_guess: congestion,
            block_guess: block,
            succeeded: result.all_parts_good,
            rounds,
        });

        if result.all_parts_good {
            return Ok(DoublingResult {
                shortcut: result.shortcut,
                congestion_guess: congestion,
                block_guess: block,
                attempts,
                cost,
            });
        }
        congestion = congestion.saturating_mul(2);
        block = block.saturating_mul(2);
    }

    Err(CoreError::IterationBudgetExhausted {
        iterations: attempts.len(),
        remaining_bad: partition.part_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, NodeId};

    #[test]
    fn doubling_succeeds_without_knowing_parameters() {
        let g = generators::grid(8, 8);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(8, 8);
        let result = doubling_search(&g, &t, &p, DoublingConfig::new()).unwrap();
        assert!(result.attempts.last().unwrap().succeeded);
        let q = result.shortcut.quality(&g, &p);
        assert!(q.block_parameter <= 3 * result.block_guess);
        // The successful guesses are the initial values doubled some number
        // of times.
        assert!(result.congestion_guess.is_power_of_two());
        assert!(result.block_guess.is_power_of_two());
        assert!(result.total_rounds() > 0);
    }

    #[test]
    fn doubling_on_wheel_finds_tiny_parameters_immediately() {
        let g = generators::wheel(41);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(41, 5);
        let result = doubling_search(&g, &t, &p, DoublingConfig::new()).unwrap();
        assert_eq!(result.congestion_guess, 1);
        assert_eq!(result.block_guess, 1);
        assert_eq!(result.attempts.len(), 1);
    }

    #[test]
    fn failed_attempts_are_recorded_and_charged() {
        // Start from parameters that are too small for the comb partition so
        // at least one failure is recorded before success.
        let g = generators::grid(8, 8);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_combs(8, 8);
        let result = doubling_search(&g, &t, &p, DoublingConfig::new().with_seed(3)).unwrap();
        assert!(result.attempts.iter().any(|a| !a.succeeded) || result.attempts.len() == 1);
        // Cost covers every attempt.
        assert_eq!(result.cost.entries().len(), result.attempts.len());
        let sum: u64 = result.attempts.iter().map(|a| a.rounds).sum();
        assert_eq!(sum, result.total_rounds());
    }

    #[test]
    fn exhausting_the_doubling_budget_reports_an_error() {
        // The lower-bound instance with eight contending paths cannot be
        // served at (c, b) = (1, 1): the connector-tree edges are shared by
        // all parts, so with no doublings allowed the search must fail.
        let (g, layout) = generators::lower_bound_graph(8, 16);
        let t = RootedTree::bfs(&g, layout.connector(0));
        let p = generators::partitions::lower_bound_paths(&layout);
        let config = DoublingConfig {
            max_doublings: 0,
            ..DoublingConfig::new()
        };
        let err = doubling_search(&g, &t, &p, config).unwrap_err();
        assert!(matches!(err, CoreError::IterationBudgetExhausted { .. }));
        let _ = NodeId::new(0);
    }

    #[test]
    fn slow_core_doubling_is_deterministic() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(6, 6);
        let config = DoublingConfig::new().with_slow_core();
        let a = doubling_search(&g, &t, &p, config).unwrap();
        let b = doubling_search(&g, &t, &p, config).unwrap();
        assert_eq!(a.shortcut, b.shortcut);
        assert_eq!(a.congestion_guess, b.congestion_guess);
    }
}
