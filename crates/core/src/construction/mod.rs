//! Section 5 of the paper: constructing tree-restricted shortcuts.
//!
//! The framework has three layers:
//!
//! * a **core** subroutine that, assuming a `T`-restricted shortcut with
//!   congestion `c` and block parameter `b` exists, computes a tentative
//!   shortcut whose congestion is `O(c)` and in which at least half of the
//!   parts already have block parameter at most `3b`:
//!   [`core_slow`] (Algorithm 1, deterministic, `O(D·c)` rounds) and
//!   [`core_fast`] (Algorithm 2, randomized, `O(D log n + c)` rounds);
//! * a **verification** subroutine ([`verification`], Lemmas 3/6) that finds
//!   the parts whose tentative subgraph indeed has at most `3b` block
//!   components, in `O(b(D + c))` rounds;
//! * the **driver** [`FindShortcut`] (Theorem 3) that alternates the two,
//!   freezing the subgraphs of verified-good parts and re-running the core
//!   on the rest, until every part is good — `O(log N)` iterations with high
//!   probability — and the Appendix A [`doubling_search`] that removes the
//!   need to know `(c, b)` in advance at the cost of an extra `log(bc)`
//!   factor.

mod core_fast;
mod core_slow;
// The doubling module hosts (and its tests exercise) the deprecated legacy
// entry point; the façade replacement lives in `lcs_api`.
#[allow(deprecated)]
mod doubling;
#[allow(deprecated)]
mod find_shortcut;
mod repair;
mod verification;

pub use core_fast::{core_fast, CoreFastConfig};
pub use core_slow::core_slow;
#[allow(deprecated)]
pub use doubling::{doubling_search, DoublingConfig, DoublingResult};
pub use find_shortcut::{FindShortcut, FindShortcutConfig, FindShortcutResult};
pub use repair::{
    build_corpus, repair_corpus, PartState, RepairConfig, RepairStats, RepairVerifier,
    ShortcutCorpus,
};
pub use verification::{verification, VerificationOutcome};

use crate::TreeShortcut;
use lcs_graph::EdgeId;

/// Output of a core subroutine ([`core_slow`] or [`core_fast`]): a tentative
/// `T`-restricted shortcut, the set of edges declared unusable, and the
/// exact number of CONGEST rounds the subroutine took.
#[derive(Debug, Clone)]
pub struct CoreOutcome {
    /// The tentative shortcut `H'`.
    pub shortcut: TreeShortcut,
    /// `unusable[e]` is `true` if tree edge `e` was declared unusable
    /// because too many parts tried to use it.
    pub unusable: Vec<bool>,
    /// Exact round count of the subroutine.
    pub rounds: u64,
}

impl CoreOutcome {
    /// The edges declared unusable, as a list.
    pub fn unusable_edges(&self) -> Vec<EdgeId> {
        self.unusable
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }
}
