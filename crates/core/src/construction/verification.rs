//! The `Verification` subroutine (Lemmas 3 and 6).
//!
//! Given a tentative `T`-restricted shortcut, find every part whose shortcut
//! subgraph has at most `threshold` block components. The distributed
//! algorithm views each subgraph as a supergraph of block components,
//! floods leader ids for `threshold` supersteps, builds a BFS tree over the
//! supernodes and convergecasts the supernode count; each superstep is an
//! intra-block convergecast + broadcast scheduled by Lemma 2, so the whole
//! subroutine costs `O(threshold · (D + c))` rounds.

use lcs_graph::{Graph, Partition, RootedTree};

use crate::routing::{convergecast_rounds, subtree_specs_from_blocks, RoutingPriority};
use crate::{BlockComponent, TreeShortcut};

/// Result of the verification subroutine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationOutcome {
    /// `good[p]` is `true` if part `p` was active and its subgraph has at
    /// most the threshold number of block components.
    pub good: Vec<bool>,
    /// The measured block-component count of every active part (0 for
    /// inactive parts).
    pub block_counts: Vec<usize>,
    /// Exact round count charged for the subroutine.
    pub rounds: u64,
}

/// Runs the verification subroutine on the active parts.
///
/// The round count charges `threshold + 2` supersteps (leader flooding, the
/// supergraph BFS and the count convergecast) where one superstep is twice
/// the exact Lemma 2 schedule length of the active parts' block family,
/// plus one whole-tree convergecast (`depth` rounds) for the global
/// "are any parts still bad?" check that `FindShortcut` performs after each
/// verification.
///
/// # Panics
///
/// Panics if `active.len()` differs from the partition's part count.
pub fn verification(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    threshold: usize,
    active: &[bool],
) -> VerificationOutcome {
    assert_eq!(
        active.len(),
        partition.part_count(),
        "one active flag per part is required"
    );

    let mut good = vec![false; partition.part_count()];
    let mut block_counts = vec![0usize; partition.part_count()];
    let mut family: Vec<BlockComponent> = Vec::new();
    for p in partition.parts() {
        if !active[p.index()] {
            continue;
        }
        let blocks = shortcut.block_components(graph, tree, partition, p);
        block_counts[p.index()] = blocks.len();
        good[p.index()] = blocks.len() <= threshold;
        family.extend(blocks);
    }

    let schedule = convergecast_rounds(
        tree,
        &subtree_specs_from_blocks(&family),
        RoutingPriority::BlockRootDepth,
    );
    let superstep = 2 * schedule.rounds;
    let rounds = (threshold as u64 + 2) * superstep + u64::from(tree.depth_of_tree());

    VerificationOutcome {
        good,
        block_counts,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::core_slow::all_active;
    use crate::construction::{core_slow, CoreOutcome};
    use crate::existential::ancestor_shortcut;
    use lcs_graph::{generators, NodeId, PartId};

    fn setup_grid(rows: usize, cols: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::grid(rows, cols);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(rows, cols);
        (g, t, p)
    }

    #[test]
    fn ancestor_shortcut_verifies_at_threshold_one() {
        let (g, t, p) = setup_grid(6, 6);
        let s = ancestor_shortcut(&g, &t, &p);
        let outcome = verification(&g, &t, &p, &s, 1, &all_active(&p));
        assert!(outcome.good.iter().all(|&g| g));
        assert!(outcome.block_counts.iter().all(|&k| k == 1));
        assert!(outcome.rounds > 0);
    }

    #[test]
    fn empty_shortcut_fails_small_thresholds_and_passes_large_ones() {
        let (g, t, p) = setup_grid(5, 5);
        let s = TreeShortcut::empty(&g, &p);
        // Each column has 5 singleton blocks, so threshold 4 must fail.
        let fail = verification(&g, &t, &p, &s, 4, &all_active(&p));
        assert!(fail.good.iter().all(|&g| !g));
        assert!(fail.block_counts.iter().all(|&k| k == 5));
        let pass = verification(&g, &t, &p, &s, 5, &all_active(&p));
        assert!(pass.good.iter().all(|&g| g));
    }

    #[test]
    fn inactive_parts_are_never_marked_good() {
        let (g, t, p) = setup_grid(4, 4);
        let s = ancestor_shortcut(&g, &t, &p);
        let mut active = all_active(&p);
        active[2] = false;
        let outcome = verification(&g, &t, &p, &s, 1, &active);
        assert!(!outcome.good[2]);
        assert_eq!(outcome.block_counts[2], 0);
        assert!(outcome.good[0] && outcome.good[1] && outcome.good[3]);
    }

    #[test]
    fn verification_agrees_with_direct_block_counts_on_core_output() {
        let (g, t, p) = setup_grid(8, 8);
        let CoreOutcome { shortcut, .. } = core_slow(&g, &t, &p, 2, &all_active(&p));
        let outcome = verification(&g, &t, &p, &shortcut, 3, &all_active(&p));
        for part in p.parts() {
            assert_eq!(
                outcome.block_counts[part.index()],
                shortcut.block_count(&g, &p, part),
            );
            assert_eq!(
                outcome.good[part.index()],
                shortcut.block_count(&g, &p, part) <= 3
            );
        }
    }

    #[test]
    fn rounds_grow_with_threshold() {
        let (g, t, p) = setup_grid(6, 6);
        let s = ancestor_shortcut(&g, &t, &p);
        let small = verification(&g, &t, &p, &s, 1, &all_active(&p));
        let large = verification(&g, &t, &p, &s, 10, &all_active(&p));
        assert!(large.rounds > small.rounds);
    }

    #[test]
    fn verification_with_no_active_parts_costs_only_the_tree_check() {
        let (g, t, p) = setup_grid(4, 4);
        let s = ancestor_shortcut(&g, &t, &p);
        let outcome = verification(&g, &t, &p, &s, 3, &vec![false; p.part_count()]);
        assert!(outcome.good.iter().all(|&g| !g));
        assert_eq!(outcome.rounds, u64::from(t.depth_of_tree()));
        assert_eq!(outcome.block_counts, vec![0; 4]);
        let _ = PartId::new(0);
    }
}
