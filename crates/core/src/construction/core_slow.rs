//! Algorithm 1: the deterministic `CoreSlow` subroutine.
//!
//! Tree edges are processed bottom-up. Every node `v` maintains the list
//! `L_v` of part ids its parent edge *can see* (a part is visible through an
//! edge if some member lies below the edge and no unusable edge separates
//! them). If more than `2c` parts try to use an edge it is declared
//! unusable; otherwise the edge is assigned to all of them. Lemma 7 shows
//! the result has congestion at most `2c` and at least half the parts end up
//! with block parameter at most `3b`, in `O(D·c)` rounds.

use lcs_graph::{Graph, PartId, Partition, RootedTree};

use super::CoreOutcome;
use crate::TreeShortcut;

/// Runs `CoreSlow` (Algorithm 1) with congestion bound `c` on the parts for
/// which `active` is `true` (inactive parts neither contend for edges nor
/// receive assignments — `FindShortcut` deactivates parts once they are
/// verified good).
///
/// The reported round count is the exact length of the level-synchronous
/// schedule: the nodes of each tree level forward their lists in parallel,
/// one part id per round, so a level costs the length of the longest list
/// forwarded from it (at least one round per level).
///
/// # Panics
///
/// Panics if `active.len()` differs from the partition's part count or the
/// tree does not span `graph`.
pub fn core_slow(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    congestion_bound: usize,
    active: &[bool],
) -> CoreOutcome {
    assert_eq!(
        active.len(),
        partition.part_count(),
        "one active flag per part is required"
    );
    assert_eq!(
        tree.node_count(),
        graph.node_count(),
        "tree must span the graph"
    );
    let cap = 2 * congestion_bound.max(1);

    let mut shortcut = TreeShortcut::empty(graph, partition);
    let mut unusable = vec![false; graph.edge_count()];
    // L_v for every node; lists are sorted and deduplicated.
    let mut lists: Vec<Vec<PartId>> = vec![Vec::new(); graph.node_count()];
    // Rounds per tree level (index = depth of the *sending* nodes).
    let depth = tree.depth_of_tree() as usize;
    let mut level_cost = vec![0u64; depth + 1];

    for &v in tree.nodes_bottom_up() {
        let mut list: Vec<PartId> = Vec::new();
        if let Some(p) = partition.part_of(v) {
            if active[p.index()] {
                list.push(p);
            }
        }
        for &child in tree.children(v) {
            let child_edge = tree.parent_edge(child).expect("children have parent edges");
            if unusable[child_edge.index()] {
                continue;
            }
            list.extend_from_slice(&lists[child.index()]);
        }
        list.sort();
        list.dedup();

        if let Some(parent_edge) = tree.parent_edge(v) {
            let node_depth = tree.depth(v) as usize;
            if list.len() > cap {
                unusable[parent_edge.index()] = true;
                // Declaring an edge unusable costs one (silent) round slot.
                level_cost[node_depth] = level_cost[node_depth].max(1);
            } else {
                for &p in &list {
                    shortcut
                        .assign(tree, p, parent_edge)
                        .expect("parent edges are tree edges and parts are in range");
                }
                level_cost[node_depth] = level_cost[node_depth].max(list.len().max(1) as u64);
            }
        }
        lists[v.index()] = list;
    }

    // Level 0 (the root) never sends.
    let rounds: u64 = level_cost.iter().skip(1).sum();
    CoreOutcome {
        shortcut,
        unusable,
        rounds,
    }
}

/// Returns, for every node, the complete list of active parts its parent
/// edge can see *ignoring* any congestion cap. Shared by tests (it is the
/// fixed point `CoreSlow` truncates).
#[cfg(test)]
pub(crate) fn visible_parts(
    tree: &RootedTree,
    partition: &Partition,
    active: &[bool],
    unusable: &[bool],
) -> Vec<Vec<PartId>> {
    let mut lists: Vec<Vec<PartId>> = vec![Vec::new(); tree.node_count()];
    for &v in tree.nodes_bottom_up() {
        let mut list: Vec<PartId> = Vec::new();
        if let Some(p) = partition.part_of(v) {
            if active[p.index()] {
                list.push(p);
            }
        }
        for &child in tree.children(v) {
            let child_edge = tree.parent_edge(child).expect("children have parent edges");
            if unusable[child_edge.index()] {
                continue;
            }
            list.extend_from_slice(&lists[child.index()]);
        }
        list.sort();
        list.dedup();
        lists[v.index()] = list;
    }
    lists
}

/// Convenience: the "everything is active" flag vector.
#[cfg(test)]
pub(crate) fn all_active(partition: &Partition) -> Vec<bool> {
    vec![true; partition.part_count()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, NodeId};

    fn setup_grid(rows: usize, cols: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::grid(rows, cols);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(rows, cols);
        (g, t, p)
    }

    #[test]
    fn congestion_never_exceeds_twice_the_bound() {
        for c in [1usize, 2, 4, 8] {
            let (g, t, p) = setup_grid(6, 6);
            let outcome = core_slow(&g, &t, &p, c, &all_active(&p));
            outcome.shortcut.validate(&t, &p).unwrap();
            // Only the shortcut-assignment part of congestion is bounded by
            // 2c; measure it directly per edge.
            let worst = g
                .edge_ids()
                .map(|e| outcome.shortcut.parts_on_edge(e).len())
                .max()
                .unwrap();
            assert!(worst <= 2 * c, "c = {c}: {worst} > {}", 2 * c);
        }
    }

    #[test]
    fn generous_bound_assigns_all_ancestors_and_one_block() {
        // With a congestion bound of at least the number of columns no edge
        // is ever unusable, so every part sees all its ancestor edges and
        // has exactly one block component.
        let (g, t, p) = setup_grid(5, 5);
        let outcome = core_slow(&g, &t, &p, 8, &all_active(&p));
        assert!(outcome.unusable_edges().is_empty());
        assert_eq!(outcome.shortcut.block_parameter(&g, &p), 1);
    }

    #[test]
    fn at_least_half_the_parts_are_good_with_reference_parameters() {
        // Theorem guarantee: with (c, b) taken from an existing shortcut, at
        // least N/2 parts have block parameter <= 3b.
        let (g, t, p) = setup_grid(8, 8);
        let (_, reference) = crate::existential::reference_parameters(&g, &t, &p);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        let outcome = core_slow(&g, &t, &p, c, &all_active(&p));
        let counts = outcome.shortcut.block_counts(&g, &p);
        let good = counts.iter().filter(|&&k| k <= 3 * b).count();
        assert!(
            good * 2 >= p.part_count(),
            "only {good} of {} parts are good",
            p.part_count()
        );
    }

    #[test]
    fn tight_bound_marks_edges_unusable() {
        // With congestion bound 1 on the comb partition the shared tree
        // edges near the root must become unusable.
        let g = generators::grid(6, 8);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_combs(6, 8);
        let outcome = core_slow(&g, &t, &p, 1, &all_active(&p));
        // Both parts still respect the cap.
        let worst = g
            .edge_ids()
            .map(|e| outcome.shortcut.parts_on_edge(e).len())
            .max()
            .unwrap();
        assert!(worst <= 2);
        // The schedule is level-synchronous: at least one round per level,
        // at most 2c rounds per level.
        let d = u64::from(t.depth_of_tree());
        assert!(outcome.rounds >= d);
        assert!(outcome.rounds <= d * 2);
    }

    #[test]
    fn inactive_parts_are_ignored() {
        let (g, t, p) = setup_grid(4, 4);
        let mut active = all_active(&p);
        active[0] = false;
        active[2] = false;
        let outcome = core_slow(&g, &t, &p, 4, &active);
        assert!(outcome.shortcut.edges_of(PartId::new(0)).is_empty());
        assert!(outcome.shortcut.edges_of(PartId::new(2)).is_empty());
        assert!(!outcome.shortcut.edges_of(PartId::new(1)).is_empty());
    }

    #[test]
    fn rounds_scale_with_depth_times_congestion() {
        // Wheel arcs: depth 1, so the whole subroutine is a couple of
        // rounds; grids cost at least one round per level.
        let g = generators::wheel(33);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(33, 4);
        let outcome = core_slow(&g, &t, &p, 1, &all_active(&p));
        assert!(outcome.rounds <= 2);

        let (g, t, p) = setup_grid(10, 10);
        let outcome = core_slow(&g, &t, &p, 2, &all_active(&p));
        let d = u64::from(t.depth_of_tree());
        assert!(outcome.rounds >= d);
        assert!(outcome.rounds <= d * 4);
    }

    #[test]
    fn visible_parts_fixed_point_is_consistent_with_assignments() {
        let (g, t, p) = setup_grid(5, 5);
        let outcome = core_slow(&g, &t, &p, 100, &all_active(&p));
        // With no unusable edges, the assignment of each node's parent edge
        // equals the visible-part list of that node.
        let lists = visible_parts(&t, &p, &all_active(&p), &outcome.unusable);
        for v in g.nodes() {
            if let Some(e) = t.parent_edge(v) {
                assert_eq!(outcome.shortcut.parts_on_edge(e), &lists[v.index()][..]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one active flag per part")]
    fn active_flags_must_match_part_count() {
        let (g, t, p) = setup_grid(3, 3);
        let _ = core_slow(&g, &t, &p, 1, &[true]);
    }
}
