//! Part-scoped construction and incremental repair (the customization
//! split).
//!
//! [`ShortcutCorpus`] is the cached per-partition "customization" state a
//! serving session keeps warm: for every part, the shortcut edge set, its
//! exact congestion contribution (the sorted edge set `H_p ∪ G[P_p]`), its
//! measured dilation and block count, and the rounds charged building it —
//! plus the aggregated per-edge load vector so congestion can be
//! re-aggregated by exact subtraction when parts change.
//!
//! Every part is built by its own scoped [`FindShortcut::run_on_parts`]
//! run (singleton active mask, per-part doubling search). The per-part
//! seed is anchored at the part's minimum member node — not its positional
//! id — and the iteration budget is pinned to the graph's node count, so a
//! part's construction is a pure function of `(graph, tree, member set,
//! config)`. That invariance is what makes repair exact: after a
//! [`lcs_graph::PartitionDelta`], clean parts (same member set, possibly
//! renumbered) keep their cached state verbatim, dirty parts are rebuilt,
//! and the result is byte-identical to rebuilding every part from scratch.

use lcs_graph::{EdgeId, Graph, PartId, PartSet, Partition, RootedTree};

use super::find_shortcut::{FindShortcut, FindShortcutConfig};
use super::verification::VerificationOutcome;
use crate::quality::QualityPool;
use crate::{Result, ShortcutQuality, TreeShortcut};

/// Golden-ratio odd multiplier used to spread the min-member node id into
/// the per-part seed space.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of the part-scoped construction path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Initial congestion guess of the per-part doubling search.
    pub congestion: usize,
    /// Initial block-parameter guess of the per-part doubling search.
    pub block: usize,
    /// `CoreFast` (true) or the deterministic `CoreSlow`.
    pub use_fast_core: bool,
    /// Number of parameter doublings after the initial attempt; `0` makes
    /// the search a single fixed-parameter attempt.
    pub max_doublings: usize,
    /// Session seed; each part derives its own stream from its minimum
    /// member node, each attempt its own sub-stream.
    pub seed: u64,
}

impl RepairConfig {
    /// Per-part attempt seed: anchored at the part's minimum member so it
    /// survives renumbering, stepped per doubling attempt exactly like the
    /// session-level doubling search.
    fn attempt_seed(&self, min_member: u64, attempt_index: usize) -> u64 {
        (self.seed ^ min_member.wrapping_mul(SEED_MIX)).wrapping_add(attempt_index as u64 * 7919)
    }
}

/// Cached construction state of one part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartState {
    /// The shortcut edge set `H_p` (sorted).
    pub edges: Vec<EdgeId>,
    /// Exact congestion contribution: `H_p ∪ G[P_p]`, sorted and
    /// deduplicated — the part adds one unit of load to each listed edge.
    pub uses: Vec<EdgeId>,
    /// Measured diameter of `G[P_p] + H_p`.
    pub dilation: u32,
    /// Measured block-component count of `H_p`.
    pub blocks: usize,
    /// `true` if the part verified good within its attempt budget.
    pub good: bool,
    /// Rounds charged across every attempt for this part.
    pub rounds: u64,
    /// Number of doubling attempts consumed.
    pub attempts: usize,
    /// The congestion guess of the last attempt (the successful one when
    /// `good`).
    pub congestion_guess: usize,
    /// The block guess of the last attempt.
    pub block_guess: usize,
}

/// Outcome counters of a corpus build or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairStats {
    /// Parts (re)built by scoped construction runs.
    pub repaired_parts: usize,
    /// Parts whose cached state was reused verbatim.
    pub reused_parts: usize,
    /// Rounds charged for the (re)built parts.
    pub rounds: u64,
}

/// The per-partition customization corpus: every part's cached state plus
/// the aggregated per-edge load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortcutCorpus {
    parts: Vec<PartState>,
    /// `edge_load[e]` = number of parts using edge `e`; its maximum is the
    /// congestion. Maintained by exact subtract/add when parts change.
    edge_load: Vec<u32>,
}

impl ShortcutCorpus {
    /// The cached per-part states, indexed by part id.
    pub fn parts(&self) -> &[PartState] {
        &self.parts
    }

    /// `true` if every part verified good.
    pub fn all_good(&self) -> bool {
        self.parts.iter().all(|p| p.good)
    }

    /// Total rounds charged across all cached parts.
    pub fn total_rounds(&self) -> u64 {
        self.parts.iter().map(|p| p.rounds).sum()
    }

    /// Assembles the corpus into a [`TreeShortcut`] for `partition`.
    ///
    /// # Errors
    ///
    /// The [`TreeShortcut::set_part_edges`] errors — impossible when the
    /// corpus was built for this `(graph, tree, partition)` triple.
    pub fn assemble(
        &self,
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
    ) -> Result<TreeShortcut> {
        let mut shortcut = TreeShortcut::empty(graph, partition);
        for (i, part) in self.parts.iter().enumerate() {
            shortcut.set_part_edges(tree, PartId::new(i), &part.edges)?;
        }
        Ok(shortcut)
    }

    /// The aggregated quality, assembled from the cached per-part
    /// measurements: identical to measuring the assembled shortcut with
    /// [`TreeShortcut::quality_with`].
    pub fn quality(&self) -> ShortcutQuality {
        ShortcutQuality {
            congestion: self.edge_load.iter().copied().max().unwrap_or(0) as usize,
            dilation: self.parts.iter().map(|p| p.dilation).max().unwrap_or(0),
            block_parameter: self.parts.iter().map(|p| p.blocks).max().unwrap_or(0),
            per_part_blocks: self.parts.iter().map(|p| p.blocks).collect(),
        }
    }
}

/// A verification subroutine usable by the scoped construction runs — the
/// same shape [`FindShortcut::run_with_verifier`] takes.
pub trait RepairVerifier:
    FnMut(&Graph, &RootedTree, &Partition, &TreeShortcut, usize, &[bool]) -> Result<VerificationOutcome>
{
}

impl<V> RepairVerifier for V where
    V: FnMut(
        &Graph,
        &RootedTree,
        &Partition,
        &TreeShortcut,
        usize,
        &[bool],
    ) -> Result<VerificationOutcome>
{
}

/// Iteration budget pinned to the node count so it is invariant under
/// partition edits (the driver default depends on the part count, which a
/// delta changes).
fn scoped_iteration_budget(graph: &Graph) -> usize {
    2 * (usize::BITS - graph.node_count().max(2).leading_zeros()) as usize + 8
}

/// Builds one part's cached state by a scoped doubling search: singleton
/// active mask, per-part seed, node-count iteration budget.
fn build_part<V: RepairVerifier>(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    part: PartId,
    config: &RepairConfig,
    pool: &mut QualityPool,
    verifier: &mut V,
) -> Result<PartState> {
    let members = partition.members(part);
    let min_member = members
        .iter()
        .map(|v| v.index() as u64)
        .min()
        .expect("parts are nonempty");
    let budget = scoped_iteration_budget(graph);
    let mut mask = vec![false; partition.part_count()];
    mask[part.index()] = true;

    let mut congestion_guess = config.congestion.max(1);
    let mut block_guess = config.block.max(1);
    let mut rounds = 0u64;
    let mut attempts = 0usize;
    let mut good = false;
    let mut shortcut = None;

    for attempt_index in 0..=config.max_doublings {
        let mut fs = FindShortcutConfig::new(congestion_guess, block_guess)
            .with_seed(config.attempt_seed(min_member, attempt_index))
            .with_max_iterations(budget);
        if !config.use_fast_core {
            fs = fs.with_slow_core();
        }
        let result =
            FindShortcut::new(fs).run_on_parts(graph, tree, partition, &mask, &mut *verifier)?;
        rounds += result.total_rounds();
        attempts += 1;
        good = result.all_parts_good;
        shortcut = Some(result.shortcut);
        if good {
            break;
        }
        congestion_guess = congestion_guess.saturating_mul(2);
        block_guess = block_guess.saturating_mul(2);
    }

    let shortcut = shortcut.expect("at least one attempt runs");
    let edges = shortcut.edges_of(part).to_vec();
    let blocks = shortcut
        .block_components_with(graph, tree, partition, part, pool.primary())
        .len();
    let dilation = pool.primary().part_diameter(graph, partition, part, &edges);
    let mut uses = edges.clone();
    for &v in members {
        for (u, e) in graph.neighbors(v) {
            if u > v && partition.part_of(u) == Some(part) {
                uses.push(e);
            }
        }
    }
    uses.sort_unstable();
    uses.dedup();

    Ok(PartState {
        edges,
        uses,
        dilation,
        blocks,
        good,
        rounds,
        attempts,
        congestion_guess,
        block_guess,
    })
}

fn aggregate_load(edge_count: usize, parts: &[PartState]) -> Vec<u32> {
    let mut load = vec![0u32; edge_count];
    for part in parts {
        for &e in &part.uses {
            load[e.index()] += 1;
        }
    }
    load
}

/// Builds the full customization corpus: every part through the scoped
/// construction path.
///
/// # Errors
///
/// Propagates verifier and input-consistency errors of the scoped runs.
pub fn build_corpus<V: RepairVerifier>(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    config: &RepairConfig,
    pool: &mut QualityPool,
    mut verifier: V,
) -> Result<ShortcutCorpus> {
    let parts = partition
        .parts()
        .map(|p| build_part(graph, tree, partition, p, config, pool, &mut verifier))
        .collect::<Result<Vec<_>>>()?;
    let edge_load = aggregate_load(graph.edge_count(), &parts);
    Ok(ShortcutCorpus { parts, edge_load })
}

/// Repairs `prev` (built for the pre-delta partition) into a corpus for
/// `partition` (the post-delta one): clean parts — `origin[p] = Some(old)`
/// — reuse `prev`'s state for `old` verbatim; dirty parts are rebuilt by
/// scoped runs. Congestion is re-aggregated exactly: the edge loads of old
/// parts with no surviving slot are subtracted, those of rebuilt parts
/// added — no full recount.
///
/// # Errors
///
/// [`crate::CoreError::InconsistentInputs`] if `origin`/`dirty` do not
/// match `partition`'s part count, a clean slot points outside `prev`, or
/// a dirty slot claims an origin; plus the scoped-run errors.
#[allow(clippy::too_many_arguments)]
pub fn repair_corpus<V: RepairVerifier>(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    prev: &ShortcutCorpus,
    origin: &[Option<PartId>],
    dirty: &PartSet,
    config: &RepairConfig,
    pool: &mut QualityPool,
    mut verifier: V,
) -> Result<(ShortcutCorpus, RepairStats)> {
    let part_count = partition.part_count();
    if origin.len() != part_count || dirty.universe() != part_count {
        return Err(crate::CoreError::InconsistentInputs {
            reason: format!(
                "origin map covers {} parts and dirty set {}, but the partition has {part_count}",
                origin.len(),
                dirty.universe()
            ),
        });
    }
    let mut survived = vec![false; prev.parts.len()];
    for (i, o) in origin.iter().enumerate() {
        let p = PartId::new(i);
        match o {
            Some(old) => {
                if dirty.contains(p) {
                    return Err(crate::CoreError::InconsistentInputs {
                        reason: format!("part {p} is dirty but claims origin {old}"),
                    });
                }
                if old.index() >= prev.parts.len() {
                    return Err(crate::CoreError::InconsistentInputs {
                        reason: format!(
                            "part {p} claims origin {old} but the previous corpus has {} parts",
                            prev.parts.len()
                        ),
                    });
                }
                survived[old.index()] = true;
            }
            None => {
                if !dirty.contains(p) {
                    return Err(crate::CoreError::InconsistentInputs {
                        reason: format!("part {p} has no origin but is not in the dirty set"),
                    });
                }
            }
        }
    }

    let mut edge_load = prev.edge_load.clone();
    for (old, part) in prev.parts.iter().enumerate() {
        if !survived[old] {
            for &e in &part.uses {
                edge_load[e.index()] -= 1;
            }
        }
    }

    let mut parts = Vec::with_capacity(part_count);
    let mut stats = RepairStats {
        repaired_parts: 0,
        reused_parts: 0,
        rounds: 0,
    };
    for (i, o) in origin.iter().enumerate() {
        let state = match *o {
            Some(old) => {
                stats.reused_parts += 1;
                prev.parts[old.index()].clone()
            }
            None => {
                let state = build_part(
                    graph,
                    tree,
                    partition,
                    PartId::new(i),
                    config,
                    pool,
                    &mut verifier,
                )?;
                stats.repaired_parts += 1;
                stats.rounds += state.rounds;
                for &e in &state.uses {
                    edge_load[e.index()] += 1;
                }
                state
            }
        };
        parts.push(state);
    }

    Ok((ShortcutCorpus { parts, edge_load }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::verification;
    use lcs_graph::{generators, NodeId, PartitionDelta};

    fn scheduled(
        g: &Graph,
        t: &RootedTree,
        p: &Partition,
        s: &TreeShortcut,
        threshold: usize,
        active: &[bool],
    ) -> Result<VerificationOutcome> {
        Ok(verification(g, t, p, s, threshold, active))
    }

    fn setup(rows: usize, cols: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::grid(rows, cols);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(rows, cols);
        (g, t, p)
    }

    fn config() -> RepairConfig {
        RepairConfig {
            congestion: 1,
            block: 1,
            use_fast_core: true,
            max_doublings: 24,
            seed: 11,
        }
    }

    #[test]
    fn corpus_quality_matches_direct_measurement() {
        let (g, t, p) = setup(8, 8);
        let mut pool = QualityPool::new(&g, 1);
        let corpus = build_corpus(&g, &t, &p, &config(), &mut pool, scheduled).unwrap();
        assert!(corpus.all_good());
        let shortcut = corpus.assemble(&g, &t, &p).unwrap();
        let direct = shortcut.quality_with(&g, &p, &mut pool);
        assert_eq!(corpus.quality(), direct);
    }

    #[test]
    fn repair_equals_full_rebuild_after_a_move() {
        let (g, t, p) = setup(8, 8);
        let mut pool = QualityPool::new(&g, 1);
        let cfg = config();
        let corpus = build_corpus(&g, &t, &p, &cfg, &mut pool, scheduled).unwrap();
        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(1)], PartId::new(0));
        let applied = p.apply_tracked(&g, &delta).unwrap();
        applied.partition.validate(&g).unwrap();
        let (repaired, stats) = repair_corpus(
            &g,
            &t,
            &applied.partition,
            &corpus,
            &applied.origin,
            &applied.dirty,
            &cfg,
            &mut pool,
            scheduled,
        )
        .unwrap();
        let rebuilt = build_corpus(&g, &t, &applied.partition, &cfg, &mut pool, scheduled).unwrap();
        assert_eq!(repaired, rebuilt);
        assert_eq!(stats.repaired_parts, applied.dirty.len());
        assert_eq!(
            stats.reused_parts,
            applied.partition.part_count() - applied.dirty.len()
        );
    }

    #[test]
    fn inconsistent_origin_maps_are_rejected() {
        let (g, t, p) = setup(4, 4);
        let mut pool = QualityPool::new(&g, 1);
        let cfg = config();
        let corpus = build_corpus(&g, &t, &p, &cfg, &mut pool, scheduled).unwrap();
        let err = repair_corpus(
            &g,
            &t,
            &p,
            &corpus,
            &[None; 2],
            &PartSet::new(2),
            &cfg,
            &mut pool,
            scheduled,
        )
        .unwrap_err();
        assert!(matches!(err, crate::CoreError::InconsistentInputs { .. }));
    }
}
