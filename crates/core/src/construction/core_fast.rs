//! Algorithm 2: the randomized `CoreFast` subroutine.
//!
//! `CoreSlow` spends `Θ(c)` rounds per tree level because every level
//! forwards up to `2c` part ids serially. `CoreFast` avoids this by
//! *estimating* the number of contending parts through sampling: every part
//! becomes active with probability `p = γ·log n / (2c)`, only sampled ids
//! are forwarded bottom-up (at most `O(log n)` per level w.h.p.), and an
//! edge is declared unusable once `4c·p = Ω(log n)` sampled ids want to use
//! it. A second phase then routes the *complete* id sets up the tree until
//! the first unusable edge, which is a Lemma 2 routing problem costing
//! `O(D + c)` rounds. Lemma 5 shows congestion `8c` w.h.p. and at least half
//! the parts good, in `O(D log n + c)` rounds.

use std::collections::BTreeSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use lcs_graph::{Graph, PartId, Partition, RootedTree};

use super::CoreOutcome;
use crate::TreeShortcut;

/// Configuration of the `CoreFast` subroutine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreFastConfig {
    /// The congestion bound `c` of the canonical shortcut assumed to exist.
    pub congestion_bound: usize,
    /// The sampling constant `γ` in `p = γ·log n / (2c)`. Larger values
    /// sharpen the Chernoff concentration at the cost of more rounds per
    /// level; the paper only requires a "sufficiently large constant".
    pub gamma: f64,
    /// Seed for the shared randomness (the paper distributes `O(log² n)`
    /// shared random bits in `O(D + log n)` rounds; that cost is charged).
    pub seed: u64,
}

impl CoreFastConfig {
    /// Creates a configuration with the default `γ = 2` and seed 0.
    pub fn new(congestion_bound: usize) -> Self {
        CoreFastConfig {
            congestion_bound,
            gamma: 2.0,
            seed: 0,
        }
    }

    /// Overrides the sampling constant.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Overrides the shared-randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The sampling probability `p = min(1, γ·log₂ n / (2c))`.
    pub fn sampling_probability(&self, node_count: usize) -> f64 {
        let log_n = (node_count.max(2) as f64).log2();
        (self.gamma * log_n / (2.0 * self.congestion_bound.max(1) as f64)).min(1.0)
    }

    /// The unusable-edge threshold `4c·p` (at least 1).
    pub fn unusable_threshold(&self, node_count: usize) -> usize {
        let p = self.sampling_probability(node_count);
        ((4.0 * self.congestion_bound.max(1) as f64 * p).ceil() as usize).max(1)
    }
}

/// Runs `CoreFast` (Algorithm 2) on the parts for which `active` is `true`.
///
/// The reported round count is the sum of
/// * the shared-randomness distribution (`depth + ⌈log₂ n⌉` rounds),
/// * the exact level-synchronous schedule of the sampled-id phase, and
/// * the exact length of the greedy id-forwarding schedule of the second
///   phase (each node forwards the smallest not-yet-forwarded id over its
///   usable parent edge, one id per round).
///
/// # Panics
///
/// Panics if `active.len()` differs from the partition's part count or the
/// tree does not span `graph`.
pub fn core_fast(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    config: &CoreFastConfig,
    active: &[bool],
) -> CoreOutcome {
    assert_eq!(
        active.len(),
        partition.part_count(),
        "one active flag per part is required"
    );
    assert_eq!(
        tree.node_count(),
        graph.node_count(),
        "tree must span the graph"
    );

    let n = graph.node_count();
    let p_sample = config.sampling_probability(n);
    let threshold = config.unusable_threshold(n);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Shared randomness: every node of a part agrees on whether the part is
    // sampled. Cost of distributing the seed: D + ceil(log2 n) rounds.
    let sampled: Vec<bool> = (0..partition.part_count())
        .map(|i| active[i] && rng.gen_bool(p_sample))
        .collect();
    let seed_sharing_rounds =
        u64::from(tree.depth_of_tree()) + lcs_congest::bits_for_node_count(n) as u64;

    // ------------------------------------------------------------------
    // Phase 1: forward sampled ids bottom-up; declare edges unusable when
    // `threshold` sampled ids want to cross them.
    // ------------------------------------------------------------------
    let mut unusable = vec![false; graph.edge_count()];
    let mut sampled_lists: Vec<Vec<PartId>> = vec![Vec::new(); n];
    let depth = tree.depth_of_tree() as usize;
    let mut level_cost = vec![0u64; depth + 1];

    for &v in tree.nodes_bottom_up() {
        let mut list: Vec<PartId> = Vec::new();
        if let Some(p) = partition.part_of(v) {
            if sampled[p.index()] {
                list.push(p);
            }
        }
        for &child in tree.children(v) {
            let child_edge = tree.parent_edge(child).expect("children have parent edges");
            if unusable[child_edge.index()] {
                continue;
            }
            list.extend_from_slice(&sampled_lists[child.index()]);
        }
        list.sort();
        list.dedup();

        if let Some(parent_edge) = tree.parent_edge(v) {
            let node_depth = tree.depth(v) as usize;
            if list.len() >= threshold {
                unusable[parent_edge.index()] = true;
                level_cost[node_depth] = level_cost[node_depth].max(1);
            } else {
                level_cost[node_depth] = level_cost[node_depth].max(list.len().max(1) as u64);
            }
        }
        sampled_lists[v.index()] = list;
    }
    let phase1_rounds: u64 = level_cost.iter().skip(1).sum();

    // ------------------------------------------------------------------
    // Phase 2: route the complete id sets up the tree until the first
    // unusable edge (greedy forwarding, smallest id first).
    // ------------------------------------------------------------------
    let mut known: Vec<BTreeSet<PartId>> = vec![BTreeSet::new(); n];
    let mut forwarded: Vec<BTreeSet<PartId>> = vec![BTreeSet::new(); n];
    for v in graph.nodes() {
        if let Some(p) = partition.part_of(v) {
            if active[p.index()] {
                known[v.index()].insert(p);
            }
        }
    }
    let mut phase2_rounds: u64 = 0;
    loop {
        // Collect the sends of this round based on start-of-round state.
        let mut sends: Vec<(usize, usize, PartId)> = Vec::new(); // (from, to, id)
        for v in graph.nodes() {
            let Some(parent_edge) = tree.parent_edge(v) else {
                continue;
            };
            if unusable[parent_edge.index()] {
                continue;
            }
            let next = known[v.index()]
                .iter()
                .find(|id| !forwarded[v.index()].contains(*id))
                .copied();
            if let Some(id) = next {
                let parent = tree
                    .parent(v)
                    .expect("nodes with parent edges have parents");
                sends.push((v.index(), parent.index(), id));
            }
        }
        if sends.is_empty() {
            break;
        }
        phase2_rounds += 1;
        for (from, to, id) in sends {
            forwarded[from].insert(id);
            known[to].insert(id);
        }
    }

    // Assignment: every id a node knows can use the node's parent edge,
    // unless that edge is unusable.
    let mut shortcut = TreeShortcut::empty(graph, partition);
    for v in graph.nodes() {
        let Some(parent_edge) = tree.parent_edge(v) else {
            continue;
        };
        if unusable[parent_edge.index()] {
            continue;
        }
        for &p in &known[v.index()] {
            shortcut
                .assign(tree, p, parent_edge)
                .expect("parent edges are tree edges and parts are in range");
        }
    }

    CoreOutcome {
        shortcut,
        unusable,
        rounds: seed_sharing_rounds + phase1_rounds + phase2_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::core_slow;
    use crate::construction::core_slow::all_active;
    use lcs_graph::{generators, NodeId};

    fn setup_grid(rows: usize, cols: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::grid(rows, cols);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(rows, cols);
        (g, t, p)
    }

    #[test]
    fn config_derived_quantities() {
        let config = CoreFastConfig::new(16).with_gamma(2.0);
        let p = config.sampling_probability(1024);
        assert!((p - 2.0 * 10.0 / 32.0).abs() < 1e-9);
        assert_eq!(config.unusable_threshold(1024), 40);
        // Tiny congestion bound caps the probability at 1.
        let config = CoreFastConfig::new(1);
        assert_eq!(config.sampling_probability(1024), 1.0);
        assert_eq!(config.unusable_threshold(1024), 4);
    }

    #[test]
    fn output_is_a_valid_tree_restricted_shortcut() {
        let (g, t, p) = setup_grid(8, 8);
        let outcome = core_fast(
            &g,
            &t,
            &p,
            &CoreFastConfig::new(4).with_seed(7),
            &all_active(&p),
        );
        outcome.shortcut.validate(&t, &p).unwrap();
        // Unusable edges carry no assignment.
        for e in outcome.unusable_edges() {
            assert!(outcome.shortcut.parts_on_edge(e).is_empty());
        }
    }

    #[test]
    fn generous_bound_matches_core_slow_exactly() {
        // When the congestion bound is generous enough that nothing is ever
        // unusable, both subroutines converge to the same fixed point: every
        // part gets all of its members' ancestor edges.
        let (g, t, p) = setup_grid(6, 6);
        let slow = core_slow(&g, &t, &p, 50, &all_active(&p));
        let fast = core_fast(
            &g,
            &t,
            &p,
            &CoreFastConfig::new(50).with_seed(3),
            &all_active(&p),
        );
        assert!(slow.unusable_edges().is_empty());
        assert!(fast.unusable_edges().is_empty());
        for part in p.parts() {
            assert_eq!(slow.shortcut.edges_of(part), fast.shortcut.edges_of(part));
        }
    }

    #[test]
    fn at_least_half_the_parts_are_good_with_reference_parameters() {
        let (g, t, p) = setup_grid(8, 8);
        let (_, reference) = crate::existential::reference_parameters(&g, &t, &p);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        for seed in 0..5 {
            let outcome = core_fast(
                &g,
                &t,
                &p,
                &CoreFastConfig::new(c).with_seed(seed),
                &all_active(&p),
            );
            let counts = outcome.shortcut.block_counts(&g, &p);
            let good = counts.iter().filter(|&&k| k <= 3 * b).count();
            assert!(
                good * 2 >= p.part_count(),
                "seed {seed}: only {good} good parts"
            );
        }
    }

    #[test]
    fn fast_is_cheaper_than_slow_when_congestion_is_large() {
        // On a long path partitioned into singleton-ish parts the slow core
        // pays Θ(D·c) while the fast core pays O(D log n + c).
        let g = generators::grid(12, 12);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::random_bfs_balls(&g, 36, 1);
        let c = 36;
        let slow = core_slow(&g, &t, &p, c, &all_active(&p));
        let fast = core_fast(
            &g,
            &t,
            &p,
            &CoreFastConfig::new(c).with_seed(1),
            &all_active(&p),
        );
        assert!(
            fast.rounds <= slow.rounds,
            "CoreFast ({}) should not exceed CoreSlow ({}) at large c",
            fast.rounds,
            slow.rounds
        );
    }

    #[test]
    fn inactive_parts_receive_no_assignments() {
        let (g, t, p) = setup_grid(4, 4);
        let mut active = all_active(&p);
        active[1] = false;
        let outcome = core_fast(&g, &t, &p, &CoreFastConfig::new(4), &active);
        assert!(outcome.shortcut.edges_of(PartId::new(1)).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, t, p) = setup_grid(6, 6);
        let a = core_fast(
            &g,
            &t,
            &p,
            &CoreFastConfig::new(3).with_seed(11),
            &all_active(&p),
        );
        let b = core_fast(
            &g,
            &t,
            &p,
            &CoreFastConfig::new(3).with_seed(11),
            &all_active(&p),
        );
        assert_eq!(a.shortcut, b.shortcut);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn rounds_include_seed_sharing_and_scale_with_depth() {
        let (g, t, p) = setup_grid(10, 10);
        let outcome = core_fast(&g, &t, &p, &CoreFastConfig::new(5), &all_active(&p));
        let d = u64::from(t.depth_of_tree());
        assert!(outcome.rounds >= d);
    }
}
