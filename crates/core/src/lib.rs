//! Tree-restricted low-congestion shortcuts, constructed without embedding.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Haeupler, Izumi, Zuzic, *Low-Congestion Shortcuts without Embedding*,
//! PODC 2016):
//!
//! * [`Shortcut`] — general low-congestion shortcuts (Definition 1) and
//!   their quality measures congestion and dilation,
//! * [`TreeShortcut`] — the paper's *tree-restricted* shortcuts
//!   (Definition 2): every shortcut subgraph `H_i` consists solely of edges
//!   of a fixed rooted spanning tree `T`, measured by the *block parameter*
//!   (Definition 3) instead of dilation (Lemma 1 relates the two),
//! * [`routing`] — the deterministic routing machinery: Lemma 2 tree
//!   routing for families of subtrees, and the Theorem 2 part-parallel
//!   primitives (leader election, convergecast, broadcast) plus the Lemma 3
//!   block-component counting,
//! * [`construction`] — the paper's Section 5 algorithms: `CoreSlow`
//!   (Algorithm 1), `CoreFast` (Algorithm 2), `Verification`,
//!   `FindShortcut` (Theorem 3) and the Appendix A doubling search for
//!   unknown parameters,
//! * [`existential`] — centralized reference constructions that exhibit
//!   *some* tree-restricted shortcut for a given instance; they play the
//!   role of the "canonical shortcut" whose existence Theorem 3 assumes.
//!
//! # Quick start
//!
//! ```
//! use lcs_core::construction::{FindShortcut, FindShortcutConfig};
//! use lcs_graph::{generators, NodeId, RootedTree};
//!
//! // A planar grid partitioned into its columns.
//! let graph = generators::grid(8, 8);
//! let partition = generators::partitions::grid_columns(8, 8);
//! let tree = RootedTree::bfs(&graph, NodeId::new(0));
//!
//! // Construct a near-optimal tree-restricted shortcut, assuming a
//! // canonical shortcut with congestion 8 and block parameter 3 exists.
//! let result = FindShortcut::new(FindShortcutConfig::new(8, 3))
//!     .run(&graph, &tree, &partition)
//!     .unwrap();
//! let quality = result.shortcut.quality(&graph, &partition);
//! assert!(quality.block_parameter <= 3 * 3);
//! assert!(result.all_parts_good);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod quality;
mod shortcut;
mod tree_restricted;

pub mod construction;
pub mod existential;
pub mod routing;

pub use error::CoreError;
pub use quality::{QualityPool, ShortcutQuality};
pub use shortcut::Shortcut;
pub use tree_restricted::{BlockComponent, TreeShortcut};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
