//! Pre-built serving corpora: one graph per [`Family`], many entries —
//! each a partition with its constructed shortcut, a verification
//! threshold, and an edge-weight permutation — so the drivers serve warm
//! and the workload measures serving, not setup.
//!
//! Entry 0 is the family's *canonical* partition (grid columns, wheel
//! arcs — the shapes the paper's bounds are stated for); the remaining
//! entries are seeded random BFS-ball partitions, which is where
//! construction cost varies. Under Zipf skew rank 0 is the hottest
//! entry, so θ=1 traffic hammers the canonical decomposition while the
//! tail occasionally pays for the irregular ones.

use lcs_api::graph::{generators, EdgeWeights, Graph, Partition};
use lcs_api::{LcsError, Pipeline, Result, Strategy, TreeShortcut};

/// The graph families a corpus can be built over — the same five the
/// experiment tiers sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Planar `size × size` grid; canonical partition = columns.
    Grid,
    /// `size × size` torus (genus grows with size).
    Torus,
    /// Random connected graph on `size²` nodes with `size²` extra edges.
    Random,
    /// Caterpillar tree on ~`size²` nodes (spine `size²/4`, 3 legs each).
    Caterpillar,
    /// Wheel on `size² + 1` nodes; canonical partition = rim arcs.
    Wheel,
}

impl Family {
    /// All five families.
    pub const ALL: [Family; 5] = [
        Family::Grid,
        Family::Torus,
        Family::Random,
        Family::Caterpillar,
        Family::Wheel,
    ];

    /// Short label for table rows.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Grid => "grid",
            Family::Torus => "torus",
            Family::Random => "random",
            Family::Caterpillar => "caterpillar",
            Family::Wheel => "wheel",
        }
    }
}

/// What to build: a family, its size knob (roughly `size²` nodes), how
/// many partition entries, and the seed the random partitions, weight
/// permutations, and construction sessions all derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Graph family.
    pub family: Family,
    /// Size knob: grids/tori are `size × size`; other families target
    /// ~`size²` nodes. Must be ≥ 3.
    pub size: usize,
    /// Number of corpus entries (partitions). Must be ≥ 1.
    pub entries: usize,
    /// Seed for partitions, weights, and the construction session.
    pub seed: u64,
}

/// One pre-built serving entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The partition queries target.
    pub partition: Partition,
    /// The shortcut constructed for it at corpus-build time (what verify
    /// and quality queries consume).
    pub shortcut: TreeShortcut,
    /// Verification threshold: 3× the winning doubling guess's block
    /// parameter, the same "good" margin the construction proves.
    pub threshold: usize,
    /// A seeded weight permutation for MST queries against this entry.
    pub weights: EdgeWeights,
}

/// A graph plus its pre-built entries — everything the drivers borrow.
#[derive(Debug)]
pub struct Corpus {
    graph: Graph,
    entries: Vec<CorpusEntry>,
    label: String,
}

impl Corpus {
    /// Builds the graph, the partitions, and every entry's shortcut /
    /// threshold / weights. Deterministic in `spec`.
    ///
    /// # Errors
    ///
    /// [`LcsError::Config`] for a degenerate spec (`entries == 0` or
    /// `size < 3`); otherwise whatever the construction session reports.
    pub fn build(spec: &CorpusSpec) -> Result<Corpus> {
        if spec.entries == 0 {
            return Err(LcsError::Config {
                reason: "corpus needs at least one entry (spec.entries = 0)".to_string(),
            });
        }
        if spec.size < 3 {
            return Err(LcsError::Config {
                reason: format!("corpus size knob must be >= 3, got {}", spec.size),
            });
        }
        let n = spec.size * spec.size;
        let graph = match spec.family {
            Family::Grid => generators::grid(spec.size, spec.size),
            Family::Torus => generators::torus(spec.size, spec.size),
            Family::Random => generators::random_connected(n, n, spec.seed),
            Family::Caterpillar => generators::caterpillar((n / 4).max(1), 3),
            Family::Wheel => generators::wheel(n + 1),
        };
        let parts = spec.size.max(4);
        let mut session = Pipeline::on(&graph).seed(spec.seed).build()?;
        let mut entries = Vec::with_capacity(spec.entries);
        for k in 0..spec.entries {
            let partition = if k == 0 {
                match spec.family {
                    Family::Grid => generators::partitions::grid_columns(spec.size, spec.size),
                    Family::Wheel => generators::partitions::wheel_arcs(n + 1, parts),
                    _ => generators::partitions::random_bfs_balls(&graph, parts, spec.seed),
                }
            } else {
                generators::partitions::random_bfs_balls(
                    &graph,
                    parts,
                    spec.seed.wrapping_add(k as u64),
                )
            };
            let run = session.shortcut(&partition, Strategy::doubling())?;
            let (_, block_guess) = run.winning_guess().ok_or_else(|| LcsError::Config {
                reason: "corpus construction ended without a winning guess".to_string(),
            })?;
            entries.push(CorpusEntry {
                partition,
                shortcut: run.shortcut,
                threshold: 3 * block_guess,
                weights: EdgeWeights::random_permutation(&graph, spec.seed.wrapping_add(k as u64)),
            });
        }
        drop(session);
        let label = format!("{} {}x{}", spec.family.label(), spec.size, spec.size);
        Ok(Corpus {
            graph,
            entries,
            label,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pre-built entries, in rank order (entry 0 = Zipf-hottest).
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: construction rejects zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Human-readable corpus label, e.g. `"grid 16x16"`.
    pub fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family_small() {
        for family in Family::ALL {
            let corpus = Corpus::build(&CorpusSpec {
                family,
                size: 4,
                entries: 2,
                seed: 5,
            })
            .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
            assert_eq!(corpus.len(), 2);
            assert!(!corpus.is_empty());
            assert!(corpus.label().starts_with(family.label()));
            for entry in corpus.entries() {
                assert!(entry.threshold >= 3);
                assert_eq!(entry.partition.node_count(), corpus.graph().node_count());
            }
        }
    }

    #[test]
    fn empty_and_tiny_specs_are_config_errors() {
        let bad = Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 4,
            entries: 0,
            seed: 1,
        });
        assert!(matches!(bad, Err(LcsError::Config { .. })));
        let tiny = Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 2,
            entries: 1,
            seed: 1,
        });
        assert!(matches!(tiny, Err(LcsError::Config { .. })));
    }

    #[test]
    fn build_is_deterministic() {
        let spec = CorpusSpec {
            family: Family::Torus,
            size: 4,
            entries: 3,
            seed: 9,
        };
        let a = Corpus::build(&spec).unwrap();
        let b = Corpus::build(&spec).unwrap();
        for (ea, eb) in a.entries().iter().zip(b.entries()) {
            assert_eq!(ea.shortcut, eb.shortcut);
            assert_eq!(ea.threshold, eb.threshold);
        }
    }
}
