//! Pre-built serving corpora: one graph per [`Family`], many entries —
//! each a partition with its constructed shortcut, a verification
//! threshold, and an edge-weight permutation — so the drivers serve warm
//! and the workload measures serving, not setup.
//!
//! Entry 0 is the family's *canonical* partition (grid columns, wheel
//! arcs — the shapes the paper's bounds are stated for); the remaining
//! entries are seeded random BFS-ball partitions, which is where
//! construction cost varies. Under Zipf skew rank 0 is the hottest
//! entry, so θ=1 traffic hammers the canonical decomposition while the
//! tail occasionally pays for the irregular ones.

use lcs_api::graph::{generators, EdgeWeights, Graph, NodeId, Partition};
use lcs_api::{
    LcsError, PartitionDelta, Pipeline, RepairBaseline, Result, Session, Strategy, TreeShortcut,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The graph families a corpus can be built over — the same five the
/// experiment tiers sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Planar `size × size` grid; canonical partition = columns.
    Grid,
    /// `size × size` torus (genus grows with size).
    Torus,
    /// Random connected graph on `size²` nodes with `size²` extra edges.
    Random,
    /// Caterpillar tree on ~`size²` nodes (spine `size²/4`, 3 legs each).
    Caterpillar,
    /// Wheel on `size² + 1` nodes; canonical partition = rim arcs.
    Wheel,
}

impl Family {
    /// All five families.
    pub const ALL: [Family; 5] = [
        Family::Grid,
        Family::Torus,
        Family::Random,
        Family::Caterpillar,
        Family::Wheel,
    ];

    /// Short label for table rows.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Grid => "grid",
            Family::Torus => "torus",
            Family::Random => "random",
            Family::Caterpillar => "caterpillar",
            Family::Wheel => "wheel",
        }
    }
}

/// What to build: a family, its size knob (roughly `size²` nodes), how
/// many partition entries, and the seed the random partitions, weight
/// permutations, and construction sessions all derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Graph family.
    pub family: Family,
    /// Size knob: grids/tori are `size × size`; other families target
    /// ~`size²` nodes. Must be ≥ 3.
    pub size: usize,
    /// Number of corpus entries (partitions). Must be ≥ 1.
    pub entries: usize,
    /// Seed for partitions, weights, and the construction session.
    pub seed: u64,
}

/// A pre-generated churn case for repair queries: the tracked baseline
/// (partition + shortcut corpus at corpus-build time) and the seeded
/// delta every `repair` event against this entry replays. Pre-generating
/// both keeps the trace a pure function of the [`WorkloadSpec`] — serving
/// never draws fresh randomness.
///
/// [`WorkloadSpec`]: crate::WorkloadSpec
#[derive(Debug, Clone)]
pub struct RepairCase {
    /// The tracked repair baseline (detached from any session cache).
    pub baseline: RepairBaseline,
    /// The partition delta to replay. Validated at corpus-build time:
    /// applying it yields a connected partition with no empty part.
    pub delta: PartitionDelta,
}

/// One pre-built serving entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The partition queries target.
    pub partition: Partition,
    /// The shortcut constructed for it at corpus-build time (what verify
    /// and quality queries consume).
    pub shortcut: TreeShortcut,
    /// Verification threshold: 3× the winning doubling guess's block
    /// parameter, the same "good" margin the construction proves.
    pub threshold: usize,
    /// A seeded weight permutation for MST queries against this entry.
    pub weights: EdgeWeights,
    /// Pre-generated churn case for repair queries. `None` unless the
    /// corpus was built with [`Corpus::build_with_repair`]; a mix with a
    /// nonzero `repair` weight over a `None` corpus is a config error.
    pub repair: Option<RepairCase>,
}

/// A graph plus its pre-built entries — everything the drivers borrow.
#[derive(Debug)]
pub struct Corpus {
    graph: Graph,
    entries: Vec<CorpusEntry>,
    label: String,
}

impl Corpus {
    /// Builds the graph, the partitions, and every entry's shortcut /
    /// threshold / weights. Deterministic in `spec`.
    ///
    /// # Errors
    ///
    /// [`LcsError::Config`] for a degenerate spec (`entries == 0` or
    /// `size < 3`); otherwise whatever the construction session reports.
    pub fn build(spec: &CorpusSpec) -> Result<Corpus> {
        Corpus::build_inner(spec, false)
    }

    /// [`Corpus::build`] plus a pre-generated [`RepairCase`] per entry,
    /// enabling the `repair` kind in query mixes. The extra work is
    /// additive — graph, partitions, shortcuts, thresholds, and weights
    /// are byte-identical to a plain [`Corpus::build`] of the same spec.
    ///
    /// # Errors
    ///
    /// Same as [`Corpus::build`].
    pub fn build_with_repair(spec: &CorpusSpec) -> Result<Corpus> {
        Corpus::build_inner(spec, true)
    }

    fn build_inner(spec: &CorpusSpec, with_repair: bool) -> Result<Corpus> {
        if spec.entries == 0 {
            return Err(LcsError::Config {
                reason: "corpus needs at least one entry (spec.entries = 0)".to_string(),
            });
        }
        if spec.size < 3 {
            return Err(LcsError::Config {
                reason: format!("corpus size knob must be >= 3, got {}", spec.size),
            });
        }
        let n = spec.size * spec.size;
        let graph = match spec.family {
            Family::Grid => generators::grid(spec.size, spec.size),
            Family::Torus => generators::torus(spec.size, spec.size),
            Family::Random => generators::random_connected(n, n, spec.seed),
            Family::Caterpillar => generators::caterpillar((n / 4).max(1), 3),
            Family::Wheel => generators::wheel(n + 1),
        };
        let parts = spec.size.max(4);
        let mut session = Pipeline::on(&graph).seed(spec.seed).build()?;
        let mut entries = Vec::with_capacity(spec.entries);
        for k in 0..spec.entries {
            let partition = if k == 0 {
                match spec.family {
                    Family::Grid => generators::partitions::grid_columns(spec.size, spec.size),
                    Family::Wheel => generators::partitions::wheel_arcs(n + 1, parts),
                    _ => generators::partitions::random_bfs_balls(&graph, parts, spec.seed),
                }
            } else {
                generators::partitions::random_bfs_balls(
                    &graph,
                    parts,
                    spec.seed.wrapping_add(k as u64),
                )
            };
            let run = session.shortcut(&partition, Strategy::doubling())?;
            let (_, block_guess) = run.winning_guess().ok_or_else(|| LcsError::Config {
                reason: "corpus construction ended without a winning guess".to_string(),
            })?;
            let repair = if with_repair {
                Some(repair_case(&graph, &mut session, &partition, spec, k)?)
            } else {
                None
            };
            entries.push(CorpusEntry {
                partition,
                shortcut: run.shortcut,
                threshold: 3 * block_guess,
                weights: EdgeWeights::random_permutation(&graph, spec.seed.wrapping_add(k as u64)),
                repair,
            });
        }
        drop(session);
        let label = format!("{} {}x{}", spec.family.label(), spec.size, spec.size);
        Ok(Corpus {
            graph,
            entries,
            label,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pre-built entries, in rank order (entry 0 = Zipf-hottest).
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: construction rejects zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Human-readable corpus label, e.g. `"grid 16x16"`.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Seed-mixing constant for the repair-delta stream: keeps delta draws
/// independent of the partition / weight streams derived from the same
/// corpus seed.
const REPAIR_SEED_MIX: u64 = 0x5245_5041_4952; // "REPAIR"

/// Tracks `partition` in `session` and pre-generates a seeded, validated
/// delta for it.
fn repair_case(
    graph: &Graph,
    session: &mut Session,
    partition: &Partition,
    spec: &CorpusSpec,
    entry_index: usize,
) -> Result<RepairCase> {
    session.track_partition(partition, Strategy::doubling())?;
    let baseline = session.repair_baseline().ok_or_else(|| LcsError::Config {
        reason: "corpus repair tracking left no baseline".to_string(),
    })?;
    let delta = repair_delta(
        graph,
        partition,
        (spec.seed ^ REPAIR_SEED_MIX).wrapping_add(entry_index as u64),
    )?;
    Ok(RepairCase { baseline, delta })
}

/// Draws a small, valid churn delta: a seeded boundary-node move when one
/// exists (a node whose part keeps >= 2 members and that has a neighbor
/// in another part, accepted only if the edited parts stay connected),
/// falling back to merging the first adjacent part pair — always valid
/// when the partition has >= 2 parts.
fn repair_delta(graph: &Graph, partition: &Partition, seed: u64) -> Result<PartitionDelta> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = graph.node_count();
    for _ in 0..64 {
        let v = NodeId::new(rng.gen_range(0..n));
        let Some(src) = partition.part_of(v) else {
            continue;
        };
        if partition.members(src).len() < 2 {
            continue;
        }
        let Some(dst) = graph
            .neighbors(v)
            .find_map(|(u, _)| partition.part_of(u).filter(|&p| p != src))
        else {
            continue;
        };
        let delta = PartitionDelta::new().move_nodes(vec![v], dst);
        let still_connected = partition
            .apply(&delta)
            .is_ok_and(|moved| moved.validate(graph).is_ok());
        if still_connected {
            return Ok(delta);
        }
    }
    for (_, edge) in graph.edges() {
        if let (Some(a), Some(b)) = (partition.part_of(edge.u), partition.part_of(edge.v)) {
            if a != b {
                return Ok(PartitionDelta::new().merge_parts(a.min(b), a.max(b)));
            }
        }
    }
    Err(LcsError::Config {
        reason: "corpus partition admits no churn delta (single part?)".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family_small() {
        for family in Family::ALL {
            let corpus = Corpus::build(&CorpusSpec {
                family,
                size: 4,
                entries: 2,
                seed: 5,
            })
            .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
            assert_eq!(corpus.len(), 2);
            assert!(!corpus.is_empty());
            assert!(corpus.label().starts_with(family.label()));
            for entry in corpus.entries() {
                assert!(entry.threshold >= 3);
                assert_eq!(entry.partition.node_count(), corpus.graph().node_count());
            }
        }
    }

    #[test]
    fn empty_and_tiny_specs_are_config_errors() {
        let bad = Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 4,
            entries: 0,
            seed: 1,
        });
        assert!(matches!(bad, Err(LcsError::Config { .. })));
        let tiny = Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 2,
            entries: 1,
            seed: 1,
        });
        assert!(matches!(tiny, Err(LcsError::Config { .. })));
    }

    #[test]
    fn build_with_repair_yields_valid_cases_and_identical_entries() {
        for family in [Family::Grid, Family::Wheel, Family::Random] {
            let spec = CorpusSpec {
                family,
                size: 4,
                entries: 2,
                seed: 5,
            };
            let plain = Corpus::build(&spec).unwrap();
            let churn = Corpus::build_with_repair(&spec).unwrap();
            for (p, c) in plain.entries().iter().zip(churn.entries()) {
                // The repair cases are additive: everything else is
                // byte-identical to a plain build.
                assert_eq!(p.shortcut, c.shortcut);
                assert_eq!(p.threshold, c.threshold);
                assert!(p.repair.is_none());
                let case = c.repair.as_ref().expect("repair case generated");
                // The pre-generated delta applies cleanly and keeps every
                // part connected and nonempty.
                let repaired = c.partition.apply(&case.delta).unwrap();
                repaired.validate(churn.graph()).unwrap();
                assert_eq!(
                    case.baseline.partition().part_count(),
                    c.partition.part_count()
                );
            }
        }
    }

    #[test]
    fn deltas_that_empty_a_partition_are_config_errors() {
        let spec = CorpusSpec {
            family: Family::Grid,
            size: 4,
            entries: 1,
            seed: 2,
        };
        let corpus = Corpus::build_with_repair(&spec).unwrap();
        let entry = &corpus.entries()[0];
        let case = entry.repair.as_ref().unwrap();
        // Drain part 0 entirely into part 1: rejected as a typed config
        // error both at the delta layer and when served as a repair query.
        let p0 = lcs_api::graph::PartId::new(0);
        let p1 = lcs_api::graph::PartId::new(1);
        let drain = PartitionDelta::new().move_nodes(entry.partition.members(p0).to_vec(), p1);
        assert!(matches!(
            entry.partition.apply(&drain),
            Err(LcsError::Config { .. })
        ));
        let session = Pipeline::on(corpus.graph())
            .seed(spec.seed)
            .build()
            .unwrap();
        assert!(matches!(
            session.repair_from(&case.baseline, &drain),
            Err(LcsError::Config { .. })
        ));
    }

    #[test]
    fn build_is_deterministic() {
        let spec = CorpusSpec {
            family: Family::Torus,
            size: 4,
            entries: 3,
            seed: 9,
        };
        let a = Corpus::build(&spec).unwrap();
        let b = Corpus::build(&spec).unwrap();
        for (ea, eb) in a.entries().iter().zip(b.entries()) {
            assert_eq!(ea.shortcut, eb.shortcut);
            assert_eq!(ea.threshold, eb.threshold);
        }
    }
}
