//! The seeded trace generator: same [`WorkloadSpec`] ⇒ byte-identical
//! event sequence, always.
//!
//! A trace is generated in three fixed RNG phases from one
//! `ChaCha8Rng::seed_from_u64(spec.seed)` stream:
//!
//! 1. **Kinds** — the exact per-kind counts from
//!    [`QueryMix::counts`](crate::QueryMix::counts), laid out in kind
//!    order and Fisher–Yates-shuffled.
//! 2. **Entries** — one Zipf(θ) draw per query (rank = corpus entry, so
//!    entry 0 is the hottest under skew).
//! 3. **Arrivals** — open loop only: cumulative exponential gaps
//!    (inverse-CDF from one uniform draw each), giving Poisson arrivals
//!    at the spec's mean rate. Closed loop records 0 — clients pace
//!    themselves.
//!
//! The phases draw in a fixed order and each consumes a fixed number of
//! RNG words per query, which is the entire determinism argument: no
//! data-dependent draw counts, no platform floats beyond IEEE-754
//! `powf`/`ln` on fixed inputs.

use lcs_api::{LcsError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::spec::{Mode, WorkloadSpec};
use crate::zipf::{unit_f64, ZipfSampler};

/// The five query kinds a trace event can carry, mirroring
/// [`lcs_api::Query`]'s variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Construct a shortcut for the entry's partition.
    Construct,
    /// Verify the entry's prebuilt shortcut against its threshold.
    Verify,
    /// Measure the entry's prebuilt shortcut quality.
    Quality,
    /// Run MST with the entry's weight permutation.
    Mst,
    /// Replay the entry's pre-generated partition delta against its
    /// tracked repair baseline.
    Repair,
}

impl QueryKind {
    /// All kinds, in mix-weight order (construct, verify, quality, mst,
    /// repair).
    pub const ALL: [QueryKind; 5] = [
        QueryKind::Construct,
        QueryKind::Verify,
        QueryKind::Quality,
        QueryKind::Mst,
        QueryKind::Repair,
    ];

    /// Index into mix-order arrays
    /// (`[construct, verify, quality, mst, repair]`).
    pub fn index(self) -> usize {
        match self {
            QueryKind::Construct => 0,
            QueryKind::Verify => 1,
            QueryKind::Quality => 2,
            QueryKind::Mst => 3,
            QueryKind::Repair => 4,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Construct => "construct",
            QueryKind::Verify => "verify",
            QueryKind::Quality => "quality",
            QueryKind::Mst => "mst",
            QueryKind::Repair => "repair",
        }
    }
}

/// One query in a trace: what to run, against which corpus entry, and —
/// open loop only — when it is scheduled to arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// The query kind.
    pub kind: QueryKind,
    /// Index of the corpus entry this query targets.
    pub entry: usize,
    /// Scheduled arrival offset from workload start, in nanoseconds.
    /// Always 0 in closed-loop traces.
    pub arrival_nanos: u64,
}

/// Generates the full deterministic trace for `spec` over a corpus of
/// `corpus_entries` entries.
///
/// # Errors
///
/// [`LcsError::Config`] when the workload cannot possibly run: an empty
/// corpus, zero queries, an all-zero query mix, a bad Zipf θ, or a
/// closed-loop client count of zero.
pub fn generate_trace(spec: &WorkloadSpec, corpus_entries: usize) -> Result<Vec<QueryEvent>> {
    if corpus_entries == 0 {
        return Err(LcsError::Config {
            reason: "workload needs a nonempty corpus".to_string(),
        });
    }
    if spec.queries == 0 {
        return Err(LcsError::Config {
            reason: "workload needs at least one query (spec.queries = 0)".to_string(),
        });
    }
    if spec.mix.total() == 0 {
        return Err(LcsError::Config {
            reason: "query mix has all-zero weights; nothing to serve".to_string(),
        });
    }
    if let Mode::Closed { clients: 0, .. } = spec.mode {
        return Err(LcsError::Config {
            reason: "closed-loop workload needs at least one client".to_string(),
        });
    }
    let sampler = ZipfSampler::new(corpus_entries, spec.theta)?;

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);

    // Phase 1: exact kind counts, shuffled.
    let counts = spec.mix.counts(spec.queries);
    let mut kinds = Vec::with_capacity(spec.queries);
    for (kind, &count) in QueryKind::ALL.iter().zip(&counts) {
        kinds.extend(std::iter::repeat_n(*kind, count));
    }
    kinds.shuffle(&mut rng);

    // Phase 2: one Zipf draw per query.
    let entries: Vec<usize> = (0..spec.queries)
        .map(|_| sampler.sample(&mut rng))
        .collect();

    // Phase 3: arrival schedule (open loop only).
    let mut events = Vec::with_capacity(spec.queries);
    let mut clock = 0u64;
    for (kind, entry) in kinds.into_iter().zip(entries) {
        let arrival_nanos = match spec.mode {
            Mode::Open {
                mean_interarrival_nanos,
            } => {
                // Inverse-CDF exponential gap: -ln(1-u) * mean. u < 1 by
                // construction, so the log argument is strictly positive.
                let u = unit_f64(&mut rng);
                let gap = (-(1.0 - u).ln()) * mean_interarrival_nanos as f64;
                clock = clock.saturating_add(gap as u64);
                clock
            }
            Mode::Closed { .. } => 0,
        };
        events.push(QueryEvent {
            kind,
            entry,
            arrival_nanos,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QueryMix;

    fn spec(mode: Mode) -> WorkloadSpec {
        WorkloadSpec::new(mode, 50, 1.0, QueryMix::mixed(), 11)
    }

    #[test]
    fn same_seed_identical_trace() {
        let s = spec(Mode::Open {
            mean_interarrival_nanos: 1000,
        });
        assert_eq!(
            generate_trace(&s, 5).unwrap(),
            generate_trace(&s, 5).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec(Mode::Closed {
            clients: 2,
            think_nanos: 0,
        });
        let mut b = a;
        b.seed = a.seed + 1;
        assert_ne!(
            generate_trace(&a, 5).unwrap(),
            generate_trace(&b, 5).unwrap()
        );
    }

    #[test]
    fn open_arrivals_are_nondecreasing_and_closed_are_zero() {
        let open = generate_trace(
            &spec(Mode::Open {
                mean_interarrival_nanos: 500,
            }),
            4,
        )
        .unwrap();
        let mut last = 0;
        for e in &open {
            assert!(e.arrival_nanos >= last);
            last = e.arrival_nanos;
        }
        let closed = generate_trace(
            &spec(Mode::Closed {
                clients: 3,
                think_nanos: 10,
            }),
            4,
        )
        .unwrap();
        assert!(closed.iter().all(|e| e.arrival_nanos == 0));
    }

    #[test]
    fn kind_counts_match_the_mix_exactly() {
        let s = spec(Mode::Closed {
            clients: 1,
            think_nanos: 0,
        });
        let trace = generate_trace(&s, 3).unwrap();
        let expected = s.mix.counts(s.queries);
        let mut got = [0usize; 5];
        for e in &trace {
            got[e.kind.index()] += 1;
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn bad_specs_are_typed_config_errors() {
        let s = spec(Mode::Open {
            mean_interarrival_nanos: 0,
        });
        assert!(matches!(
            generate_trace(&s, 0),
            Err(LcsError::Config { .. })
        ));
        let mut zero_queries = s;
        zero_queries.queries = 0;
        assert!(matches!(
            generate_trace(&zero_queries, 4),
            Err(LcsError::Config { .. })
        ));
        let mut zero_mix = s;
        zero_mix.mix = QueryMix {
            construct: 0,
            verify: 0,
            quality: 0,
            mst: 0,
            repair: 0,
        };
        assert!(matches!(
            generate_trace(&zero_mix, 4),
            Err(LcsError::Config { .. })
        ));
        let zero_clients = spec(Mode::Closed {
            clients: 0,
            think_nanos: 0,
        });
        assert!(matches!(
            generate_trace(&zero_clients, 4),
            Err(LcsError::Config { .. })
        ));
    }

    #[test]
    fn entries_stay_in_corpus_range() {
        let s = spec(Mode::Closed {
            clients: 2,
            think_nanos: 0,
        });
        for e in generate_trace(&s, 3).unwrap() {
            assert!(e.entry < 3);
        }
    }
}
