//! The open- and closed-loop workload drivers.
//!
//! Both drivers replay one deterministic trace against warm
//! [`Session`]s and record into [`LatencyHistogram`]s; they differ only
//! in pacing and in what "latency" means:
//!
//! * **Open loop** — one warm session, queries served in trace order, and
//!   each query's latency is *completion − scheduled arrival*. A query
//!   that arrives while the previous one is still running pays the
//!   queueing delay, so expensive minorities (constructs in a mixed
//!   trace) push the measured tail out — this is the
//!   coordinated-omission-free measurement the E13 tier reads.
//! * **Closed loop** — `k` client threads, each with its own warm session
//!   seeded identically, serving the trace round-robin (client `i` takes
//!   events `i, i+k, i+2k, …`) with optional think-time; latency is
//!   per-query service time.
//!
//! Determinism: result *values* are pure functions of (graph, partition,
//! strategy, session seed), so each client's digest chain — and the
//! outcome digest, which folds per-client digests in client order — is
//! reproducible at any `LCS_THREADS`, on any machine, under any
//! interleaving. Timings vary; values and digests do not.

use std::time::{Duration, Instant};

use lcs_api::{
    Query, QueryValue, Result, Served, Session, ShortcutStrategy, Strategy, ValueDigest,
};
use lcs_obs::Obs;

use crate::corpus::Corpus;
use crate::histogram::LatencyHistogram;
use crate::spec::{Mode, WorkloadSpec};
use crate::trace::{generate_trace, QueryEvent, QueryKind};

/// What one client measured: its sub-histogram, query count, and the
/// FNV-1a chain over its served-result digests (in its serving order).
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Client index (0 for the open-loop driver).
    pub client: usize,
    /// Number of queries this client served.
    pub queries: u64,
    /// This client's latency sub-histogram.
    pub histogram: LatencyHistogram,
    /// FNV-1a chain over this client's per-query result digests.
    pub digest: u64,
}

/// The merged result of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// All clients' histograms merged.
    pub histogram: LatencyHistogram,
    /// Per-client sub-outcomes, in client-index order.
    pub per_client: Vec<ClientOutcome>,
    /// Total queries served (the trace length).
    pub queries: u64,
    /// Per-kind served counts, in
    /// `[construct, verify, quality, mst, repair]` order.
    pub kind_counts: [u64; 5],
    /// Wall-clock nanoseconds of the whole run.
    pub wall_nanos: u64,
    /// FNV-1a fold of the per-client digests in client order — the
    /// one-number determinism check: same spec + corpus ⇒ same digest.
    pub digest: u64,
    /// Every query's result values in trace order, when
    /// [`WorkloadSpec::keep_results`] asked for them.
    pub results: Option<Vec<QueryValue>>,
}

impl WorkloadOutcome {
    /// Served queries per second of wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.queries as f64 * 1e9 / self.wall_nanos as f64
        }
    }
}

/// Maps a trace event to the [`Query`] it stands for, borrowing the
/// entry's prebuilt inputs from the corpus. Public so equivalence tests
/// can replay a trace through [`Session`] directly.
///
/// # Panics
///
/// Panics if `event.entry` is out of the corpus's range — traces are
/// generated against the same corpus length, so this is a caller bug.
/// Likewise panics on a [`QueryKind::Repair`] event against an entry with
/// no pre-generated repair case — [`run_workload`] rejects that
/// combination with [`lcs_api::LcsError::Config`] before serving starts,
/// so reaching the panic means the trace bypassed validation.
pub fn query_of<'a>(corpus: &'a Corpus, event: &QueryEvent) -> Query<'a> {
    let entry = &corpus.entries()[event.entry];
    match event.kind {
        QueryKind::Construct => Query::Construct {
            partition: &entry.partition,
            strategy: Strategy::doubling(),
        },
        QueryKind::Verify => Query::Verify {
            shortcut: &entry.shortcut,
            partition: &entry.partition,
            threshold: entry.threshold,
        },
        QueryKind::Quality => Query::Quality {
            shortcut: &entry.shortcut,
            partition: &entry.partition,
        },
        QueryKind::Mst => Query::Mst {
            weights: &entry.weights,
            strategy: ShortcutStrategy::Doubling,
        },
        QueryKind::Repair => {
            let case = entry
                .repair
                .as_ref()
                .expect("repair event against a corpus built without repair cases");
            Query::Repair {
                baseline: &case.baseline,
                delta: &case.delta,
            }
        }
    }
}

/// Builds one warm serving session over the corpus graph; both drivers
/// (and every closed-loop client) go through here so their sessions are
/// configured identically. The shared recorder handle makes every served
/// query report its `serve/{kind}/*` probes (counter adds commute, so the
/// snapshot's counters stay client-order independent).
fn warm_session<'g>(corpus: &'g Corpus, spec: &WorkloadSpec, obs: &Obs) -> Result<Session<'g>> {
    lcs_api::Pipeline::on(corpus.graph())
        .seed(spec.seed)
        .execution(spec.execution)
        .threads(spec.threads)
        .recorder(obs.clone())
        .build()
}

/// Runs the workload described by `spec` against `corpus` and returns the
/// merged outcome. Dispatches on [`WorkloadSpec::mode`].
///
/// # Errors
///
/// [`lcs_api::LcsError::Config`] for degenerate specs (empty corpus, zero
/// queries, all-zero mix, zero clients — see
/// [`generate_trace`]); otherwise the first
/// query error a session reports.
pub fn run_workload(corpus: &Corpus, spec: &WorkloadSpec) -> Result<WorkloadOutcome> {
    run_workload_obs(corpus, spec, &Obs::off())
}

/// [`run_workload`] with an instrumentation handle. On top of the
/// per-query `serve/{kind}/*` probes every session reports, the drivers
/// add their own: `workload/runs` / `workload/queries` counters, the
/// merged latency distribution (`workload/latency` timer), and — open
/// loop only — the scheduled-vs-start lag timer (`workload/open/lag`)
/// and the high-water queue depth (`workload/open/max_queue_depth`
/// gauge). Counters are trace facts, identical for every thread and
/// client count; timers and the queue-depth gauge are measurements.
pub fn run_workload_obs(
    corpus: &Corpus,
    spec: &WorkloadSpec,
    obs: &Obs,
) -> Result<WorkloadOutcome> {
    let trace = generate_trace(spec, corpus.len())?;
    let kind_counts = count_kinds(&trace);
    if kind_counts[QueryKind::Repair.index()] > 0
        && corpus.entries().iter().any(|e| e.repair.is_none())
    {
        return Err(lcs_api::LcsError::Config {
            reason: "query mix has a repair weight but the corpus has no pre-generated \
                     repair cases; build it with Corpus::build_with_repair"
                .to_string(),
        });
    }
    if obs.is_on() {
        obs.counter_add("workload/runs", 1);
        obs.counter_add("workload/queries", trace.len() as u64);
    }
    let outcome = match spec.mode {
        Mode::Open { .. } => run_open(corpus, spec, &trace, kind_counts, obs),
        Mode::Closed {
            clients,
            think_nanos,
        } => run_closed(corpus, spec, &trace, kind_counts, clients, think_nanos, obs),
    }?;
    if obs.is_on() {
        obs.timer_merge("workload/latency", &outcome.histogram);
    }
    Ok(outcome)
}

fn count_kinds(trace: &[QueryEvent]) -> [u64; 5] {
    let mut counts = [0u64; 5];
    for e in trace {
        counts[e.kind.index()] += 1;
    }
    counts
}

/// What one client's serving loop produces: its histogram, the number of
/// queries it served, its digest chain, and (when kept) its result values.
type ClientRun = (LatencyHistogram, u64, u64, Vec<QueryValue>);

/// One client's serving loop over `events`, shared by both drivers.
/// `latency_of` chooses the measurement (service time vs. schedule-based).
fn serve_events<'a>(
    session: &mut Session<'_>,
    corpus: &Corpus,
    events: impl Iterator<Item = &'a QueryEvent>,
    keep_results: bool,
    mut before: impl FnMut(&QueryEvent),
    mut latency_of: impl FnMut(&QueryEvent, &Served) -> u64,
    think_nanos: u64,
) -> Result<ClientRun> {
    let mut histogram = LatencyHistogram::new();
    let mut digest = ValueDigest::new();
    let mut served_count = 0u64;
    let mut values = Vec::new();
    for event in events {
        before(event);
        let query = query_of(corpus, event);
        let served = if keep_results {
            let (served, value) = session.serve_full(query)?;
            values.push(value);
            served
        } else {
            session.serve(query)?
        };
        histogram.record(latency_of(event, &served));
        digest.push(served.digest);
        served_count += 1;
        if think_nanos > 0 {
            std::thread::sleep(Duration::from_nanos(think_nanos));
        }
    }
    Ok((histogram, served_count, digest.value(), values))
}

fn finish(
    per_client: Vec<ClientOutcome>,
    kind_counts: [u64; 5],
    wall_nanos: u64,
    results: Option<Vec<QueryValue>>,
) -> WorkloadOutcome {
    let mut histogram = LatencyHistogram::new();
    let mut digest = ValueDigest::new();
    let mut queries = 0u64;
    for client in &per_client {
        histogram.merge(&client.histogram);
        digest.push(client.digest);
        queries += client.queries;
    }
    WorkloadOutcome {
        histogram,
        per_client,
        queries,
        kind_counts,
        wall_nanos,
        digest: digest.value(),
        results,
    }
}

fn run_open(
    corpus: &Corpus,
    spec: &WorkloadSpec,
    trace: &[QueryEvent],
    kind_counts: [u64; 5],
    obs: &Obs,
) -> Result<WorkloadOutcome> {
    let mut session = warm_session(corpus, spec, obs)?;
    // Driver probes accumulate into plain locals on the serving path (a
    // histogram of start lags and a queue-depth high-water mark) and hit
    // the registry once, after the loop — the hot path stays lock-free.
    let probe_on = obs.is_on();
    let mut lag_hist = probe_on.then(LatencyHistogram::new);
    let mut max_depth = 0u64;
    let mut next_index = 0usize;
    let start = Instant::now();
    let (histogram, served, digest, values) = serve_events(
        &mut session,
        corpus,
        trace.iter(),
        spec.keep_results,
        // Hold each query until its scheduled arrival. If the schedule
        // has fallen behind (the previous query overran), fire at once —
        // the latency measurement below charges the backlog.
        |event| {
            while (start.elapsed().as_nanos() as u64) < event.arrival_nanos {
                std::hint::spin_loop();
            }
            if let Some(hist) = &mut lag_hist {
                let now = start.elapsed().as_nanos() as u64;
                // How late the query actually starts relative to its
                // scheduled arrival: ~0 when the loop keeps up, the
                // accumulated backlog when it doesn't.
                hist.record(now.saturating_sub(event.arrival_nanos));
                // Queue depth at start of service: this event plus every
                // later one already due (the trace is arrival-sorted).
                let depth = trace[next_index..]
                    .iter()
                    .take_while(|e| e.arrival_nanos <= now)
                    .count() as u64;
                max_depth = max_depth.max(depth);
            }
            next_index += 1;
        },
        // Completion minus *scheduled* arrival: queueing delay included.
        |event, _| (start.elapsed().as_nanos() as u64).saturating_sub(event.arrival_nanos),
        0,
    )?;
    let wall_nanos = start.elapsed().as_nanos() as u64;
    if let Some(hist) = &lag_hist {
        obs.timer_merge("workload/open/lag", hist);
        obs.gauge_max("workload/open/max_queue_depth", max_depth);
    }
    let client = ClientOutcome {
        client: 0,
        queries: served,
        histogram,
        digest,
    };
    Ok(finish(
        vec![client],
        kind_counts,
        wall_nanos,
        spec.keep_results.then_some(values),
    ))
}

fn run_closed(
    corpus: &Corpus,
    spec: &WorkloadSpec,
    trace: &[QueryEvent],
    kind_counts: [u64; 5],
    clients: usize,
    think_nanos: u64,
    obs: &Obs,
) -> Result<WorkloadOutcome> {
    if obs.is_on() {
        obs.gauge_set("workload/clients", clients as u64);
    }
    let start = Instant::now();
    // Each client serves its round-robin share on its own warm session.
    // `thread::scope` lets every client borrow the corpus and the trace
    // (and share the recorder handle — the registry is behind a mutex the
    // serving loop only touches at query granularity).
    let client_runs: Vec<Result<ClientRun>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let obs = &*obs;
                scope.spawn(move || {
                    let mut session = warm_session(corpus, spec, obs)?;
                    serve_events(
                        &mut session,
                        corpus,
                        trace.iter().skip(c).step_by(clients),
                        spec.keep_results,
                        |_| {},
                        |_, served| served.wall_nanos,
                        think_nanos,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload client thread panicked"))
            .collect()
    });
    let wall_nanos = start.elapsed().as_nanos() as u64;

    let mut per_client = Vec::with_capacity(clients);
    let mut slots: Vec<Option<QueryValue>> = if spec.keep_results {
        std::iter::repeat_with(|| None).take(trace.len()).collect()
    } else {
        Vec::new()
    };
    for (c, run) in client_runs.into_iter().enumerate() {
        let (histogram, served, digest, values) = run?;
        if spec.keep_results {
            // Client c served events c, c+k, …: reassemble trace order.
            for (value, slot) in values
                .into_iter()
                .zip(slots.iter_mut().skip(c).step_by(clients))
            {
                *slot = Some(value);
            }
        }
        per_client.push(ClientOutcome {
            client: c,
            queries: served,
            histogram,
            digest,
        });
    }
    let results = spec.keep_results.then(|| {
        slots
            .into_iter()
            .map(|slot| slot.expect("every trace slot served exactly once"))
            .collect()
    });
    Ok(finish(per_client, kind_counts, wall_nanos, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusSpec, Family};
    use crate::spec::QueryMix;

    fn small_corpus() -> Corpus {
        Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 4,
            entries: 2,
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn open_and_closed_runs_complete_and_agree_on_values() {
        let corpus = small_corpus();
        let open = WorkloadSpec::new(
            Mode::Open {
                mean_interarrival_nanos: 0,
            },
            12,
            1.0,
            QueryMix::mixed(),
            5,
        )
        .keep_results(true);
        let closed = WorkloadSpec {
            mode: Mode::Closed {
                clients: 2,
                think_nanos: 0,
            },
            ..open
        };
        let a = run_workload(&corpus, &open).unwrap();
        let b = run_workload(&corpus, &closed).unwrap();
        assert_eq!(a.queries, 12);
        assert_eq!(b.queries, 12);
        assert_eq!(a.kind_counts.iter().sum::<u64>(), 12);
        // Same spec modulo pacing ⇒ same trace ⇒ same values.
        assert_eq!(a.results, b.results);
        assert_eq!(a.histogram.count(), 12);
        assert_eq!(b.per_client.len(), 2);
        assert!(a.throughput_qps() > 0.0);
    }

    #[test]
    fn reruns_have_identical_digests() {
        let corpus = small_corpus();
        let spec = WorkloadSpec::new(
            Mode::Closed {
                clients: 3,
                think_nanos: 0,
            },
            15,
            0.0,
            QueryMix::consume(),
            8,
        );
        let a = run_workload(&corpus, &spec).unwrap();
        let b = run_workload(&corpus, &spec).unwrap();
        assert_eq!(a.digest, b.digest);
        for (ca, cb) in a.per_client.iter().zip(&b.per_client) {
            assert_eq!(ca.digest, cb.digest);
            assert_eq!(ca.queries, cb.queries);
        }
    }

    #[test]
    fn degenerate_specs_are_config_errors() {
        let corpus = small_corpus();
        let zero_queries = WorkloadSpec::new(
            Mode::Open {
                mean_interarrival_nanos: 0,
            },
            0,
            0.0,
            QueryMix::consume(),
            1,
        );
        assert!(matches!(
            run_workload(&corpus, &zero_queries),
            Err(lcs_api::LcsError::Config { .. })
        ));
        let zero_clients = WorkloadSpec::new(
            Mode::Closed {
                clients: 0,
                think_nanos: 0,
            },
            5,
            0.0,
            QueryMix::consume(),
            1,
        );
        assert!(matches!(
            run_workload(&corpus, &zero_clients),
            Err(lcs_api::LcsError::Config { .. })
        ));
    }

    #[test]
    fn repair_mix_serves_and_agrees_across_drivers() {
        let corpus = Corpus::build_with_repair(&CorpusSpec {
            family: Family::Grid,
            size: 4,
            entries: 2,
            seed: 3,
        })
        .unwrap();
        let mix = QueryMix {
            construct: 0,
            verify: 2,
            quality: 1,
            mst: 0,
            repair: 2,
        };
        let open = WorkloadSpec::new(
            Mode::Open {
                mean_interarrival_nanos: 0,
            },
            10,
            1.0,
            mix,
            7,
        )
        .keep_results(true);
        let closed = WorkloadSpec {
            mode: Mode::Closed {
                clients: 2,
                think_nanos: 0,
            },
            ..open
        };
        let a = run_workload(&corpus, &open).unwrap();
        let b = run_workload(&corpus, &closed).unwrap();
        assert_eq!(a.kind_counts[QueryKind::Repair.index()], 4);
        assert_eq!(a.results, b.results);
        assert_eq!(a.digest, run_workload(&corpus, &open).unwrap().digest);
    }

    #[test]
    fn repair_weight_without_repair_cases_is_a_config_error() {
        let corpus = small_corpus();
        let spec = WorkloadSpec::new(
            Mode::Open {
                mean_interarrival_nanos: 0,
            },
            5,
            0.0,
            QueryMix {
                construct: 0,
                verify: 1,
                quality: 0,
                mst: 0,
                repair: 1,
            },
            4,
        );
        assert!(matches!(
            run_workload(&corpus, &spec),
            Err(lcs_api::LcsError::Config { .. })
        ));
    }

    #[test]
    fn more_clients_than_queries_is_fine() {
        let corpus = small_corpus();
        let spec = WorkloadSpec::new(
            Mode::Closed {
                clients: 7,
                think_nanos: 0,
            },
            3,
            0.0,
            QueryMix::consume(),
            2,
        );
        let outcome = run_workload(&corpus, &spec).unwrap();
        assert_eq!(outcome.queries, 3);
        assert_eq!(outcome.per_client.len(), 7);
        assert!(outcome.per_client.iter().skip(3).all(|c| c.queries == 0));
    }
}
