//! Seeded Zipf(θ) popularity sampling over a finite corpus.
//!
//! Rank `r` (0-based) carries probability mass proportional to
//! `(r + 1)^-θ`. θ = 0 degenerates to the uniform distribution; θ = 1 is
//! the classic Zipf head-heavy skew where the first few ranks dominate.
//! Sampling inverts the precomputed CDF with a binary search on one
//! 53-bit uniform draw, so a sample costs one `next_u64` plus
//! `O(log n)` — and, crucially for the workload determinism contract,
//! consumes *exactly one* RNG word regardless of the outcome.

use lcs_api::{LcsError, Result};
use rand::RngCore;

/// Converts one RNG word into a uniform `f64` in `[0, 1)` using 53
/// mantissa bits — the same construction the vendored `rand` uses for
/// `gen_bool`, kept here so trace generation never depends on float
/// distribution code we do not vendor.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A precomputed Zipf(θ) distribution over ranks `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    /// `cum[r]` — cumulative probability of ranks `0..=r`; `cum[n-1] == 1`.
    cum: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Precomputes the distribution over `n` ranks with skew `theta`.
    ///
    /// # Errors
    ///
    /// [`LcsError::Config`] if `n == 0` or `theta` is negative or
    /// non-finite — an empty or ill-skewed corpus can never be sampled.
    pub fn new(n: usize, theta: f64) -> Result<ZipfSampler> {
        if n == 0 {
            return Err(LcsError::Config {
                reason: "Zipf sampler needs a nonempty corpus (n = 0)".to_string(),
            });
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(LcsError::Config {
                reason: format!("Zipf skew must be finite and >= 0, got {theta}"),
            });
        }
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += ((rank + 1) as f64).powf(-theta);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        // Pin the last entry to exactly 1.0 so no uniform draw can fall
        // past the end regardless of rounding.
        *cum.last_mut().expect("n >= 1") = 1.0;
        Ok(ZipfSampler { cum, theta })
    }

    /// Number of ranks in the distribution.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Always `false`: construction rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The skew parameter this sampler was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The analytic probability mass of `rank` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cum[0]
        } else {
            self.cum[rank] - self.cum[rank - 1]
        }
    }

    /// Draws one rank, consuming exactly one `next_u64` from `rng`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u = unit_f64(rng);
        // First rank whose cumulative mass exceeds the draw. u < 1.0 and
        // cum ends at exactly 1.0, so the partition point is always a
        // valid rank; min() guards the impossible rounding edge anyway.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_empty_and_bad_theta() {
        assert!(matches!(
            ZipfSampler::new(0, 1.0),
            Err(LcsError::Config { .. })
        ));
        assert!(matches!(
            ZipfSampler::new(5, -0.1),
            Err(LcsError::Config { .. })
        ));
        assert!(matches!(
            ZipfSampler::new(5, f64::NAN),
            Err(LcsError::Config { .. })
        ));
    }

    #[test]
    fn masses_sum_to_one_and_are_rank_ordered() {
        for theta in [0.0, 0.5, 1.0, 2.0] {
            let z = ZipfSampler::new(9, theta).unwrap();
            let total: f64 = (0..z.len()).map(|r| z.mass(r)).sum();
            assert!((total - 1.0).abs() < 1e-12, "theta={theta}: sum={total}");
            for r in 1..z.len() {
                assert!(
                    z.mass(r - 1) >= z.mass(r) - 1e-12,
                    "theta={theta}: mass must be non-increasing in rank"
                );
            }
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSampler::new(7, 0.0).unwrap();
        for r in 0..7 {
            assert!((z.mass(r) - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let z = ZipfSampler::new(11, 1.0).unwrap();
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..500 {
            let x = z.sample(&mut a);
            assert!(x < 11);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = ZipfSampler::new(1, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert!(!z.is_empty());
        assert_eq!(z.len(), 1);
    }
}
