//! Workload-driven serving harness for the low-congestion-shortcuts
//! pipeline: deterministic Zipf traffic over pre-built partition corpora,
//! open- and closed-loop client drivers against warm [`lcs_api::Session`]s,
//! and mergeable tail-latency histograms.
//!
//! Every earlier experiment tier measures single operations in isolation;
//! this crate asks the production questions instead — throughput versus
//! latency under *mixed* traffic, tail behavior under *skew*. The pieces:
//!
//! * **[`Corpus`]** — a graph from one [`Family`] (grid / torus / random /
//!   caterpillar / wheel) plus a set of pre-built entries, each holding a
//!   partition, its constructed shortcut, a verification threshold, and an
//!   edge-weight permutation. Built once, then served warm.
//! * **[`ZipfSampler`]** — seeded Zipf(θ) popularity over corpus entries:
//!   θ=0 is uniform, θ=1 concentrates most mass on the head ranks —
//!   exactly the skew that makes construction-cost variance across
//!   partitions visible in the tail.
//! * **[`QueryMix`] / [`WorkloadSpec`] / [`Mode`]** — the traffic knobs:
//!   integer query-mix weights (construct / verify / quality / mst)
//!   apportioned *exactly* over a trace, plus either an open-loop arrival
//!   schedule (Poisson interarrivals) or a closed-loop client count with
//!   think-time.
//! * **[`generate_trace`]** — the seeded trace generator; same seed ⇒
//!   byte-identical [`QueryEvent`] sequence, always.
//! * **[`run_workload`]** — the driver. Open loop replays the arrival
//!   schedule on one warm session and measures completion − scheduled
//!   arrival (so queueing delay counts — no coordinated omission); closed
//!   loop runs k client threads, each with its own warm session, and
//!   measures per-query service time. Result *values* are digested with
//!   FNV-1a ([`lcs_api::ValueDigest`]); same seed ⇒ same digest at any
//!   `LCS_THREADS`, any client count, any machine.
//! * **[`LatencyHistogram`]** — fixed-bucket log-linear recorder (16
//!   sub-buckets per octave, ≤ 1/16 relative quantile error) with exact
//!   max tracking and associative/commutative merge for per-client
//!   sub-histograms.
//!
//! # Determinism contract
//!
//! The *trace* (kinds, corpus entries, arrival offsets) is a pure function
//! of the [`WorkloadSpec`]. The *result values* of every query are pure
//! functions of (graph, partition, strategy, session seed) — the engine
//! guarantees value determinism at any thread count — so the workload
//! digest is reproducible even though wall-clock latencies are not.
//! Timings are measurements; values are facts.
//!
//! # Quick start
//!
//! ```
//! use lcs_workload::{Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec};
//!
//! let corpus = Corpus::build(&CorpusSpec {
//!     family: Family::Grid,
//!     size: 6,
//!     entries: 3,
//!     seed: 7,
//! })
//! .unwrap();
//! let spec = WorkloadSpec::new(
//!     Mode::Closed { clients: 2, think_nanos: 0 },
//!     40,
//!     1.0,
//!     QueryMix::consume(),
//!     7,
//! );
//! let outcome = lcs_workload::run_workload(&corpus, &spec).unwrap();
//! assert_eq!(outcome.queries, 40);
//! let rerun = lcs_workload::run_workload(&corpus, &spec).unwrap();
//! assert_eq!(outcome.digest, rerun.digest); // values are deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod driver;
pub mod histogram;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use corpus::{Corpus, CorpusEntry, CorpusSpec, Family, RepairCase};
pub use driver::{query_of, run_workload, run_workload_obs, ClientOutcome, WorkloadOutcome};
pub use histogram::LatencyHistogram;
pub use spec::{Mode, QueryMix, WorkloadSpec};
pub use trace::{generate_trace, QueryEvent, QueryKind};
pub use zipf::ZipfSampler;
