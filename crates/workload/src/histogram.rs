//! Mergeable tail-latency histograms — re-exported from
//! [`lcs_obs::histogram`].
//!
//! The log-linear [`LatencyHistogram`] started here (PR 6) and moved to
//! the observability crate so the engine's timer probes, the metric
//! exporters, and the workload drivers share one implementation (and one
//! test suite). This module keeps the original `lcs_workload::histogram`
//! import path working; the type is literally the same.

pub use lcs_obs::histogram::{bucket_bounds, bucket_index, LatencyHistogram};
