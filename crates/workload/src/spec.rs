//! The traffic knobs: query-mix weights, open/closed-loop mode, and the
//! full [`WorkloadSpec`] a driver run is a pure function of.

use lcs_api::{ExecutionMode, Threads};

/// Integer weights of the five query kinds in a trace. The trace
/// generator apportions the total query count *exactly* (largest-remainder
/// rounding), so a 1000-query trace with weights 10/55/30/5 contains
/// exactly 100 constructs — never 99 or 101.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMix {
    /// Weight of shortcut-construction queries.
    pub construct: u32,
    /// Weight of verification queries against the prebuilt decomposition.
    pub verify: u32,
    /// Weight of quality-measurement queries.
    pub quality: u32,
    /// Weight of MST queries.
    pub mst: u32,
    /// Weight of partition-churn repair queries (each replays the entry's
    /// pre-generated delta against its tracked baseline). Requires a
    /// corpus built with repair cases when nonzero.
    pub repair: u32,
}

impl QueryMix {
    /// The "consume" mix: pure read traffic against prebuilt
    /// decompositions — 60% verify, 40% quality. This is the
    /// one-decomposition-many-consumers serving shape E11 measured.
    pub fn consume() -> Self {
        QueryMix {
            construct: 0,
            verify: 60,
            quality: 40,
            mst: 0,
            repair: 0,
        }
    }

    /// The "mixed" mix: mostly reads with a construction and MST
    /// minority — 10% construct, 55% verify, 30% quality, 5% MST. The
    /// expensive minority is what pushes the open-loop tail out.
    pub fn mixed() -> Self {
        QueryMix {
            construct: 10,
            verify: 55,
            quality: 30,
            mst: 5,
            repair: 0,
        }
    }

    /// Sum of the five weights.
    pub fn total(&self) -> u64 {
        u64::from(self.construct)
            + u64::from(self.verify)
            + u64::from(self.quality)
            + u64::from(self.mst)
            + u64::from(self.repair)
    }

    /// A short label: `"consume"` / `"mixed"` for the named presets,
    /// otherwise the raw weights as `c10/v55/q30/m5` (with a trailing
    /// `/r{n}` only when the repair weight is nonzero, so pre-churn labels
    /// are unchanged).
    pub fn label(&self) -> String {
        if *self == QueryMix::consume() {
            "consume".to_string()
        } else if *self == QueryMix::mixed() {
            "mixed".to_string()
        } else {
            let mut label = format!(
                "c{}/v{}/q{}/m{}",
                self.construct, self.verify, self.quality, self.mst
            );
            if self.repair > 0 {
                label.push_str(&format!("/r{}", self.repair));
            }
            label
        }
    }

    /// Apportions `queries` over the four kinds exactly, by largest
    /// remainder: each kind gets `⌊queries·w/total⌋`, and the leftover
    /// queries go to the kinds with the largest fractional remainders
    /// (ties broken in construct, verify, quality, mst order). The result
    /// always sums to `queries`, and a zero-weight kind always gets zero.
    ///
    /// Returns `[construct, verify, quality, mst, repair]` counts.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero — specs are validated by the trace
    /// generator before reaching this point.
    pub fn counts(&self, queries: usize) -> [usize; 5] {
        let total = self.total();
        assert!(total > 0, "query mix must have a nonzero weight");
        let weights = [
            u64::from(self.construct),
            u64::from(self.verify),
            u64::from(self.quality),
            u64::from(self.mst),
            u64::from(self.repair),
        ];
        let mut counts = [0usize; 5];
        let mut remainders = [0u64; 5];
        let q = queries as u64;
        for k in 0..5 {
            counts[k] = ((q * weights[k]) / total) as usize;
            remainders[k] = (q * weights[k]) % total;
        }
        let mut leftover = queries - counts.iter().sum::<usize>();
        // Stable selection: largest remainder first, kind order on ties.
        let mut order = [0usize, 1, 2, 3, 4];
        order.sort_by(|&a, &b| remainders[b].cmp(&remainders[a]).then(a.cmp(&b)));
        for &k in &order {
            if leftover == 0 {
                break;
            }
            // sum(remainders) == leftover * total with each remainder
            // < total, so at least `leftover` kinds have a nonzero
            // remainder — zero-weight kinds are never reached.
            if remainders[k] > 0 {
                counts[k] += 1;
                leftover -= 1;
            }
        }
        debug_assert_eq!(counts.iter().sum::<usize>(), queries);
        counts
    }
}

/// How the driver paces queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Open loop: queries arrive on a fixed schedule (Poisson
    /// interarrivals with the given mean), independent of completions.
    /// One warm session serves them in order; latency is completion −
    /// *scheduled* arrival, so queueing delay counts and slow queries
    /// cannot hide the backlog they cause (no coordinated omission).
    Open {
        /// Mean interarrival gap in nanoseconds (0 = maximal pressure:
        /// every query is due at t=0).
        mean_interarrival_nanos: u64,
    },
    /// Closed loop: `clients` concurrent clients, each with its own warm
    /// session, each issuing its next query only after the previous one
    /// completes plus an optional think-time. Latency is per-query
    /// service time.
    Closed {
        /// Number of concurrent clients (threads). Must be ≥ 1.
        clients: usize,
        /// Think-time between a client's queries, in nanoseconds.
        think_nanos: u64,
    },
}

impl Mode {
    /// `"open"` or `"closed"`, for table rows.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Open { .. } => "open",
            Mode::Closed { .. } => "closed",
        }
    }

    /// The client count: 1 for open loop, `clients` for closed loop.
    pub fn clients(&self) -> usize {
        match self {
            Mode::Open { .. } => 1,
            Mode::Closed { clients, .. } => *clients,
        }
    }
}

/// Everything a workload run is a pure function of (plus the corpus).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Open- or closed-loop pacing.
    pub mode: Mode,
    /// Total number of queries in the trace.
    pub queries: usize,
    /// Zipf skew over corpus entries: 0 = uniform, 1 = head-heavy.
    pub theta: f64,
    /// Query-kind mix.
    pub mix: QueryMix,
    /// Seed of the trace and of every session the driver builds.
    pub seed: u64,
    /// Execution mode of the serving sessions.
    pub execution: ExecutionMode,
    /// Engine thread count of the serving sessions. Result values are
    /// identical at any setting; only timings move.
    pub threads: Threads,
    /// Collect every query's result values into the outcome (for
    /// equivalence tests). Off by default: the hot path records only
    /// latencies and digests.
    pub keep_results: bool,
}

impl WorkloadSpec {
    /// A spec with the given traffic shape and the serving defaults:
    /// `Scheduled` execution, automatic thread count, results not kept.
    pub fn new(mode: Mode, queries: usize, theta: f64, mix: QueryMix, seed: u64) -> Self {
        WorkloadSpec {
            mode,
            queries,
            theta,
            mix,
            seed,
            execution: ExecutionMode::Scheduled,
            threads: Threads::Auto,
            keep_results: false,
        }
    }

    /// Replaces the execution mode.
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Replaces the engine thread count.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Enables collection of per-query result values.
    pub fn keep_results(mut self, keep: bool) -> Self {
        self.keep_results = keep;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_for_the_presets() {
        assert_eq!(QueryMix::consume().counts(100), [0, 60, 40, 0, 0]);
        assert_eq!(QueryMix::mixed().counts(100), [10, 55, 30, 5, 0]);
        assert_eq!(QueryMix::mixed().counts(0), [0, 0, 0, 0, 0]);
    }

    #[test]
    fn counts_always_sum_and_respect_zero_weights() {
        let mixes = [
            QueryMix::consume(),
            QueryMix::mixed(),
            QueryMix {
                construct: 1,
                verify: 1,
                quality: 1,
                mst: 0,
                repair: 0,
            },
            QueryMix {
                construct: 0,
                verify: 0,
                quality: 7,
                mst: 3,
                repair: 0,
            },
            QueryMix {
                construct: 0,
                verify: 3,
                quality: 0,
                mst: 0,
                repair: 2,
            },
        ];
        for mix in mixes {
            for queries in [1usize, 2, 3, 7, 99, 1000] {
                let counts = mix.counts(queries);
                assert_eq!(counts.iter().sum::<usize>(), queries, "{mix:?}");
                if mix.construct == 0 {
                    assert_eq!(counts[0], 0, "zero weight must stay zero: {mix:?}");
                }
                if mix.mst == 0 {
                    assert_eq!(counts[3], 0, "zero weight must stay zero: {mix:?}");
                }
                if mix.repair == 0 {
                    assert_eq!(counts[4], 0, "zero weight must stay zero: {mix:?}");
                }
            }
        }
    }

    #[test]
    fn labels_name_the_presets() {
        assert_eq!(QueryMix::consume().label(), "consume");
        assert_eq!(QueryMix::mixed().label(), "mixed");
        assert_eq!(
            QueryMix {
                construct: 1,
                verify: 2,
                quality: 3,
                mst: 4,
                repair: 0,
            }
            .label(),
            "c1/v2/q3/m4"
        );
        assert_eq!(
            QueryMix {
                construct: 1,
                verify: 2,
                quality: 3,
                mst: 4,
                repair: 5,
            }
            .label(),
            "c1/v2/q3/m4/r5"
        );
        assert_eq!(
            Mode::Open {
                mean_interarrival_nanos: 5
            }
            .label(),
            "open"
        );
        assert_eq!(
            Mode::Closed {
                clients: 3,
                think_nanos: 0
            }
            .clients(),
            3
        );
    }
}
