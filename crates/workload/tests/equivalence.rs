//! The driver is just pacing: a closed loop with one client and zero
//! think-time must produce byte-identical query results (shortcuts,
//! verdicts, quality records, MST edges) to replaying the same trace
//! sequentially through [`Session`] directly — at engine thread counts 1
//! and 4, and in both execution modes.

use lcs_workload::{
    generate_trace, run_workload, Corpus, CorpusSpec, Family, Mode, QueryKind, QueryMix,
    WorkloadSpec,
};

use lcs_api::{ExecutionMode, Pipeline, QueryValue, Strategy, Threads};

fn corpus() -> Corpus {
    Corpus::build_with_repair(&CorpusSpec {
        family: Family::Grid,
        size: 4,
        entries: 3,
        seed: 21,
    })
    .unwrap()
}

/// The mixed preset plus a repair share, so the equivalence sweep also
/// pins the churn path across thread counts and execution modes.
fn churn_mix() -> QueryMix {
    QueryMix {
        construct: 10,
        verify: 55,
        quality: 30,
        mst: 5,
        repair: 10,
    }
}

/// Replays the trace through the dedicated `Session` query methods — not
/// through `serve` — so the test pins the driver against the original
/// API, not against itself.
fn replay_directly(corpus: &Corpus, spec: &WorkloadSpec) -> Vec<QueryValue> {
    let trace = generate_trace(spec, corpus.len()).unwrap();
    let session = Pipeline::on(corpus.graph())
        .seed(spec.seed)
        .execution(spec.execution)
        .threads(spec.threads)
        .build()
        .unwrap();
    trace
        .iter()
        .map(|event| {
            let entry = &corpus.entries()[event.entry];
            match event.kind {
                QueryKind::Construct => {
                    let run = session
                        .shortcut(&entry.partition, Strategy::doubling())
                        .unwrap();
                    QueryValue::Construct(run.shortcut)
                }
                QueryKind::Verify => {
                    let run = session
                        .verify(&entry.shortcut, &entry.partition, entry.threshold)
                        .unwrap();
                    QueryValue::Verify {
                        good: run.good,
                        block_counts: run.block_counts,
                    }
                }
                QueryKind::Quality => {
                    QueryValue::Quality(session.quality(&entry.shortcut, &entry.partition).unwrap())
                }
                QueryKind::Mst => {
                    let run = session
                        .mst(&entry.weights, lcs_api::ShortcutStrategy::Doubling)
                        .unwrap();
                    QueryValue::Mst {
                        edges: run.edges,
                        weight: run.weight,
                    }
                }
                QueryKind::Repair => {
                    let case = entry.repair.as_ref().unwrap();
                    let run = session.repair_from(&case.baseline, &case.delta).unwrap();
                    QueryValue::Repair {
                        shortcut: run.shortcut,
                        quality: run.quality,
                        good: run.good,
                        repaired_parts: run.repaired_parts,
                        reused_parts: run.reused_parts,
                    }
                }
            }
        })
        .collect()
}

fn check_equivalence(execution: ExecutionMode, queries: usize) {
    let corpus = corpus();
    let mut digests = Vec::new();
    for threads in [1usize, 4] {
        let spec = WorkloadSpec::new(
            Mode::Closed {
                clients: 1,
                think_nanos: 0,
            },
            queries,
            1.0,
            churn_mix(),
            13,
        )
        .execution(execution)
        .threads(Threads::Fixed(threads))
        .keep_results(true);

        let outcome = run_workload(&corpus, &spec).unwrap();
        let direct = replay_directly(&corpus, &spec);
        assert_eq!(
            outcome.results.as_deref().unwrap().len(),
            direct.len(),
            "threads={threads}"
        );
        assert_eq!(
            outcome.results.as_deref().unwrap(),
            direct.as_slice(),
            "driver and direct replay disagree at threads={threads}"
        );
        digests.push(outcome.digest);
    }
    // Result values — and therefore the workload digest — are identical
    // across engine thread counts.
    assert_eq!(
        digests[0], digests[1],
        "digest differs across thread counts"
    );
}

#[test]
fn closed_loop_single_client_matches_direct_replay_scheduled() {
    check_equivalence(ExecutionMode::Scheduled, 24);
}

#[test]
fn closed_loop_single_client_matches_direct_replay_simulated() {
    check_equivalence(ExecutionMode::Simulated, 10);
}

#[test]
fn multi_client_and_open_loop_values_match_single_client() {
    let corpus = corpus();
    let base = WorkloadSpec::new(
        Mode::Closed {
            clients: 1,
            think_nanos: 0,
        },
        20,
        0.0,
        QueryMix::consume(),
        99,
    )
    .keep_results(true);
    let single = run_workload(&corpus, &base).unwrap();

    let multi = run_workload(
        &corpus,
        &WorkloadSpec {
            mode: Mode::Closed {
                clients: 4,
                think_nanos: 0,
            },
            ..base
        },
    )
    .unwrap();
    assert_eq!(single.results, multi.results, "client count changed values");

    let open = run_workload(
        &corpus,
        &WorkloadSpec {
            mode: Mode::Open {
                mean_interarrival_nanos: 0,
            },
            ..base
        },
    )
    .unwrap();
    assert_eq!(single.results, open.results, "pacing mode changed values");
    // Open loop and 1-client closed loop serve the identical stream on
    // one session, so even the digest chains coincide.
    assert_eq!(single.digest, open.digest);
}
