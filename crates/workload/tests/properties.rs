//! Property tests of the workload layer's determinism contract and the
//! histogram's quantile/merge algebra.

use lcs_workload::histogram::{bucket_bounds, bucket_index};
use lcs_workload::{generate_trace, LatencyHistogram, Mode, QueryMix, WorkloadSpec, ZipfSampler};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const THETAS: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

fn spec_from(
    seed: u64,
    queries: usize,
    theta_index: usize,
    weights: (u32, u32, u32, u32),
    repair: u32,
    open: bool,
) -> WorkloadSpec {
    let mix = QueryMix {
        construct: weights.0,
        verify: weights.1,
        quality: weights.2,
        mst: weights.3,
        repair,
    };
    let mode = if open {
        Mode::Open {
            mean_interarrival_nanos: 1000,
        }
    } else {
        Mode::Closed {
            clients: 3,
            think_nanos: 0,
        }
    };
    WorkloadSpec::new(mode, queries, THETAS[theta_index], mix, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed ⇒ byte-identical query trace, for any spec shape.
    #[test]
    fn same_seed_means_identical_trace(
        seed in 0u64..1_000_000,
        queries in 1usize..200,
        theta_index in 0usize..4,
        weights in (0u32..10, 0u32..10, 0u32..10, 1u32..10),
        repair_weight in 0u32..10,
        entries in 1usize..9,
        open_flag in 0u8..2,
    ) {
        let spec = spec_from(seed, queries, theta_index, weights, repair_weight, open_flag == 1);
        let a = generate_trace(&spec, entries).unwrap();
        let b = generate_trace(&spec, entries).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Mix fractions are respected *exactly* over a full trace: the
    /// per-kind counts equal the largest-remainder apportionment, sum to
    /// the trace length, and zero-weight kinds never appear.
    #[test]
    fn mix_fractions_exact_over_full_trace(
        seed in 0u64..1_000_000,
        queries in 1usize..300,
        weights in (0u32..20, 0u32..20, 0u32..20, 1u32..20),
        repair_weight in 0u32..20,
        entries in 1usize..6,
    ) {
        let spec = spec_from(seed, queries, 0, weights, repair_weight, false);
        let trace = generate_trace(&spec, entries).unwrap();
        prop_assert_eq!(trace.len(), queries);
        let mut got = [0usize; 5];
        for event in &trace {
            got[event.kind.index()] += 1;
        }
        prop_assert_eq!(got, spec.mix.counts(queries));
        let w = [weights.0, weights.1, weights.2, weights.3, repair_weight];
        for k in 0..5 {
            if w[k] == 0 {
                prop_assert_eq!(got[k], 0, "zero-weight kind {} appeared", k);
            }
        }
    }

    /// Zipf sampling frequencies are rank-ordered and match the analytic
    /// mass within sampling tolerance on small corpora.
    #[test]
    fn zipf_frequencies_match_analytic_mass(
        seed in 0u64..1_000_000,
        n in 2usize..8,
        theta_index in 0usize..4,
    ) {
        const DRAWS: usize = 20_000;
        let sampler = ZipfSampler::new(n, THETAS[theta_index]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..DRAWS {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Empirical frequency within ±0.03 of the analytic mass: the
        // binomial std-dev at 20k draws is <= 0.0036, so this is > 8
        // sigma — effectively never flaky, tight enough to catch an
        // off-by-one in the CDF inversion.
        for (rank, &count) in counts.iter().enumerate() {
            let freq = count as f64 / DRAWS as f64;
            let mass = sampler.mass(rank);
            prop_assert!(
                (freq - mass).abs() < 0.03,
                "rank {}: freq {:.4} vs mass {:.4}", rank, freq, mass
            );
        }
        // Rank order, with slack for sampling noise on near-equal masses.
        for rank in 1..n {
            prop_assert!(
                counts[rank - 1] + DRAWS / 25 >= counts[rank],
                "rank {} out of order: {} then {}", rank, counts[rank - 1], counts[rank]
            );
        }
    }
}

/// Expands compact (base, shift) pairs into values spanning the full
/// histogram range without needing a 64-bit strategy.
fn expand(values: &[(u64, u32)]) -> Vec<u64> {
    values.iter().map(|&(base, shift)| base << shift).collect()
}

fn histogram_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact quantile: smallest recorded value with at least ⌈q·n⌉
/// samples at or below it.
fn oracle_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let target = ((q * sorted.len() as f64).ceil() as usize)
        .max(1)
        .min(sorted.len());
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles agree with a sorted-Vec oracle up to bucket
    /// resolution: the reported value is >= the exact order statistic and
    /// lies in the same log-linear bucket.
    #[test]
    fn quantiles_match_sorted_vec_oracle(
        raw in proptest::collection::vec((0u64..1000, 0u32..45), 1..60),
        q_index in 0usize..4,
    ) {
        let q = [0.5, 0.95, 0.99, 1.0][q_index];
        let values = expand(&raw);
        let h = histogram_of(&values);
        let reported = h.quantile(q);
        let exact = oracle_quantile(&values, q);
        prop_assert!(reported >= exact, "reported {} < exact {}", reported, exact);
        prop_assert_eq!(
            bucket_index(reported),
            bucket_index(exact),
            "reported {} and exact {} in different buckets", reported, exact
        );
        let (_, high) = bucket_bounds(bucket_index(exact));
        prop_assert!(reported <= high.min(h.max()));
    }

    /// Merge is commutative and associative, and equals recording the
    /// concatenation directly.
    #[test]
    fn merge_is_associative_and_commutative(
        raw_a in proptest::collection::vec((0u64..500, 0u32..40), 0..30),
        raw_b in proptest::collection::vec((0u64..500, 0u32..40), 0..30),
        raw_c in proptest::collection::vec((0u64..500, 0u32..40), 0..30),
    ) {
        let (a, b, c) = (expand(&raw_a), expand(&raw_b), expand(&raw_c));
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        // Commutative: a+b == b+a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merging equals recording the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &histogram_of(&all));

        // Zero-count buckets never panic quantile extraction, merged or
        // not, empty or not.
        for h in [&ab_c, &LatencyHistogram::new()] {
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                let _ = h.quantile(q);
            }
        }
    }
}
