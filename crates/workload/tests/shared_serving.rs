//! Property test of the shared-session serving contract: M threads
//! hammering one `Session` through `serve_shared` must produce exactly
//! the digests a sequential `&mut self` replay produces — per trace
//! slot, not just as a multiset — across four graph families and both
//! engines (`Threads::Fixed(1)` and `Fixed(4)`).
//!
//! This is the concurrency half of the checkout-pool refactor's proof
//! obligation: workspace checkout order varies run to run under thread
//! scheduling, so any pool-identity leak into result values would show
//! up here as a digest mismatch.

use std::sync::OnceLock;

use lcs_api::{Pipeline, Threads};
use lcs_workload::{
    generate_trace, query_of, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec,
};
use proptest::prelude::*;

const FAMILIES: [Family; 4] = [Family::Grid, Family::Torus, Family::Random, Family::Wheel];
const ENGINES: [usize; 2] = [1, 4];

/// Corpora are expensive to build; share one per family across cases.
fn corpus(family_index: usize) -> &'static Corpus {
    static CORPORA: OnceLock<Vec<Corpus>> = OnceLock::new();
    &CORPORA.get_or_init(|| {
        FAMILIES
            .iter()
            .map(|&family| {
                Corpus::build(&CorpusSpec {
                    family,
                    size: 5,
                    entries: 3,
                    seed: 29,
                })
                .expect("corpus builds")
            })
            .collect()
    })[family_index]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hammering_one_shared_session_matches_sequential_replay(
        family_index in 0usize..4,
        engine_index in 0usize..2,
        hammers in 2usize..5,
        seed in 1u64..10_000,
    ) {
        let corpus = corpus(family_index);
        let spec = WorkloadSpec::new(
            Mode::Closed { clients: 1, think_nanos: 0 },
            24,
            1.0,
            QueryMix::mixed(),
            seed,
        );
        let trace = generate_trace(&spec, corpus.len()).unwrap();
        let mut session = Pipeline::on(corpus.graph())
            .seed(seed)
            .threads(Threads::Fixed(ENGINES[engine_index]))
            .build()
            .unwrap();

        // M threads round-robin the trace through `&self`.
        let mut concurrent = vec![0u64; trace.len()];
        {
            let session = &session;
            let trace = &trace;
            let slots: Vec<(usize, Vec<(usize, u64)>)> = std::thread::scope(|scope| {
                (0..hammers)
                    .map(|hammer| {
                        scope.spawn(move || {
                            (hammer, trace
                                .iter()
                                .enumerate()
                                .skip(hammer)
                                .step_by(hammers)
                                .map(|(slot, event)| {
                                    let served = session
                                        .serve_shared(query_of(corpus, event))
                                        .expect("shared serve succeeds");
                                    (slot, served.digest)
                                })
                                .collect())
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|handle| handle.join().expect("hammer thread panicked"))
                    .collect()
            });
            for (_, samples) in slots {
                for (slot, digest) in samples {
                    concurrent[slot] = digest;
                }
            }
        }

        // The same trace, sequentially, through the exclusive path.
        let sequential: Vec<u64> = trace
            .iter()
            .map(|event| session.serve(query_of(corpus, event)).unwrap().digest)
            .collect();

        prop_assert_eq!(concurrent, sequential);
    }
}
