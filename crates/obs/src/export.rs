//! Point-in-time snapshots of the registry and their exporters:
//! Prometheus text exposition, JSON (through the shared [`crate::json`]
//! writer), the deterministic counters-only text block, and a
//! human-readable span tree.

use crate::histogram::LatencyHistogram;
use crate::json;

/// A point-in-time copy of every metric, with names sorted. Produced by
/// [`crate::Metrics::snapshot`] / [`crate::Obs::snapshot`].
///
/// The **counter** half is the deterministic part: same inputs ⇒ same
/// bytes from [`MetricsSnapshot::counters_text`], across reruns and
/// across `LCS_THREADS` settings. Gauges and timers are measurements and
/// carry no such guarantee.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` timers, sorted by name.
    pub timers: Vec<(String, LatencyHistogram)>,
}

impl MetricsSnapshot {
    /// The counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// The gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// The timer `name`, if present.
    pub fn timer(&self, name: &str) -> Option<&LatencyHistogram> {
        lookup(&self.timers, name)
    }

    /// The deterministic half of the snapshot as text: one `name value`
    /// line per counter, sorted by name. Two runs of the same
    /// computation produce byte-identical output here no matter the
    /// thread count — "timings are measurements; counts are facts".
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// FNV-1a hash of [`MetricsSnapshot::counters_text`] — a one-number
    /// fingerprint of the deterministic half, printable in tables.
    pub fn counters_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.counters_text().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Serializes the whole snapshot as one JSON object through the
    /// shared writer: counters and gauges as `name:value` maps, timers
    /// as `name:histogram` with the histogram's own JSON shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        push_u64_members(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_u64_members(&mut out, &self.gauges);
        out.push_str("},\"timers\":{");
        for (i, (name, histogram)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json::escape(name));
            out.push_str("\":");
            out.push_str(&histogram.to_json());
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are derived from the '/'-separated paths by
    /// [`prometheus_name`] (prefix `lcs_`, separators to `_`); counters
    /// get the conventional `_total` suffix, timers become summaries
    /// with `quantile` labels plus `_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = format!("{}_total", prometheus_name(name));
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let metric = prometheus_name(name);
            out.push_str(&format!("# TYPE {metric} gauge\n{metric} {value}\n"));
        }
        for (name, histogram) in &self.timers {
            let metric = prometheus_name(name);
            out.push_str(&format!("# TYPE {metric} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{metric}{{quantile=\"{label}\"}} {}\n",
                    histogram.quantile(q)
                ));
            }
            out.push_str(&format!("{metric}_sum {}\n", histogram.sum()));
            out.push_str(&format!("{metric}_count {}\n", histogram.count()));
        }
        out
    }

    /// Renders the timers as an indented tree keyed on their
    /// '/'-separated paths — the quick "where did the time go" view.
    /// Each timer line shows total milliseconds, sample count, and mean
    /// microseconds; purely structural path segments print bare.
    pub fn span_tree(&self) -> String {
        let mut out = String::new();
        let mut printed: Vec<String> = Vec::new();
        for (path, histogram) in &self.timers {
            let segments: Vec<&str> = path.split('/').collect();
            // Print any not-yet-printed ancestor segments as bare labels.
            for depth in 0..segments.len() - 1 {
                let prefix = segments[..=depth].join("/");
                if !printed.contains(&prefix) {
                    out.push_str(&"  ".repeat(depth));
                    out.push_str(segments[depth]);
                    out.push('\n');
                    printed.push(prefix);
                }
            }
            let depth = segments.len() - 1;
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} {:.3} ms ({} samples, mean {:.1} us)\n",
                segments[depth],
                histogram.sum() as f64 / 1e6,
                histogram.count(),
                histogram.mean() / 1e3,
            ));
            printed.push(path.clone());
        }
        out
    }
}

fn push_u64_members(out: &mut String, entries: &[(String, u64)]) {
    for (i, (name, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json::escape(name));
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

/// Maps a '/'-separated metric path to a legal Prometheus metric name:
/// prefix `lcs_`, every character outside `[a-zA-Z0-9_:]` replaced by
/// `_`.
pub fn prometheus_name(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 4);
    out.push_str("lcs_");
    for ch in path.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::Obs;

    fn sample() -> MetricsSnapshot {
        let obs = Obs::recording();
        obs.counter_add("engine/rounds", 12);
        obs.counter_add("engine/messages", 90);
        obs.gauge_set("engine/shards", 4);
        obs.timer_record("engine/barrier_wait", 1500);
        obs.timer_record("engine/barrier_wait", 2500);
        obs.timer_record("serve/verify/latency", 1_000_000);
        obs.snapshot()
    }

    #[test]
    fn counters_text_is_sorted_and_stable() {
        let snapshot = sample();
        assert_eq!(
            snapshot.counters_text(),
            "engine/messages 90\nengine/rounds 12\n"
        );
        assert_eq!(snapshot.counters_digest(), sample().counters_digest());
    }

    #[test]
    fn lookup_accessors() {
        let snapshot = sample();
        assert_eq!(snapshot.counter("engine/rounds"), Some(12));
        assert_eq!(snapshot.counter("nope"), None);
        assert_eq!(snapshot.gauge("engine/shards"), Some(4));
        assert_eq!(snapshot.timer("engine/barrier_wait").unwrap().count(), 2);
    }

    #[test]
    fn json_export_parses_with_the_shared_reader() {
        let snapshot = sample();
        let parsed = JsonValue::parse(&snapshot.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("engine/rounds"))
                .and_then(JsonValue::as_u64),
            Some(12)
        );
        let timer = parsed
            .get("timers")
            .and_then(|t| t.get("engine/barrier_wait"))
            .expect("timer present");
        assert_eq!(timer.get("count").and_then(JsonValue::as_u64), Some(2));
        // An empty snapshot is still a valid document.
        assert!(JsonValue::parse(&MetricsSnapshot::default().to_json()).is_ok());
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            prometheus_name("engine/barrier_wait"),
            "lcs_engine_barrier_wait"
        );
        assert_eq!(
            prometheus_name("serve/verify/latency"),
            "lcs_serve_verify_latency"
        );
        assert_eq!(prometheus_name("weird name!"), "lcs_weird_name_");
    }

    #[test]
    fn prometheus_export_has_the_expected_series() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE lcs_engine_rounds_total counter\n"));
        assert!(text.contains("lcs_engine_rounds_total 12\n"));
        assert!(text.contains("# TYPE lcs_engine_shards gauge\n"));
        assert!(text.contains("lcs_engine_shards 4\n"));
        assert!(text.contains("# TYPE lcs_engine_barrier_wait summary\n"));
        assert!(text.contains("lcs_engine_barrier_wait{quantile=\"0.99\"}"));
        assert!(text.contains("lcs_engine_barrier_wait_sum 4000\n"));
        assert!(text.contains("lcs_engine_barrier_wait_count 2\n"));
    }

    #[test]
    fn span_tree_nests_by_path() {
        let tree = sample().span_tree();
        // "serve" is a structural segment, "verify" nests under it.
        assert!(tree.contains("serve\n"), "tree:\n{tree}");
        assert!(tree.contains("  verify\n"), "tree:\n{tree}");
        assert!(
            tree.contains("    latency 1.000 ms (1 samples"),
            "tree:\n{tree}"
        );
        assert!(
            tree.contains("barrier_wait 0.004 ms (2 samples"),
            "tree:\n{tree}"
        );
    }
}
