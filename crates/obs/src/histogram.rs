//! Fixed-bucket log-linear latency histogram with exact max tracking and
//! mergeable per-client sub-histograms.
//!
//! The layout is the classic HDR shape: values below 16 get one bucket
//! each (exact), and every octave above that is split into 16 linear
//! sub-buckets, so any recorded value lands in a bucket whose width is at
//! most 1/16 of its lower bound — quantiles are off by at most ~6%
//! relative, and the true maximum is tracked exactly on the side. The
//! bucket count is fixed at construction (976 buckets cover the full
//! `u64` range), so recording never allocates and merging is one
//! elementwise vector add — the properties the closed-loop workload
//! driver and the metrics registry both need to combine per-thread
//! histograms deterministically. (The type started life in
//! `lcs_workload`; it moved here so the registry's timers and the
//! workload's latency measurements are literally the same structure.)

const SUB_BUCKETS: u64 = 16;
/// Buckets 0..16 are linear; each of the 60 octaves `[2^o, 2^{o+1})` for
/// `o` in `4..64` contributes 16 more.
const BUCKETS: usize = 16 + 16 * 60;

/// Index of the bucket `value` falls into.
///
/// Exposed so tests (and the quantile oracle) can assert that a reported
/// quantile lands in the same bucket as the exact order statistic.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let octave = 63 - value.leading_zeros() as usize; // >= 4
        let sub = ((value >> (octave - 4)) & 15) as usize;
        16 * (octave - 3) + sub
    }
}

/// The `[low, high]` value range of bucket `index` (inclusive bounds).
///
/// # Panics
///
/// Panics if `index >= 976` (the fixed bucket count).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    let low = |i: usize| -> u64 {
        if i < 16 {
            i as u64
        } else {
            let octave = i / 16 + 3;
            let sub = (i % 16) as u64;
            (16 + sub) << (octave - 4)
        }
    };
    let high = if index + 1 < BUCKETS {
        low(index + 1) - 1
    } else {
        u64::MAX
    };
    (low(index), high)
}

/// A log-linear histogram of `u64` latency samples (nanoseconds, by
/// convention of the workload drivers — the type itself is unit-agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl LatencyHistogram {
    /// An empty histogram. All 976 buckets are preallocated; recording
    /// never allocates again.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The exact largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact sum of all recorded samples (a `u128`: 2^64 samples of
    /// `u64::MAX` cannot overflow it). The Prometheus exporter emits this
    /// as the `_sum` series.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The mean of all recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the recorded samples:
    /// the upper bound of the bucket holding the ⌈q·count⌉-th smallest
    /// sample, clamped to the exact maximum. The reported value is always
    /// ≥ the exact order statistic and lies in the same bucket, so the
    /// relative error is bounded by the bucket width (≤ 1/16 of the
    /// value). An empty histogram reports 0 — never a panic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64)
            .max(1)
            .min(self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// The p99.9 tail (`quantile(0.999)`). Server latency distributions
    /// hide their worst behaviour beyond p99 — a single slow connection in
    /// a thousand requests vanishes from p99 but dominates p99.9 — so the
    /// server layer reads this accessor. Existing table columns stay at
    /// p50/p95/p99; this is an additional probe, not a format change.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds `other` into `self` — one elementwise add, plus min/max/sum
    /// combination. Merge is associative and commutative, so per-client
    /// sub-histograms combine to the same totals in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Serializes the histogram as a JSON object: summary quantiles plus
    /// every nonzero bucket as `[low, high, count]` triples. Hand-rolled
    /// like every other serializer in this workspace — no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.min(),
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        ));
        let mut first = true;
        for (index, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let (low, high) = bucket_bounds(index);
            out.push_str(&format!("[{low},{high},{c}]"));
        }
        out.push_str("]}");
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // With one sample per value 0..16, the q-quantile bucket is exact.
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.quantile(0.5), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_roundtrip() {
        let mut previous = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = bucket_index(v);
            assert!(i >= previous, "index must be monotone in value");
            previous = i;
            let (low, high) = bucket_bounds(i);
            assert!(
                low <= v && v <= high,
                "value {v} outside bucket [{low},{high}]"
            );
            v = v.wrapping_mul(3).wrapping_add(7);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[17u64, 100, 999, 12_345, 1 << 30, (1 << 40) + 12345] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!((high - low) as f64 <= low as f64 / 16.0 + 1.0);
        }
    }

    #[test]
    fn empty_histogram_never_panics() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
        assert!(h.to_json().contains("\"buckets\":[]"));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(1 << 20);
        let snapshot = h.clone();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, snapshot);
        let mut empty = LatencyHistogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn quantile_is_clamped_to_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.5), 1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
    }

    #[test]
    fn json_lists_nonzero_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(3);
        h.record(3);
        h.record(40);
        let json = h.to_json();
        assert!(json.starts_with("{\"count\":3,"));
        assert!(json.contains("[3,3,2]"), "json: {json}");
    }

    /// Exact order-statistic oracle: the smallest recorded value with at
    /// least ⌈q·n⌉ samples at or below it.
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize)
            .max(1)
            .min(sorted.len());
        sorted[target - 1]
    }

    #[test]
    fn p999_matches_the_sorted_vec_oracle_within_a_bucket() {
        // A skewed distribution with a thin far tail: 998 fast samples
        // plus 2 outliers, so ⌈0.999·1000⌉ = 999 lands in the outliers.
        // p99 misses the outliers entirely; p99.9 must not.
        let mut h = LatencyHistogram::new();
        let mut samples = Vec::new();
        let mut x = 11u64;
        for _ in 0..998 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1_000 + x % 9_000; // 1µs..10µs
            h.record(v);
            samples.push(v);
        }
        for &outlier in &[5_000_000u64, 9_999_999] {
            h.record(outlier);
            samples.push(outlier);
        }
        samples.sort_unstable();
        for &(q, got) in &[
            (0.5, h.quantile(0.5)),
            (0.99, h.quantile(0.99)),
            (0.999, h.p999()),
        ] {
            let exact = oracle_quantile(&samples, q);
            let (low, high) = bucket_bounds(bucket_index(exact));
            assert!(
                (low..=high).contains(&got) || got == h.max(),
                "q={q}: reported {got} not in oracle bucket [{low},{high}]"
            );
            assert!(got >= exact, "q={q}: reported {got} below exact {exact}");
        }
        // The tail accessor actually sees the outliers.
        assert!(h.p999() >= 5_000_000, "p999 {} missed the tail", h.p999());
        assert!(
            h.quantile(0.99) < 5_000_000,
            "p99 should not reach the outliers"
        );
    }

    #[test]
    fn sum_tracks_exactly() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
    }
}
