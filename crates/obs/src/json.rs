//! The one hand-rolled JSON writer (and a minimal reader) for the whole
//! workspace.
//!
//! Before this module existed, three serializers each carried their own
//! private copy of the same escape loop: `Report::to_json` in `lcs_api`,
//! the experiments-table emitter in `lcs_bench`, and the workload
//! histogram. They now all call [`escape`] / [`push_str_field`] /
//! [`string_array`] from here, so the escaping rules cannot drift apart.
//! The build environment has no serde; the writer stays deliberately
//! string-based — every caller pins its exact output bytes in tests, and
//! a streaming writer would make those goldens harder to reason about.
//!
//! [`JsonValue`] is a minimal parser for round-trip tests and CI
//! assertions. Numbers are kept as their raw source text (not `f64`), so
//! 64-bit digests survive a parse/write round trip bit-exactly.

/// Escapes `s` for embedding inside a JSON string literal (without the
/// surrounding quotes): `"` and `\` are backslash-escaped, the common
/// control characters get their short forms, and every other control
/// character becomes a `\u00xx` escape.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends `"key":"value"` (both escaped) to `out`.
pub fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{}\":\"{}\"", escape(key), escape(value)));
}

/// Serializes a slice of strings as a JSON array of (escaped) string
/// literals: `["a","b"]`.
pub fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", escape(c))).collect();
    format!("[{}]", cells.join(","))
}

/// A parsed JSON value. Object member order is preserved; numbers keep
/// their raw token text so integers beyond 2^53 round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document. Trailing whitespace is allowed;
    /// trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// A human-readable description (with byte offset) of the first
    /// syntax error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes the value back to JSON text. Parsing the result yields
    /// an equal `JsonValue` (the round-trip property the tests pin).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(raw) => out.push_str(raw),
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Member lookup on an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
            // Validate the token by letting the std parser check it.
            if raw.parse::<f64>().is_err() {
                return Err(format!("malformed number {raw:?} at byte {start}"));
            }
            Ok(JsonValue::Number(raw.to_string()))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at offset {pos}", pos = *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|_| "invalid utf-8".to_string())?
        .char_indices();
    while let Some((offset, ch)) = chars.next() {
        match ch {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((u_offset, 'u')) => {
                    let hex_start = *pos + u_offset + 1;
                    let hex = bytes
                        .get(hex_start..hex_start + 4)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .ok_or_else(|| "truncated \\u escape".to_string())?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    out.push(char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?);
                    // Consume the 4 hex digits from the char iterator.
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                _ => return Err("bad escape sequence".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_matches_the_historical_writers() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\rc\td"), "a\\nb\\rc\\td");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn push_str_field_quotes_and_escapes() {
        let mut out = String::new();
        push_str_field(&mut out, "k", "v\"x");
        assert_eq!(out, "\"k\":\"v\\\"x\"");
    }

    #[test]
    fn string_array_shape() {
        let items = vec!["a".to_string(), "b\"c".to_string()];
        assert_eq!(string_array(&items), "[\"a\",\"b\\\"c\"]");
        assert_eq!(string_array(&[]), "[]");
    }

    #[test]
    fn parse_round_trips_all_value_kinds() {
        let doc = "{\"null\":null,\"flag\":true,\"off\":false,\"n\":-12.5e3,\
                   \"big\":18446744073709551557,\"s\":\"a\\\"b\\n\",\"arr\":[1,[],{}],\
                   \"obj\":{\"nested\":[null]}}";
        let parsed = JsonValue::parse(doc).unwrap();
        let rewritten = parsed.write();
        assert_eq!(JsonValue::parse(&rewritten).unwrap(), parsed);
        // Big integers survive bit-exactly because numbers keep raw text.
        assert_eq!(
            parsed.get("big").and_then(JsonValue::as_u64),
            Some(18446744073709551557)
        );
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_syntax_errors() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let parsed = JsonValue::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(parsed.as_str(), Some("Aé"));
    }

    #[test]
    fn get_walks_objects() {
        let parsed = JsonValue::parse("{\"a\":{\"b\":7}}").unwrap();
        let b = parsed.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(b.as_u64(), Some(7));
        assert_eq!(parsed.get("missing"), None);
    }
}
