//! Zero-overhead-when-off instrumentation for the low-congestion-shortcuts
//! workspace.
//!
//! The crate sits at the bottom of the dependency graph (it depends on
//! nothing, not even `lcs_graph`) so every layer — the CONGEST engines,
//! the distributed protocols, the session façade, the workload drivers,
//! the bench tables — can report through the same registry. Three design
//! rules govern everything here:
//!
//! 1. **Off means off.** The handle threaded through the layers is
//!    [`Obs`], a clonable wrapper around `Option<Arc<Metrics>>`. When the
//!    option is `None` every probe is a single predictable branch, no
//!    allocation, no clock read, no lock — disabled builds are
//!    byte-identical in output and within noise in time.
//! 2. **Counts are facts; timings are measurements.** Counters hold only
//!    thread-invariant quantities (rounds, messages, bits, polls, query
//!    counts), so the counter half of a [`MetricsSnapshot`] is
//!    byte-identical across reruns and across `LCS_THREADS` settings.
//!    Everything shape- or clock-dependent lives in gauges (shard splits,
//!    staging volumes) or timer histograms (barrier waits, latencies).
//! 3. **The hot path stays lock-free.** Worker threads record into plain
//!    local buffers ([`SpanBuffer`], or their own
//!    [`LatencyHistogram`]s) that the coordinator merges into the
//!    registry at phase boundaries, in deterministic (shard/client)
//!    order.
//!
//! The [`json`] module is the one hand-rolled JSON writer shared by
//! `Report::to_json`, the experiments-table emitter, and the histogram
//! serializer — plus a minimal parser so round-trips are testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod json;
pub mod metrics;

pub use export::MetricsSnapshot;
pub use histogram::{bucket_bounds, bucket_index, LatencyHistogram};
pub use metrics::{Metrics, NoopRecorder, Obs, Recorder, SpanBuffer, SpanGuard};
