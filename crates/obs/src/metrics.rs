//! The recorder trait, the in-memory metrics registry, and the cheap
//! clonable [`Obs`] handle the rest of the workspace threads around.
//!
//! Three metric kinds, split by determinism contract:
//!
//! * **Counters** — monotone `u64` sums of thread-invariant facts
//!   (rounds, messages, bits, node polls, query counts). Counter
//!   increments commute, so the final counter table is identical no
//!   matter how worker threads interleave — the counter half of a
//!   snapshot is byte-identical across reruns and `LCS_THREADS`
//!   settings, and tests assert exactly that.
//! * **Gauges** — last-written (or max-folded) `u64`s for shape- and
//!   configuration-dependent values (shard count, per-shard splits,
//!   staging volumes). A gauge may legitimately differ between thread
//!   counts; that is why it is not a counter.
//! * **Timers** — [`LatencyHistogram`]s of measured nanoseconds
//!   (barrier waits, per-query latency, span durations). Timings are
//!   measurements, never facts.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export::MetricsSnapshot;
use crate::histogram::LatencyHistogram;

/// The sink interface every probe writes through.
///
/// Implementations must tolerate concurrent calls (`&self` receivers);
/// the registry serializes internally, the noop does nothing at all.
pub trait Recorder {
    /// Adds `delta` to the counter `name` (creating it at 0).
    fn counter_add(&self, name: &str, delta: u64);
    /// Sets the gauge `name` to `value`, overwriting any previous value.
    fn gauge_set(&self, name: &str, value: u64);
    /// Folds `value` into the gauge `name` with max semantics.
    fn gauge_max(&self, name: &str, value: u64);
    /// Records one `nanos` sample into the timer `name`.
    fn timer_record(&self, name: &str, nanos: u64);
    /// Merges a whole pre-aggregated histogram into the timer `name` —
    /// the phase-boundary path for per-thread buffers.
    fn timer_merge(&self, name: &str, histogram: &LatencyHistogram);
}

/// A recorder that records nothing. Every method body is empty and
/// `#[inline(always)]`, so probes against it compile to nothing — the
/// "off" configuration costs exactly one `Option` branch in [`Obs`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn counter_add(&self, _name: &str, _delta: u64) {}
    #[inline(always)]
    fn gauge_set(&self, _name: &str, _value: u64) {}
    #[inline(always)]
    fn gauge_max(&self, _name: &str, _value: u64) {}
    #[inline(always)]
    fn timer_record(&self, _name: &str, _nanos: u64) {}
    #[inline(always)]
    fn timer_merge(&self, _name: &str, _histogram: &LatencyHistogram) {}
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    timers: BTreeMap<String, LatencyHistogram>,
}

/// The in-memory metrics registry: named counters, gauges, and timer
/// histograms behind one mutex.
///
/// The mutex is deliberate, not incidental: probes on engine hot paths
/// never touch the registry directly — they accumulate into plain local
/// fields or a [`SpanBuffer`] and merge here at phase boundaries, so the
/// lock is taken a handful of times per run, not per message.
/// `BTreeMap` keys give every exporter a deterministic (sorted) order
/// for free.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Registry>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// A point-in-time copy of every metric, with names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            timers: inner
                .timers
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

impl Recorder for Metrics {
    fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(slot) = inner.counters.get_mut(name) {
            *slot += delta;
        } else {
            inner.counters.insert(name.to_string(), delta);
        }
    }

    fn gauge_set(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(slot) = inner.gauges.get_mut(name) {
            *slot = (*slot).max(value);
        } else {
            inner.gauges.insert(name.to_string(), value);
        }
    }

    fn timer_record(&self, name: &str, nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(slot) = inner.timers.get_mut(name) {
            slot.record(nanos);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(nanos);
            inner.timers.insert(name.to_string(), h);
        }
    }

    fn timer_merge(&self, name: &str, histogram: &LatencyHistogram) {
        if histogram.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(slot) = inner.timers.get_mut(name) {
            slot.merge(histogram);
        } else {
            inner.timers.insert(name.to_string(), histogram.clone());
        }
    }
}

/// The handle every instrumented layer carries: either off (`None`
/// inside — the default) or a shared reference to one [`Metrics`]
/// registry.
///
/// Cloning is a refcount bump; every probe method first checks the
/// option, so an off handle costs one predictable branch per probe and
/// performs no allocation, clock read, or locking. Code that would pay
/// to *prepare* a probe (formatting a name, reading a clock) should gate
/// on [`Obs::is_on`] first.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Metrics>>,
}

impl Obs {
    /// The disabled handle. Identical to `Obs::default()`.
    pub fn off() -> Self {
        Obs { inner: None }
    }

    /// A handle recording into a fresh registry.
    pub fn recording() -> Self {
        Obs {
            inner: Some(Arc::new(Metrics::new())),
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(metrics) = &self.inner {
            metrics.counter_add(name, delta);
        }
    }

    /// Sets the gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: u64) {
        if let Some(metrics) = &self.inner {
            metrics.gauge_set(name, value);
        }
    }

    /// Folds `value` into the gauge `name` with max semantics.
    #[inline]
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(metrics) = &self.inner {
            metrics.gauge_max(name, value);
        }
    }

    /// Records one `nanos` sample into the timer `name`.
    #[inline]
    pub fn timer_record(&self, name: &str, nanos: u64) {
        if let Some(metrics) = &self.inner {
            metrics.timer_record(name, nanos);
        }
    }

    /// Merges a pre-aggregated histogram into the timer `name`.
    #[inline]
    pub fn timer_merge(&self, name: &str, histogram: &LatencyHistogram) {
        if let Some(metrics) = &self.inner {
            metrics.timer_merge(name, histogram);
        }
    }

    /// Opens a timing span for `path` ('/'-separated for hierarchy); the
    /// elapsed nanoseconds are recorded into the timer `path` when the
    /// returned guard drops. On an off handle the guard never reads the
    /// clock. Prefer the [`crate::span!`] macro at call sites.
    pub fn span(&self, path: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            obs: self,
            path,
            start: self.is_on().then(Instant::now),
        }
    }

    /// Drains a per-thread [`SpanBuffer`] into the registry. Callers
    /// merge buffers at phase boundaries in a deterministic order
    /// (shard 0, 1, …; client 0, 1, …) — histogram merge commutes, the
    /// convention just keeps merge order legible in one place.
    pub fn merge_spans(&self, buffer: &mut SpanBuffer) {
        if let Some(metrics) = &self.inner {
            for (path, nanos) in buffer.entries.drain(..) {
                metrics.timer_record(path, nanos);
            }
        } else {
            buffer.entries.clear();
        }
    }

    /// A snapshot of the registry; empty when the handle is off.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(metrics) => metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

/// An open span: records its elapsed time into `path` on drop. Created
/// by [`Obs::span`] / the [`crate::span!`] macro.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    path: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.obs
                .timer_record(self.path, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a hierarchical timing span on an [`Obs`] handle:
/// `let _span = obs::span!(handle, "verification/flood");`
/// The span ends (and records) when the guard drops.
#[macro_export]
macro_rules! span {
    ($obs:expr, $path:expr) => {
        $crate::Obs::span(&$obs, $path)
    };
}

/// A plain per-thread buffer of `(span path, nanos)` samples. Worker
/// threads on the engine hot path record here without any
/// synchronization; the coordinator merges buffers into the registry
/// with [`Obs::merge_spans`] at phase boundaries.
#[derive(Debug, Clone, Default)]
pub struct SpanBuffer {
    entries: Vec<(&'static str, u64)>,
}

impl SpanBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        SpanBuffer::default()
    }

    /// Appends one sample.
    pub fn record(&mut self, path: &'static str, nanos: u64) {
        self.entries.push((path, nanos));
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing_and_snapshots_empty() {
        let obs = Obs::off();
        obs.counter_add("c", 1);
        obs.gauge_set("g", 2);
        obs.gauge_max("g", 3);
        obs.timer_record("t", 4);
        {
            let _span = span!(obs, "s");
        }
        let snapshot = obs.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.timers.is_empty());
        assert!(!obs.is_on());
        assert_eq!(snapshot.counters_text(), "");
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let obs = Obs::recording();
        obs.counter_add("b", 2);
        obs.counter_add("a", 1);
        obs.counter_add("b", 3);
        let snapshot = obs.snapshot();
        assert_eq!(
            snapshot.counters,
            vec![("a".to_string(), 1), ("b".to_string(), 5)]
        );
        assert_eq!(snapshot.counters_text(), "a 1\nb 5\n");
    }

    #[test]
    fn gauges_overwrite_and_max() {
        let obs = Obs::recording();
        obs.gauge_set("g", 10);
        obs.gauge_set("g", 4);
        obs.gauge_max("m", 1);
        obs.gauge_max("m", 9);
        obs.gauge_max("m", 5);
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.gauge("g"), Some(4));
        assert_eq!(snapshot.gauge("m"), Some(9));
        assert_eq!(snapshot.gauge("missing"), None);
    }

    #[test]
    fn spans_record_into_timers() {
        let obs = Obs::recording();
        {
            let _span = span!(obs, "phase/work");
        }
        let snapshot = obs.snapshot();
        let timer = snapshot.timer("phase/work").expect("span recorded");
        assert_eq!(timer.count(), 1);
    }

    #[test]
    fn span_buffers_merge_and_drain() {
        let obs = Obs::recording();
        let mut buffer = SpanBuffer::new();
        buffer.record("engine/barrier_wait", 100);
        buffer.record("engine/barrier_wait", 300);
        assert_eq!(buffer.len(), 2);
        obs.merge_spans(&mut buffer);
        assert!(buffer.is_empty());
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.timer("engine/barrier_wait").unwrap().count(), 2);
        // Off handles still drain the buffer so it can be reused.
        let mut buffer = SpanBuffer::new();
        buffer.record("x", 1);
        Obs::off().merge_spans(&mut buffer);
        assert!(buffer.is_empty());
    }

    #[test]
    fn timer_merge_folds_histograms() {
        let obs = Obs::recording();
        let mut client = LatencyHistogram::new();
        client.record(5);
        client.record(7);
        obs.timer_merge("workload/latency", &client);
        obs.timer_merge("workload/latency", &client);
        obs.timer_merge("workload/latency", &LatencyHistogram::new());
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.timer("workload/latency").unwrap().count(), 4);
    }

    #[test]
    fn counter_merge_order_is_irrelevant() {
        // Counter adds commute: interleaving across threads cannot change
        // the snapshot — the property the cross-thread determinism suite
        // relies on.
        let a = Obs::recording();
        let b = Obs::recording();
        for (first, second) in [(&a, &b), (&b, &a)] {
            first.counter_add("x", 3);
            second.counter_add("y", 1);
            second.counter_add("x", 2);
            first.counter_add("y", 4);
        }
        assert_eq!(a.snapshot().counters_text(), b.snapshot().counters_text());
    }

    #[test]
    fn noop_recorder_is_callable_through_the_trait() {
        let noop = NoopRecorder;
        noop.counter_add("c", 1);
        noop.gauge_set("g", 1);
        noop.gauge_max("g", 1);
        noop.timer_record("t", 1);
        noop.timer_merge("t", &LatencyHistogram::new());
    }
}
