//! Observability invariants of the round engines: the counters a recording
//! [`lcs_obs::Obs`] collects are *facts* about the execution — byte-identical
//! across shard counts — and the per-shard gauge splits fold back to exactly
//! the `SimStats` the run returned. Both engines report through the shared
//! `record_run` helper, so a drift between the stats plane and the metrics
//! plane is a bug this suite pins.

use lcs_congest::{Incoming, NodeContext, NodeProtocol, Outgoing, SimConfig, Simulator};
use lcs_graph::{generators, Graph};
use lcs_obs::Obs;

/// One of the generator families (the same four the determinism suite uses).
fn family_graph(which: usize, size: usize, seed: u64) -> Graph {
    match which % 4 {
        0 => generators::grid(size, size),
        1 => generators::torus(size, size),
        2 => generators::caterpillar(4 * size, 2),
        _ => generators::random_connected(size * size, size * size, seed),
    }
}

/// A small multi-round wave: every node floods a token once, relays the
/// first token it hears with a node-dependent delay. Enough chatter to make
/// the message/bit/poll counters nontrivial on every family.
#[derive(Debug, Clone)]
struct Wave {
    id: usize,
    pending: Option<(u64, u32)>,
    relayed: bool,
}

impl NodeProtocol for Wave {
    type Message = u32;

    fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<u32>> {
        if self.id.is_multiple_of(2) {
            ctx.neighbor_ids()
                .iter()
                .map(|&v| Outgoing::new(v, self.id as u32))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: u64,
        incoming: &[Incoming<u32>],
    ) -> Vec<Outgoing<u32>> {
        if !self.relayed && self.pending.is_none() {
            if let Some(msg) = incoming.first() {
                self.pending = Some((round + 1 + (self.id as u64 % 3), msg.msg));
            }
        }
        if let Some((due, token)) = self.pending {
            if round >= due {
                self.pending = None;
                self.relayed = true;
                if ctx.degree() > 0 {
                    let k = self.id % ctx.degree();
                    return vec![Outgoing::new(ctx.neighbor_ids()[k], token)];
                }
            }
        }
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.pending.is_none()
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        self.pending.map(|(due, _)| due.max(now + 1))
    }
}

/// Runs the wave with a recording handle and returns `(stats, snapshot)`.
fn run_recorded(
    graph: &Graph,
    threads: usize,
) -> (lcs_congest::SimStats, lcs_obs::MetricsSnapshot) {
    let obs = Obs::recording();
    let sim = Simulator::new(graph, SimConfig::for_graph(graph).with_threads(threads))
        .with_recorder(obs.clone());
    let outcome = sim
        .run(|ctx| Wave {
            id: ctx.node.index(),
            pending: None,
            relayed: false,
        })
        .expect("the wave protocol respects the CONGEST constraints");
    (outcome.stats, obs.snapshot())
}

/// The per-shard gauge splits fold to exactly the returned `SimStats` (and
/// the `engine/polls` counter), for every family and shard count.
#[test]
fn shard_gauges_fold_to_sim_stats() {
    for which in 0..4 {
        let graph = family_graph(which, 5, 11 + which as u64);
        for threads in [1usize, 2, 3, 8] {
            let (stats, snap) = run_recorded(&graph, threads);
            let shards = snap.gauge("engine/shards").expect("shard count gauge") as usize;
            assert!(shards >= 1, "family {which} threads {threads}");
            let fold = |what: &str| -> u64 {
                (0..shards)
                    .map(|id| {
                        snap.gauge(&format!("engine/shard/{id}/{what}"))
                            .unwrap_or_else(|| panic!("missing shard {id} gauge {what}"))
                    })
                    .sum()
            };
            assert_eq!(
                fold("messages"),
                stats.messages,
                "family {which} threads {threads}"
            );
            assert_eq!(
                fold("bits"),
                stats.total_bits,
                "family {which} threads {threads}"
            );
            assert_eq!(
                Some(fold("polls")),
                snap.counter("engine/polls"),
                "family {which} threads {threads}"
            );
            assert_eq!(snap.counter("engine/runs"), Some(1));
            assert_eq!(snap.counter("engine/rounds"), Some(stats.rounds));
            assert_eq!(snap.counter("engine/messages"), Some(stats.messages));
            assert_eq!(snap.counter("engine/bits"), Some(stats.total_bits));
            assert_eq!(
                snap.gauge("engine/max_message_bits"),
                Some(stats.max_message_bits as u64)
            );
        }
    }
}

/// The counter half of the snapshot is byte-identical across shard counts:
/// counters record thread-invariant facts, never shard-shape.
#[test]
fn counters_are_byte_identical_across_shard_counts() {
    for which in 0..4 {
        let graph = family_graph(which, 5, 23 + which as u64);
        let (_, reference) = run_recorded(&graph, 1);
        let reference_text = reference.counters_text();
        assert!(!reference_text.is_empty());
        for threads in [2usize, 3, 8] {
            let (_, snap) = run_recorded(&graph, threads);
            assert_eq!(
                snap.counters_text(),
                reference_text,
                "family {which} threads {threads}"
            );
            assert_eq!(snap.counters_digest(), reference.counters_digest());
        }
    }
}
