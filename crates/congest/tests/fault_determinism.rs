//! Determinism-under-faults properties: a seeded [`FaultPlan`] must
//! produce byte-identical `SimStats`, `RoundTrace` sequences, and final
//! node states for every shard count — fault draws are keyed by
//! (plan, edge/slot/node, round), never by which thread executes them —
//! and a plan with every knob at zero must be indistinguishable from no
//! plan at all.

use proptest::prelude::*;

use lcs_congest::{
    FaultPlan, Incoming, NodeContext, NodeProtocol, Outgoing, SimConfig, SimOutcome, Simulator,
};
use lcs_graph::{generators, Graph};

/// One of the generator families.
fn family_graph(which: usize, size: usize, seed: u64) -> Graph {
    match which % 4 {
        0 => generators::grid(size, size),
        1 => generators::torus(size, size),
        2 => generators::caterpillar(4 * size, 2),
        _ => generators::random_connected(size * size, size * size, seed),
    }
}

/// The gnarly token-relay protocol from `determinism.rs`, reused here
/// because it exercises every scheduling feature the fault layer must
/// reroute: multi-round chatter, timed wake-ups, and nodes going
/// quiescent and being woken again.
#[derive(Debug, Clone)]
struct DelayedRelay {
    id: usize,
    relays_left: u32,
    received: u64,
    checksum: u64,
    pending: Option<(u64, u32)>,
}

impl DelayedRelay {
    fn new(id: usize, relays: u32) -> Self {
        DelayedRelay {
            id,
            relays_left: relays,
            received: 0,
            checksum: 0,
            pending: None,
        }
    }
}

impl NodeProtocol for DelayedRelay {
    type Message = (u32, u32);

    fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<(u32, u32)>> {
        if self.id.is_multiple_of(3) {
            ctx.neighbor_ids()
                .iter()
                .map(|&v| Outgoing::new(v, (self.id as u32, 0)))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: u64,
        incoming: &[Incoming<(u32, u32)>],
    ) -> Vec<Outgoing<(u32, u32)>> {
        for msg in incoming {
            self.received += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(31)
                .wrapping_add(u64::from(msg.msg.0) ^ (round << 7) ^ msg.from.index() as u64);
            if self.pending.is_none() && self.relays_left > 0 && msg.msg.1 < 6 {
                let delay = 1 + (self.id as u64 % 4);
                self.pending = Some((round + delay, msg.msg.1 + 1));
            }
        }
        if let Some((due, hops)) = self.pending {
            if round >= due {
                self.pending = None;
                self.relays_left = self.relays_left.saturating_sub(1);
                let k = (self.id + hops as usize) % ctx.degree().max(1);
                if ctx.degree() > 0 {
                    return vec![Outgoing::new(ctx.neighbor_ids()[k], (self.id as u32, hops))];
                }
            }
        }
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.pending.is_none()
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        self.pending.map(|(due, _)| due.max(now + 1))
    }
}

fn run_faulty(
    graph: &Graph,
    threads: usize,
    relays: u32,
    fault: Option<FaultPlan>,
) -> SimOutcome<DelayedRelay> {
    let mut config = SimConfig::for_graph(graph)
        .with_trace()
        .with_threads(threads);
    // Latency and straggler schedules stretch the round count well past
    // the fault-free budget; the sweep below stays tiny, so a flat cap is
    // plenty (satellite: the budget must scale with the plan, which the
    // dist layer does via `FaultPlan::round_stretch`).
    config.max_rounds = 200_000;
    if let Some(plan) = fault {
        config = config.with_fault(plan);
    }
    let sim = Simulator::new(graph, config);
    sim.run(|ctx| DelayedRelay::new(ctx.node.index(), relays))
        .expect("the relay protocol respects the CONGEST constraints")
}

fn assert_same(a: &SimOutcome<DelayedRelay>, b: &SimOutcome<DelayedRelay>) {
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.trace, b.trace);
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.received, y.received);
        assert_eq!(x.checksum, y.checksum);
        assert_eq!(x.relays_left, y.relays_left);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A seeded plan with every fault class live produces identical
    /// outcomes on the serial engine and on every shard count.
    #[test]
    fn faulty_run_is_shard_count_invariant(
        which in 0usize..4,
        size in 3usize..6,
        relays in 1u32..3,
        seed in 0u64..100,
        fault_seed in 0u64..100,
        latency in 0u32..3,
        loss_idx in 0usize..3,
        dup_idx in 0usize..2,
        crashes in 0u32..3,
        restart_idx in 0usize..2,
    ) {
        let loss_ppm = [0u32, 20_000, 120_000][loss_idx];
        let dup_ppm = [0u32, 50_000][dup_idx];
        let restart_after = [0u64, 5][restart_idx];
        let graph = family_graph(which, size, seed);
        let plan = FaultPlan::new(fault_seed)
            .with_latency(latency)
            .with_loss_ppm(loss_ppm)
            .with_dup_ppm(dup_ppm)
            .with_stragglers(200_000, 1 + (fault_seed as u32 % 3))
            .with_crashes(crashes, 3, restart_after);
        let reference = run_faulty(&graph, 1, relays, Some(plan));
        for threads in [2usize, 3, 8] {
            let outcome = run_faulty(&graph, threads, relays, Some(plan));
            assert_same(&outcome, &reference);
        }
        // Reruns of the same plan are byte-identical too.
        let rerun = run_faulty(&graph, 4, relays, Some(plan));
        assert_same(&rerun, &reference);
    }

    /// A plan with all knobs at zero is exactly the fault-free run, on
    /// both engines.
    #[test]
    fn zero_knob_plan_matches_fault_free(
        which in 0usize..4,
        size in 3usize..7,
        relays in 1u32..4,
        seed in 0u64..100,
    ) {
        let graph = family_graph(which, size, seed);
        let plan = FaultPlan::new(seed ^ 0xdead);
        prop_assert!(!plan.active());
        for threads in [1usize, 4] {
            let plain = run_faulty(&graph, threads, relays, None);
            let zeroed = run_faulty(&graph, threads, relays, Some(plan));
            assert_same(&zeroed, &plain);
        }
    }
}

/// Loss shrinks deliveries without touching the send count; duplication
/// grows deliveries the same way. `SimStats::messages` counts sends.
#[test]
fn loss_and_duplication_move_deliveries_not_sends() {
    let graph = generators::grid(6, 6);
    let plain = run_faulty(&graph, 1, 2, None);
    let sends: u64 = plain.stats.messages;
    let delivered = |o: &SimOutcome<DelayedRelay>| o.trace.iter().map(|t| t.messages).sum::<u64>();
    assert_eq!(delivered(&plain), sends);

    let lossy = run_faulty(&graph, 1, 2, Some(FaultPlan::new(7).with_loss_ppm(400_000)));
    assert!(
        delivered(&lossy) < lossy.stats.messages,
        "40% loss must drop some deliveries"
    );

    let dupped = run_faulty(&graph, 1, 2, Some(FaultPlan::new(7).with_dup_ppm(400_000)));
    assert!(
        delivered(&dupped) > dupped.stats.messages,
        "40% duplication must add extra deliveries"
    );
}

/// A permanently crashed node receives nothing and sends nothing after
/// its crash round; with a restart it comes back with cleared state.
#[test]
fn crash_without_restart_silences_the_node() {
    let graph = generators::grid(5, 5);
    let crashed = run_faulty(&graph, 1, 2, Some(FaultPlan::new(3).with_crashes(2, 1, 0)));
    let plain = run_faulty(&graph, 1, 2, None);
    let total = |o: &SimOutcome<DelayedRelay>| o.nodes.iter().map(|n| n.received).sum::<u64>();
    assert!(total(&crashed) < total(&plain), "crashes must drop mail");

    let restarted = run_faulty(&graph, 1, 2, Some(FaultPlan::new(3).with_crashes(2, 1, 4)));
    // The restarted run is also deterministic across engines.
    let restarted_sharded = run_faulty(&graph, 3, 2, Some(FaultPlan::new(3).with_crashes(2, 1, 4)));
    assert_same(&restarted, &restarted_sharded);
}

/// Latency defers deliveries: with extra latency on the wire the run
/// takes strictly more rounds on a path graph, but every message still
/// arrives (no loss, no crash).
#[test]
fn latency_inflates_rounds_but_loses_nothing() {
    let graph = generators::caterpillar(20, 2);
    let plain = run_faulty(&graph, 1, 2, None);
    let slow = run_faulty(&graph, 1, 2, Some(FaultPlan::new(11).with_latency(3)));
    assert!(slow.stats.rounds > plain.stats.rounds);
    // Arrival timing changes what the protocol does (so send counts can
    // differ from the fault-free run), but nothing on the wire is lost:
    // every send of the faulty run is delivered.
    let delivered = |o: &SimOutcome<DelayedRelay>| o.trace.iter().map(|t| t.messages).sum::<u64>();
    assert_eq!(delivered(&slow), slow.stats.messages);
}
