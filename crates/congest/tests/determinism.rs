//! Engine-determinism properties: on randomized instances across the four
//! generator families, the sharded engine must reproduce the serial
//! engine's `SimStats`, `RoundTrace` sequence, and final node states for
//! every shard count — including protocols that sleep on
//! [`NodeProtocol::next_wake`] timers, the scheduling feature with the most
//! cross-shard coordination surface.

use proptest::prelude::*;

use lcs_congest::{
    Incoming, NodeContext, NodeProtocol, Outgoing, SimConfig, SimOutcome, Simulator,
};
use lcs_graph::{generators, Graph, NodeId};

/// One of the generator families.
fn family_graph(which: usize, size: usize, seed: u64) -> Graph {
    match which % 4 {
        0 => generators::grid(size, size),
        1 => generators::torus(size, size),
        2 => generators::caterpillar(4 * size, 2),
        _ => generators::random_connected(size * size, size * size, seed),
    }
}

/// A deliberately gnarly protocol: every node starts a token wave, relays
/// arriving tokens with a node-dependent delay (sleeping on `next_wake`
/// until the relay round), and retires after a bounded number of relays.
/// Exercises multi-round chatter, timed wake-ups, nodes going quiescent and
/// being woken again — with per-node counters the determinism assertions
/// can compare bit for bit.
#[derive(Debug, Clone)]
struct DelayedRelay {
    id: usize,
    relays_left: u32,
    received: u64,
    checksum: u64,
    /// Pending relay: (due round, hop count of the token).
    pending: Option<(u64, u32)>,
}

impl DelayedRelay {
    fn new(id: usize, relays: u32) -> Self {
        DelayedRelay {
            id,
            relays_left: relays,
            received: 0,
            checksum: 0,
            pending: None,
        }
    }
}

impl NodeProtocol for DelayedRelay {
    type Message = (u32, u32);

    fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<(u32, u32)>> {
        // Every third node seeds a wave towards all neighbors.
        if self.id.is_multiple_of(3) {
            ctx.neighbor_ids()
                .iter()
                .map(|&v| Outgoing::new(v, (self.id as u32, 0)))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: u64,
        incoming: &[Incoming<(u32, u32)>],
    ) -> Vec<Outgoing<(u32, u32)>> {
        for msg in incoming {
            self.received += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(31)
                .wrapping_add(u64::from(msg.msg.0) ^ (round << 7) ^ msg.from.index() as u64);
            // Adopt the first token of the round as the relay candidate.
            if self.pending.is_none() && self.relays_left > 0 && msg.msg.1 < 6 {
                let delay = 1 + (self.id as u64 % 4);
                self.pending = Some((round + delay, msg.msg.1 + 1));
            }
        }
        if let Some((due, hops)) = self.pending {
            if round >= due {
                self.pending = None;
                self.relays_left = self.relays_left.saturating_sub(1);
                // Relay to the cyclically next neighbor only: keeps the
                // bandwidth budget honest and makes delivery patterns
                // depend on the timing, which is what we want to pin.
                let k = (self.id + hops as usize) % ctx.degree().max(1);
                if ctx.degree() > 0 {
                    return vec![Outgoing::new(ctx.neighbor_ids()[k], (self.id as u32, hops))];
                }
            }
        }
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.pending.is_none()
    }

    fn next_wake(&self, now: u64) -> Option<u64> {
        // Sleep until the pending relay is due (the timed-wake path the
        // sharded engine must merge per shard).
        self.pending.map(|(due, _)| due.max(now + 1))
    }
}

fn run_with_threads(graph: &Graph, threads: usize, relays: u32) -> SimOutcome<DelayedRelay> {
    let sim = Simulator::new(
        graph,
        SimConfig::for_graph(graph)
            .with_trace()
            .with_threads(threads),
    );
    sim.run(|ctx| DelayedRelay::new(ctx.node.index(), relays))
        .expect("the relay protocol respects the CONGEST constraints")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Serial and sharded engines agree on stats, traces, and every
    /// per-node counter, for shard counts {1, 2, 3, 8}.
    #[test]
    fn sharded_engine_is_deterministic(
        which in 0usize..4,
        size in 3usize..7,
        relays in 1u32..4,
        seed in 0u64..200,
    ) {
        let graph = family_graph(which, size, seed);
        let reference = run_with_threads(&graph, 1, relays);
        for threads in [2usize, 3, 8] {
            let outcome = run_with_threads(&graph, threads, relays);
            prop_assert_eq!(outcome.stats, reference.stats);
            prop_assert_eq!(&outcome.trace, &reference.trace);
            for (a, b) in outcome.nodes.iter().zip(&reference.nodes) {
                prop_assert_eq!(a.received, b.received);
                prop_assert_eq!(a.checksum, b.checksum);
                prop_assert_eq!(a.relays_left, b.relays_left);
            }
        }
    }

    /// The BFS primitive (message-driven, no timers) is engine-agnostic on
    /// every family.
    #[test]
    fn bfs_primitive_is_engine_agnostic(
        which in 0usize..4,
        size in 3usize..8,
        seed in 0u64..200,
    ) {
        use lcs_congest::primitives::DistributedBfs;
        let graph = family_graph(which, size, seed);
        let root = NodeId::new(seed as usize % graph.node_count());
        let serial = Simulator::new(&graph, SimConfig::for_graph(&graph).with_threads(1));
        let reference = DistributedBfs::run(&serial, root).unwrap();
        for threads in [2usize, 3, 8] {
            let sim = Simulator::new(&graph, SimConfig::for_graph(&graph).with_threads(threads));
            let outcome = DistributedBfs::run(&sim, root).unwrap();
            prop_assert_eq!(outcome.stats, reference.stats);
            prop_assert_eq!(&outcome.depths, &reference.depths);
            prop_assert_eq!(&outcome.parents, &reference.parents);
        }
    }
}
