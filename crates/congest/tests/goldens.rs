//! Golden simulation statistics pinning the edge-slot mailbox rewrite.
//!
//! The values were captured by running the identical protocols against the
//! pre-refactor simulator (per-recipient `Vec` mailboxes, every node polled
//! every round; the implementation the edge-slot buffers replaced, so the
//! old code itself is gone). The refactor's contract is *speed, never
//! semantics*: rounds, message counts, bit counts, and per-round traces
//! must all be byte-identical.

use lcs_congest::primitives::{tree_aggregate, AggregateOp, DistributedBfs};
use lcs_congest::{Incoming, NodeContext, NodeProtocol, Outgoing, SimConfig, Simulator};
use lcs_graph::{generators, NodeId, RootedTree};

#[test]
fn golden_bfs_flood_stats() {
    let g = generators::grid(7, 5);
    let outcome = DistributedBfs::run_on(&g, NodeId::new(17)).unwrap();
    assert_eq!(outcome.stats.rounds, 6);
    assert_eq!(outcome.stats.messages, 82);
    assert_eq!(outcome.stats.total_bits, 2624);
    assert_eq!(outcome.stats.max_message_bits, 32);
}

#[test]
fn golden_tree_convergecast_stats() {
    let g = generators::grid(6, 6);
    let t = RootedTree::bfs(&g, NodeId::new(0));
    let values: Vec<u64> = (0..g.node_count() as u64).collect();
    let agg = tree_aggregate(&g, &t, &values, AggregateOp::Sum).unwrap();
    assert_eq!(agg.value, 630);
    assert_eq!(agg.stats.rounds, 10);
    assert_eq!(agg.stats.messages, 35);
    assert_eq!(agg.stats.total_bits, 2240);
    assert_eq!(agg.stats.max_message_bits, 64);
}

/// A level-announcing flood over a path, with per-round tracing enabled:
/// the full trace is pinned, entry by entry.
#[test]
fn golden_traced_flood_on_path() {
    #[derive(Debug)]
    struct Flood {
        root: NodeId,
        level: Option<u32>,
        announce: bool,
    }
    impl NodeProtocol for Flood {
        type Message = u32;
        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<u32>> {
            if ctx.node == self.root {
                ctx.neighbor_ids()
                    .iter()
                    .map(|&v| Outgoing::new(v, 0))
                    .collect()
            } else {
                Vec::new()
            }
        }
        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            _round: u64,
            incoming: &[Incoming<u32>],
        ) -> Vec<Outgoing<u32>> {
            if self.level.is_none() {
                if let Some(m) = incoming.iter().min_by_key(|m| (m.msg, m.from)) {
                    self.level = Some(m.msg + 1);
                    self.announce = true;
                }
            }
            if self.announce {
                self.announce = false;
                let level = self.level.expect("announcing nodes have joined");
                return ctx
                    .neighbor_ids()
                    .iter()
                    .map(|&v| Outgoing::new(v, level))
                    .collect();
            }
            Vec::new()
        }
        fn is_done(&self) -> bool {
            self.level.is_some() && !self.announce
        }
    }

    let g = generators::path(6);
    let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_trace());
    let root = NodeId::new(0);
    let out = sim
        .run(|ctx| Flood {
            root,
            level: if ctx.node == root { Some(0) } else { None },
            announce: false,
        })
        .unwrap();
    assert_eq!(out.stats.rounds, 6);
    assert_eq!(out.stats.messages, 10);
    assert_eq!(out.stats.total_bits, 320);
    assert_eq!(out.stats.max_message_bits, 32);
    let expected: Vec<(u64, u64, u64)> = vec![
        (1, 1, 32),
        (2, 2, 64),
        (3, 2, 64),
        (4, 2, 64),
        (5, 2, 64),
        (6, 1, 32),
    ];
    let got: Vec<(u64, u64, u64)> = out
        .trace
        .iter()
        .map(|t| (t.round, t.messages, t.bits))
        .collect();
    assert_eq!(got, expected);
}
