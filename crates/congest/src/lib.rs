//! A synchronous CONGEST-model message-passing simulator.
//!
//! The CONGEST model (Peleg, *Distributed Computing: A Locality-Sensitive
//! Approach*) is the setting of the paper: a network of `n` processors
//! communicates over the edges of a connected undirected graph in
//! synchronous rounds, and in every round each node may send at most one
//! message of `O(log n)` bits to each of its neighbors. The complexity
//! measure is the number of rounds.
//!
//! This crate simulates that model exactly:
//!
//! * [`NodeProtocol`] — a per-node state machine (what a single processor
//!   runs),
//! * [`Simulator`] — the synchronous round loop that delivers messages,
//!   enforces the per-edge bandwidth limit, counts rounds, and detects
//!   quiescence,
//! * [`primitives`] — reference distributed protocols (BFS-tree
//!   construction, tree broadcast / convergecast) used both as building
//!   blocks and as validation targets for the shortcut framework,
//! * [`RoundCost`] — an accumulator used by composite algorithms that
//!   orchestrate several protocol executions and charge explicit
//!   coordination costs, mirroring how the paper composes subroutines.
//!
//! # Example: distributed BFS
//!
//! ```
//! use lcs_congest::{primitives::DistributedBfs, SimConfig, Simulator};
//! use lcs_graph::{generators, NodeId};
//!
//! let graph = generators::grid(6, 6);
//! let sim = Simulator::new(&graph, SimConfig::for_graph(&graph));
//! let outcome = DistributedBfs::run(&sim, NodeId::new(0)).unwrap();
//! // The BFS tree has depth equal to the eccentricity of the root and the
//! // protocol finishes in O(D) rounds.
//! assert_eq!(outcome.depths[35], 10);
//! assert!(outcome.stats.rounds <= 2 * 10 + 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod engine;
mod error;
mod fault;
mod message;
mod node;
mod simulator;

pub mod primitives;

pub use cost::RoundCost;
pub use engine::EngineSelection;
pub use error::SimError;
pub use fault::FaultPlan;
pub use message::{bits_for_count, bits_for_node_count, MessageBits};
pub use node::{Incoming, NodeContext, NodeProtocol, Outgoing};
pub use simulator::{RoundTrace, SimConfig, SimOutcome, SimStats, Simulator};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
