//! Round-cost accounting for composite algorithms.
//!
//! The paper builds its algorithms by composing subroutines ("run CoreFast,
//! then Verification, repeat O(log N) times; each Boruvka phase runs a
//! shortcut construction followed by a convergecast…"). [`RoundCost`]
//! mirrors that structure: each executed subroutine contributes its exact
//! simulated round count under a label, and the total is the sum — so the
//! reported complexity of a composite algorithm is the sum of the rounds of
//! the pieces it actually executed, never an asymptotic formula.

use std::fmt;

/// An accumulator of CONGEST rounds, broken down by labelled phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundCost {
    entries: Vec<(String, u64)>,
}

impl RoundCost {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `rounds` rounds under the given label.
    pub fn charge(&mut self, label: impl Into<String>, rounds: u64) {
        self.entries.push((label.into(), rounds));
    }

    /// Merges another accumulator into this one, preserving its breakdown.
    pub fn merge(&mut self, other: RoundCost) {
        self.entries.extend(other.entries);
    }

    /// Total number of rounds charged so far.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, r)| r).sum()
    }

    /// The individual `(label, rounds)` entries in charge order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Sums the rounds of all entries whose label starts with `prefix`.
    pub fn total_for_prefix(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(l, _)| l.starts_with(prefix))
            .map(|(_, r)| r)
            .sum()
    }
}

impl fmt::Display for RoundCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total rounds: {}", self.total())?;
        for (label, rounds) in &self.entries {
            writeln!(f, "  {label}: {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdown() {
        let mut cost = RoundCost::new();
        cost.charge("bfs", 10);
        cost.charge("core/iteration-0", 25);
        cost.charge("core/iteration-1", 30);
        assert_eq!(cost.total(), 65);
        assert_eq!(cost.total_for_prefix("core/"), 55);
        assert_eq!(cost.entries().len(), 3);
    }

    #[test]
    fn merge_preserves_entries() {
        let mut a = RoundCost::new();
        a.charge("x", 1);
        let mut b = RoundCost::new();
        b.charge("y", 2);
        a.merge(b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.entries()[1].0, "y");
    }

    #[test]
    fn display_includes_total_and_labels() {
        let mut cost = RoundCost::new();
        cost.charge("phase", 7);
        let text = cost.to_string();
        assert!(text.contains("total rounds: 7"));
        assert!(text.contains("phase: 7"));
    }

    #[test]
    fn empty_cost_is_zero() {
        assert_eq!(RoundCost::new().total(), 0);
    }
}
