//! Per-node protocol interface.

use lcs_graph::{EdgeId, NodeId};

/// Static information a node knows about itself at wake-up time.
///
/// This mirrors the paper's model: "initially, nodes only know their
/// immediate neighbors" plus a polynomially tight bound on `n` (needed to
/// size `O(log n)`-bit messages).
#[derive(Debug, Clone)]
pub struct NodeContext {
    /// This node's identifier.
    pub node: NodeId,
    /// Adjacent `(neighbor, edge)` pairs.
    pub neighbors: Vec<(NodeId, EdgeId)>,
    /// A publicly known upper bound on the number of nodes in the network.
    pub node_count_bound: usize,
}

impl NodeContext {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns the edge towards `neighbor`, if adjacent.
    pub fn edge_to(&self, neighbor: NodeId) -> Option<EdgeId> {
        self.neighbors
            .iter()
            .find(|(v, _)| *v == neighbor)
            .map(|&(_, e)| e)
    }
}

/// A message being sent by a node during a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The neighbor the message is addressed to.
    pub to: NodeId,
    /// The message payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(to: NodeId, msg: M) -> Self {
        Outgoing { to, msg }
    }
}

/// A message received by a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The neighbor the message came from.
    pub from: NodeId,
    /// The edge it traveled over.
    pub edge: EdgeId,
    /// The message payload.
    pub msg: M,
}

/// A per-node state machine executed by the [`crate::Simulator`].
///
/// The simulator calls [`NodeProtocol::init`] once for every node before the
/// first round and then [`NodeProtocol::on_round`] every round, passing the
/// messages delivered to the node in that round. Execution stops when every
/// node reports [`NodeProtocol::is_done`] and no messages are in flight.
pub trait NodeProtocol {
    /// The message type exchanged by this protocol.
    type Message: Clone + crate::MessageBits;

    /// Called once before round 1; may already send messages.
    fn init(&mut self, ctx: &NodeContext) -> Vec<Outgoing<Self::Message>>;

    /// Called once per round with all messages delivered this round.
    fn on_round(
        &mut self,
        ctx: &NodeContext,
        round: u64,
        incoming: &[Incoming<Self::Message>],
    ) -> Vec<Outgoing<Self::Message>>;

    /// Whether this node has reached a quiescent state. A quiescent node may
    /// still be woken again by incoming messages in later rounds.
    fn is_done(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_context_lookup() {
        let ctx = NodeContext {
            node: NodeId::new(3),
            neighbors: vec![
                (NodeId::new(1), EdgeId::new(0)),
                (NodeId::new(5), EdgeId::new(7)),
            ],
            node_count_bound: 10,
        };
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.edge_to(NodeId::new(5)), Some(EdgeId::new(7)));
        assert_eq!(ctx.edge_to(NodeId::new(2)), None);
    }

    #[test]
    fn outgoing_constructor() {
        let out = Outgoing::new(NodeId::new(2), 7u32);
        assert_eq!(out.to, NodeId::new(2));
        assert_eq!(out.msg, 7);
    }
}
