//! Per-node protocol interface.

use lcs_graph::{EdgeId, NodeId};

/// Static information a node knows about itself at wake-up time.
///
/// This mirrors the paper's model: "initially, nodes only know their
/// immediate neighbors" plus a polynomially tight bound on `n` (needed to
/// size `O(log n)`-bit messages).
///
/// The neighbor lists are borrowed directly from the graph's CSR arrays —
/// the simulator hands every node a view into the same flat memory instead
/// of cloning one `Vec` per node per run.
#[derive(Debug, Clone, Copy)]
pub struct NodeContext<'g> {
    /// This node's identifier.
    pub node: NodeId,
    /// Adjacent node ids (parallel to `edges`).
    neighbors: &'g [NodeId],
    /// Incident edge ids (parallel to `neighbors`).
    edges: &'g [EdgeId],
    /// A publicly known upper bound on the number of nodes in the network.
    pub node_count_bound: usize,
}

impl<'g> NodeContext<'g> {
    /// Creates a context from parallel neighbor/edge slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn new(
        node: NodeId,
        neighbors: &'g [NodeId],
        edges: &'g [EdgeId],
        node_count_bound: usize,
    ) -> Self {
        assert_eq!(
            neighbors.len(),
            edges.len(),
            "neighbor and edge slices must be parallel"
        );
        NodeContext {
            node,
            neighbors,
            edges,
            node_count_bound,
        }
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Adjacent node ids, in edge-insertion order (parallel to
    /// [`NodeContext::incident_edge_ids`]).
    pub fn neighbor_ids(&self) -> &'g [NodeId] {
        self.neighbors
    }

    /// Incident edge ids (parallel to [`NodeContext::neighbor_ids`]).
    pub fn incident_edge_ids(&self) -> &'g [EdgeId] {
        self.edges
    }

    /// Iterator over adjacent `(neighbor, edge)` pairs.
    pub fn neighbors(&self) -> impl Iterator<Item = (NodeId, EdgeId)> + 'g {
        self.neighbors
            .iter()
            .copied()
            .zip(self.edges.iter().copied())
    }

    /// Position of `neighbor` in the adjacency slices, if adjacent.
    pub fn position_of(&self, neighbor: NodeId) -> Option<usize> {
        self.neighbors.iter().position(|&v| v == neighbor)
    }

    /// Returns the edge towards `neighbor`, if adjacent.
    pub fn edge_to(&self, neighbor: NodeId) -> Option<EdgeId> {
        self.position_of(neighbor).map(|i| self.edges[i])
    }
}

/// A message being sent by a node during a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The neighbor the message is addressed to.
    pub to: NodeId,
    /// The message payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(to: NodeId, msg: M) -> Self {
        Outgoing { to, msg }
    }
}

/// A message received by a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The neighbor the message came from.
    pub from: NodeId,
    /// The edge it traveled over.
    pub edge: EdgeId,
    /// The message payload.
    pub msg: M,
}

/// A per-node state machine executed by the [`crate::Simulator`].
///
/// The simulator calls [`NodeProtocol::init`] once for every node before the
/// first round and then [`NodeProtocol::on_round`] every round the node is
/// *scheduled*, passing the messages delivered to the node in that round.
/// Execution stops when every node reports [`NodeProtocol::is_done`] and no
/// messages are in flight.
pub trait NodeProtocol {
    /// The message type exchanged by this protocol.
    type Message: Clone + crate::MessageBits;

    /// Called once before round 1; may already send messages.
    fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Self::Message>>;

    /// Called once per scheduled round with all messages delivered this
    /// round.
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: u64,
        incoming: &[Incoming<Self::Message>],
    ) -> Vec<Outgoing<Self::Message>>;

    /// Whether this node has reached a quiescent state. A quiescent node may
    /// still be woken again by incoming messages in later rounds.
    ///
    /// **Scheduling contract:** the simulator does not poll a node that
    /// reported `is_done()` after its last `init`/`on_round` call until a
    /// message arrives for it. Reporting done therefore promises that, absent
    /// incoming messages, the node will neither send nor change observable
    /// state in any later round — quiescence must be message-driven, not
    /// round-driven. (This is what makes skipping idle nodes a pure speed
    /// optimization: polling a done node with an empty inbox must be a
    /// no-op anyway.)
    fn is_done(&self) -> bool;

    /// Scheduling hint for a node that is *not* done: the earliest future
    /// round at which it may act on its own (send a message or change
    /// observable state) without first receiving one. Called after every
    /// `init`/`on_round` while `is_done()` is `false`; `now` is the round
    /// that was just executed (`0` for `init`).
    ///
    /// * `None` (the default) — poll again next round, the classic
    ///   synchronous behavior. Always correct.
    /// * `Some(r)` with `r > now` — the node promises that, absent incoming
    ///   messages, polling it in rounds `now + 1 .. r` is a no-op; the
    ///   simulator skips those polls. An incoming message still wakes it
    ///   immediately, and a spurious early wake must be harmless (the hint
    ///   is an optimization, never a correctness lever: all emissions must
    ///   be gated on the round number or on node state, not on "I was
    ///   polled exactly when I asked").
    ///
    /// Round-driven protocols (the `lcs_dist` superstep engine) use this to
    /// sleep through the bulk of each window; message-driven protocols never
    /// need to implement it.
    fn next_wake(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_context_lookup() {
        let neighbors = [NodeId::new(1), NodeId::new(5)];
        let edges = [EdgeId::new(0), EdgeId::new(7)];
        let ctx = NodeContext::new(NodeId::new(3), &neighbors, &edges, 10);
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.edge_to(NodeId::new(5)), Some(EdgeId::new(7)));
        assert_eq!(ctx.edge_to(NodeId::new(2)), None);
        assert_eq!(ctx.position_of(NodeId::new(1)), Some(0));
        let pairs: Vec<(NodeId, EdgeId)> = ctx.neighbors().collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId::new(1), EdgeId::new(0)),
                (NodeId::new(5), EdgeId::new(7))
            ]
        );
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn node_context_rejects_mismatched_slices() {
        let neighbors = [NodeId::new(1)];
        let _ = NodeContext::new(NodeId::new(0), &neighbors, &[], 2);
    }

    #[test]
    fn outgoing_constructor() {
        let out = Outgoing::new(NodeId::new(2), 7u32);
        assert_eq!(out.to, NodeId::new(2));
        assert_eq!(out.msg, 7);
    }
}
