//! The sharded round engine: the serial loop partitioned over `S`
//! contiguous node shards, one `std::thread::scope` worker per shard.
//!
//! # Shard layout
//!
//! Shard boundaries come from [`lcs_graph::ShardMap::by_volume`], so every
//! shard owns a contiguous node range *and therefore* a contiguous range of
//! the CSR edge-slot arrays (`Topology::offset` is monotone in node id).
//! Each shard privately owns, for its range: the protocol states, both
//! edge-slot mailbox buffers, inbox counters, worklists, its duplicate-send
//! stamps (sender-position indexed — a directed edge has exactly one
//! sender, so stamps never leave the sender's shard), and its timer heap of
//! `next_wake` entries.
//!
//! # Cross-shard staging and the barrier merge
//!
//! A post whose recipient lives in another shard is appended to a per-
//! destination staging buffer instead of written to the mailbox. At the end
//! of each round's work phase every shard flushes its staging buffers into
//! the destinations' mutex-guarded inbound queues; at the start of the next
//! round each shard drains its own queue into its `next` mailbox before
//! swapping buffers. Every slot is written at most once per round (the
//! sender-side stamp guarantees it), and recipients' worklists are sorted
//! before polling, so the drain order — the only thing scheduling can vary
//! — is unobservable. This is what makes `SimStats`, traces, states, and
//! errors byte-identical to the serial engine for every shard count.
//!
//! # Round protocol
//!
//! Workers and the coordinating thread advance in lockstep through two
//! barriers per phase: phase 0 is `init`, phase `r ≥ 1` is round `r`.
//! Between the end barrier of phase `r` and the start barrier of phase
//! `r + 1` only the coordinator runs: it gathers the per-shard trace
//! contributions, detects quiescence (no worklist, no timer, no staged
//! message anywhere), enforces the round cap, and surfaces the
//! lowest-shard error of the earliest failing round — exactly the failure
//! the serial engine reports first.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use lcs_graph::{Graph, ShardMap};
use lcs_obs::{LatencyHistogram, Obs, SpanBuffer};

use crate::fault::{Delayed, FaultCounters, FaultState};
use crate::{
    Incoming, MessageBits, NodeContext, NodeProtocol, Outgoing, RoundTrace, SimConfig, SimError,
    SimOutcome, SimStats,
};

use super::{build_contexts, record_run, serial, RoundEngine, Topology};

/// The sharded engine: `threads` workers, one contiguous node shard each.
pub(crate) struct ShardedEngine {
    pub(crate) threads: usize,
}

impl RoundEngine for ShardedEngine {
    fn shard_count(&self) -> usize {
        self.threads
    }

    fn run<P, F>(
        &self,
        graph: &Graph,
        config: &SimConfig,
        obs: &Obs,
        factory: F,
    ) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol + Send,
        P::Message: Send,
        F: FnMut(&NodeContext) -> P,
    {
        let shards = self.threads.min(graph.node_count().max(1));
        if shards <= 1 {
            return serial::run_protocol(graph, config, obs, factory);
        }
        run_sharded(graph, config, obs, factory, shards)
    }
}

/// A message crossing a shard boundary: the recipient-side slot, the
/// recipient's node id, and the already-validated payload.
struct Staged<M> {
    slot: u32,
    to: u32,
    /// Validated size of `msg` in bits. Kept at full width: truncating here
    /// would let a pathological bandwidth configuration desynchronize the
    /// sharded trace's bit counts from the serial engine's.
    bits: u64,
    /// Fault-mode delivery metadata: the round the copy becomes due and the
    /// round it was posted. Both are 0 in fault-free runs, where delivery
    /// is always "next round" and these fields are ignored.
    due: u64,
    posted: u64,
    msg: M,
}

/// State the coordinator and the workers exchange at the barriers.
struct Shared<M> {
    barrier: Barrier,
    /// Phase number workers should execute next (0 = init).
    phase: AtomicU64,
    /// Set by the coordinator once the run is over.
    stop: AtomicBool,
    /// Set by any worker that recorded an error this phase.
    any_error: AtomicBool,
    /// Per-shard "has pending work" flags, refreshed every phase.
    active: Vec<AtomicBool>,
    /// Per-shard messages/bits delivered in the last executed round (for
    /// the trace).
    delivered: Vec<AtomicU64>,
    bits: Vec<AtomicU64>,
    /// Per-shard inbound cross-shard staging queues, double-buffered by
    /// phase parity: messages staged during phase `r` are addressed to
    /// phase `r + 1`, so writers use parity `(r + 1) % 2` while readers of
    /// phase `r` drain parity `r % 2` — the two phases never touch the
    /// same buffer, which is what keeps a fast shard's round-`r` sends from
    /// leaking into a slower shard's round-`r` deliveries.
    inboxes: [Vec<Mutex<Vec<Staged<M>>>>; 2],
}

/// The fault-mode extension of one shard: its slice of the delivery queue
/// (local recipients only — a delayed message lives in its *recipient's*
/// shard), the per-node round inboxes it feeds, the fresh states held for
/// this shard's restartable crash nodes, and the shard-local fault
/// tallies. Fault decisions themselves come from the run-wide
/// [`FaultState`], which is immutable and shared by reference, so shard
/// count cannot perturb a single draw.
struct ShardFault<P: NodeProtocol> {
    heap: BinaryHeap<Reverse<Delayed<P::Message>>>,
    /// Messages delivered to each local node this round (local-indexed,
    /// cleared after polling).
    inboxes: Vec<Vec<Incoming<P::Message>>>,
    /// Fresh states for this shard's crash nodes (ascending node order),
    /// present only when the plan restarts them.
    spares: Vec<(u32, Option<P>)>,
    counters: FaultCounters,
}

/// One shard's private slice of the run.
struct Shard<P: NodeProtocol> {
    id: usize,
    /// First node id (the shard owns `node_lo..node_lo + nodes.len()`).
    node_lo: usize,
    /// First CSR slot (the shard owns `slot_lo..slot_lo + cur.len()`).
    slot_lo: usize,
    nodes: Vec<P>,
    cur: Vec<Option<P::Message>>,
    next: Vec<Option<P::Message>>,
    /// Duplicate-send stamps, indexed by *sender-side* CSR position local
    /// to this shard (the sender of a directed edge is unique, so the check
    /// needs no cross-shard coordination).
    stamp: Vec<u64>,
    inbox_cur: Vec<u32>,
    inbox_next: Vec<u32>,
    queued: Vec<bool>,
    worklist_cur: Vec<u32>,
    worklist_next: Vec<u32>,
    wakes: BinaryHeap<Reverse<(u64, u32)>>,
    /// Outbound staging, one buffer per destination shard.
    staging: Vec<Vec<Staged<P::Message>>>,
    in_flight_next: u64,
    bits_next: u64,
    last_delivered: u64,
    last_bits: u64,
    stats: SimStats,
    /// Active-node polls (worklist entries processed), accumulated locally
    /// like `stats` and folded into the obs counters in shard order.
    polls: u64,
    /// Probe state, all local to this shard's worker: whether probes are
    /// live at all (recording off ⇒ the hot path takes no clock reads and
    /// allocates no histogram), barrier-wait nanoseconds, and the size of
    /// every cross-shard staging flush.
    probe_on: bool,
    barrier_nanos: u64,
    flush_sizes: Option<LatencyHistogram>,
    error: Option<SimError>,
    /// A panic payload caught from protocol code (re-raised by the
    /// coordinator after the fleet stops — `Barrier` has no poisoning, so
    /// letting a worker unwind through a barrier would deadlock the rest).
    panic: Option<Box<dyn std::any::Any + Send>>,
    scratch: Vec<Incoming<P::Message>>,
    /// Fault-mode state; `None` exactly when the run has no active plan.
    fault: Option<ShardFault<P>>,
}

impl<P: NodeProtocol> Shard<P> {
    fn queue_local(&mut self, node: usize) {
        let local = node - self.node_lo;
        if !self.queued[local] {
            self.queued[local] = true;
            self.worklist_next.push(node as u32);
        }
    }

    fn post(
        &mut self,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        ctx: &NodeContext<'_>,
        out: Outgoing<P::Message>,
        round: u64,
    ) -> crate::Result<()> {
        let pos = ctx.position_of(out.to).ok_or(SimError::NotANeighbor {
            from: ctx.node,
            to: out.to,
        })?;
        let gpos = topo.offset[ctx.node.index()] as usize + pos;
        let lpos = gpos - self.slot_lo;
        if self.stamp[lpos] == round {
            return Err(SimError::DuplicateSend {
                from: ctx.node,
                to: out.to,
                round,
            });
        }
        self.stamp[lpos] = round;
        let bits = out.msg.size_bits();
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from: ctx.node,
                to: out.to,
                message_bits: bits,
                bandwidth_bits: config.bandwidth_bits,
            });
        }
        self.stats.messages += 1;
        self.stats.total_bits += bits as u64;
        self.stats.max_message_bits = self.stats.max_message_bits.max(bits);
        let slot = topo.mirror[gpos];
        let dst = map.shard_of(out.to);
        if dst == self.id {
            self.next[slot as usize - self.slot_lo] = Some(out.msg);
            self.inbox_next[out.to.index() - self.node_lo] += 1;
            self.in_flight_next += 1;
            self.bits_next += bits as u64;
            self.queue_local(out.to.index());
        } else {
            self.staging[dst].push(Staged {
                slot,
                to: out.to.index() as u32,
                bits: bits as u64,
                due: 0,
                posted: 0,
                msg: out.msg,
            });
        }
        Ok(())
    }

    /// Drains this shard's inbound queue (messages staged by other shards
    /// in the previous phase) into the next-round mailbox.
    fn merge_inbound(&mut self, phase: u64, shared: &Shared<P::Message>) {
        let staged = {
            let mut inbox = shared.inboxes[(phase % 2) as usize][self.id]
                .lock()
                .expect("no worker panics while holding an inbox lock");
            std::mem::take(&mut *inbox)
        };
        for st in staged {
            self.next[st.slot as usize - self.slot_lo] = Some(st.msg);
            self.inbox_next[st.to as usize - self.node_lo] += 1;
            self.in_flight_next += 1;
            self.bits_next += st.bits;
            self.queue_local(st.to as usize);
        }
    }

    /// Flushes the outbound staging buffers into the destinations' inbound
    /// queues for the *next* phase.
    fn flush_staging(&mut self, phase: u64, shared: &Shared<P::Message>) {
        for (dst, buf) in self.staging.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            if let Some(sizes) = self.flush_sizes.as_mut() {
                sizes.record(buf.len() as u64);
            }
            let mut inbox = shared.inboxes[((phase + 1) % 2) as usize][dst]
                .lock()
                .expect("no worker panics while holding an inbox lock");
            inbox.append(buf);
        }
    }

    fn begin_round(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
        std::mem::swap(&mut self.inbox_cur, &mut self.inbox_next);
        std::mem::swap(&mut self.worklist_cur, &mut self.worklist_next);
        self.worklist_next.clear();
        for &v in &self.worklist_cur {
            self.queued[v as usize - self.node_lo] = false;
        }
        self.worklist_cur.sort_unstable();
        self.last_delivered = self.in_flight_next;
        self.last_bits = self.bits_next;
        self.in_flight_next = 0;
        self.bits_next = 0;
    }

    fn drain_into(&mut self, idx: usize, topo: &Topology, ctx: &NodeContext<'_>) {
        self.scratch.clear();
        let local = idx - self.node_lo;
        if self.inbox_cur[local] == 0 {
            return;
        }
        let base = topo.offset[idx] as usize;
        let end = topo.offset[idx + 1] as usize;
        let neighbors = ctx.neighbor_ids();
        let edges = ctx.incident_edge_ids();
        for p in base..end {
            if let Some(msg) = self.cur[p - self.slot_lo].take() {
                self.scratch.push(Incoming {
                    from: neighbors[p - base],
                    edge: edges[p - base],
                    msg,
                });
            }
        }
        self.inbox_cur[local] = 0;
    }

    /// Phase 0: `init` every node of the shard, in node order.
    fn run_init(
        &mut self,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        contexts: &[NodeContext<'_>],
    ) {
        for local in 0..self.nodes.len() {
            let idx = self.node_lo + local;
            let ctx = &contexts[idx];
            let outgoing = self.nodes[local].init(ctx);
            for out in outgoing {
                if let Err(err) = self.post(config, topo, map, ctx, out, 0) {
                    self.error = Some(err);
                    return;
                }
            }
            if !self.nodes[local].is_done() {
                match self.nodes[local].next_wake(0) {
                    Some(r) if r > 1 => self.wakes.push(Reverse((r, idx as u32))),
                    _ => self.queue_local(idx),
                }
            }
        }
    }

    /// Phase `round ≥ 1`: merge inbound mail, pop due timers, flip buffers,
    /// poll the worklist.
    fn run_round(
        &mut self,
        round: u64,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        contexts: &[NodeContext<'_>],
        shared: &Shared<P::Message>,
    ) {
        self.merge_inbound(round, shared);
        while let Some(&Reverse((due, idx))) = self.wakes.peek() {
            if due > round {
                break;
            }
            self.wakes.pop();
            self.queue_local(idx as usize);
        }
        self.begin_round();
        let worklist = std::mem::take(&mut self.worklist_cur);
        self.polls += worklist.len() as u64;
        'nodes: for &vi in &worklist {
            let idx = vi as usize;
            let local = idx - self.node_lo;
            let ctx = &contexts[idx];
            self.drain_into(idx, topo, ctx);
            let scratch = std::mem::take(&mut self.scratch);
            let outgoing = self.nodes[local].on_round(ctx, round, &scratch);
            self.scratch = scratch;
            for out in outgoing {
                if let Err(err) = self.post(config, topo, map, ctx, out, round) {
                    self.error = Some(err);
                    break 'nodes;
                }
            }
            if !self.nodes[local].is_done() {
                match self.nodes[local].next_wake(round) {
                    Some(r) if r > round + 1 => self.wakes.push(Reverse((r, idx as u32))),
                    _ => self.queue_local(idx),
                }
            }
        }
        self.worklist_cur = worklist;
    }

    /// Fault-mode post: identical validation and send accounting to
    /// [`Shard::post`], then the same loss/delay/duplication schedule as
    /// the serial engine — every draw is keyed by the recipient-side slot
    /// and the round, never by which shard executes it. A local recipient's
    /// copy goes straight into this shard's delivery heap; a remote one is
    /// staged with its `(due, posted)` key and lands in the destination
    /// shard's heap at the next merge (cross-shard copies are due no
    /// earlier than `round + 1`, so the merge never arrives late).
    #[allow(clippy::too_many_arguments)]
    fn post_faulty(
        &mut self,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        fs: &FaultState,
        ctx: &NodeContext<'_>,
        out: Outgoing<P::Message>,
        round: u64,
    ) -> crate::Result<()> {
        let pos = ctx.position_of(out.to).ok_or(SimError::NotANeighbor {
            from: ctx.node,
            to: out.to,
        })?;
        let gpos = topo.offset[ctx.node.index()] as usize + pos;
        let lpos = gpos - self.slot_lo;
        if self.stamp[lpos] == round {
            return Err(SimError::DuplicateSend {
                from: ctx.node,
                to: out.to,
                round,
            });
        }
        self.stamp[lpos] = round;
        let bits = out.msg.size_bits();
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from: ctx.node,
                to: out.to,
                message_bits: bits,
                bandwidth_bits: config.bandwidth_bits,
            });
        }
        self.stats.messages += 1;
        self.stats.total_bits += bits as u64;
        self.stats.max_message_bits = self.stats.max_message_bits.max(bits);
        let slot = topo.mirror[gpos];
        let fault = self.fault.as_mut().expect("fault mode is on");
        if fs.lose(u64::from(slot), round) {
            fault.counters.drops += 1;
            return Ok(());
        }
        let to = out.to.index();
        let delay = fs.delay_of(ctx.incident_edge_ids()[pos].index());
        if delay > 0 {
            fault.counters.delays += 1;
        }
        let due = fs.next_poll(to, round + 1 + delay);
        let dup = fs.duplicate(u64::from(slot), round);
        if dup {
            fault.counters.dups += 1;
        }
        let dst = map.shard_of(out.to);
        if dst == self.id {
            if dup {
                fault.heap.push(Reverse(Delayed {
                    due: fs.next_poll(to, due + 1),
                    slot,
                    posted: round,
                    to: to as u32,
                    bits: bits as u64,
                    msg: out.msg.clone(),
                }));
            }
            fault.heap.push(Reverse(Delayed {
                due,
                slot,
                posted: round,
                to: to as u32,
                bits: bits as u64,
                msg: out.msg,
            }));
        } else {
            if dup {
                self.staging[dst].push(Staged {
                    slot,
                    to: to as u32,
                    bits: bits as u64,
                    due: fs.next_poll(to, due + 1),
                    posted: round,
                    msg: out.msg.clone(),
                });
            }
            self.staging[dst].push(Staged {
                slot,
                to: to as u32,
                bits: bits as u64,
                due,
                posted: round,
                msg: out.msg,
            });
        }
        Ok(())
    }

    /// Fault-mode inbound merge: staged cross-shard copies join this
    /// shard's delivery heap (their due rounds are still in the future, so
    /// ordering is preserved).
    fn merge_inbound_faulty(&mut self, phase: u64, shared: &Shared<P::Message>) {
        let staged = {
            let mut inbox = shared.inboxes[(phase % 2) as usize][self.id]
                .lock()
                .expect("no worker panics while holding an inbox lock");
            std::mem::take(&mut *inbox)
        };
        let fault = self.fault.as_mut().expect("fault mode is on");
        for st in staged {
            fault.heap.push(Reverse(Delayed {
                due: st.due,
                slot: st.slot,
                posted: st.posted,
                to: st.to,
                bits: st.bits,
                msg: st.msg,
            }));
        }
    }

    /// Fault-mode phase 0: `init` every non-crashed node of the shard in
    /// node order, schedule wakes through each node's poll schedule, and
    /// arm the restart timers for this shard's crash nodes.
    fn run_init_faulty(
        &mut self,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        fs: &FaultState,
        contexts: &[NodeContext<'_>],
    ) {
        for local in 0..self.nodes.len() {
            let idx = self.node_lo + local;
            if fs.crashed_at(idx, 0) {
                continue;
            }
            let ctx = &contexts[idx];
            let outgoing = self.nodes[local].init(ctx);
            for out in outgoing {
                if let Err(err) = self.post_faulty(config, topo, map, fs, ctx, out, 0) {
                    self.error = Some(err);
                    return;
                }
            }
            if !self.nodes[local].is_done() {
                let target = match self.nodes[local].next_wake(0) {
                    Some(r) => r.max(1),
                    None => 1,
                };
                let due = fs.next_poll(idx, target);
                if due > 1 {
                    self.wakes.push(Reverse((due, idx as u32)));
                } else {
                    self.queue_local(idx);
                }
            }
        }
        if let Some(r) = fs.restart_local_round() {
            for &v in fs.crash_nodes() {
                let idx = v as usize;
                if idx >= self.node_lo && idx < self.node_lo + self.nodes.len() {
                    self.wakes.push(Reverse((r, v)));
                }
            }
        }
    }

    /// Fault-mode phase `round ≥ 1`: merge staged copies into the delivery
    /// heap, pop due timers and due deliveries (dropping mail addressed to
    /// currently-crashed nodes), flip worklists, then poll — skipping
    /// crashed nodes and re-initializing restarting ones.
    #[allow(clippy::too_many_arguments)]
    fn run_round_faulty(
        &mut self,
        round: u64,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        fs: &FaultState,
        contexts: &[NodeContext<'_>],
        shared: &Shared<P::Message>,
    ) {
        self.merge_inbound_faulty(round, shared);
        while let Some(&Reverse((due, idx))) = self.wakes.peek() {
            if due > round {
                break;
            }
            self.wakes.pop();
            self.queue_local(idx as usize);
        }
        let mut delivered: u64 = 0;
        let mut bits: u64 = 0;
        {
            let fault = self.fault.as_mut().expect("fault mode is on");
            fault.counters.queue_peak = fault.counters.queue_peak.max(fault.heap.len() as u64);
        }
        loop {
            let fault = self.fault.as_mut().expect("fault mode is on");
            let Some(Reverse(d)) = fault.heap.peek() else {
                break;
            };
            if d.due > round {
                break;
            }
            let Some(Reverse(d)) = fault.heap.pop() else {
                break;
            };
            debug_assert_eq!(d.due, round, "delivery rounds are never skipped");
            let to = d.to as usize;
            if fs.crashed_at(to, round) {
                fault.counters.crash_drops += 1;
                continue;
            }
            delivered += 1;
            bits += d.bits;
            let base = topo.offset[to] as usize;
            let k = d.slot as usize - base;
            let ctx = &contexts[to];
            fault.inboxes[to - self.node_lo].push(Incoming {
                from: ctx.neighbor_ids()[k],
                edge: ctx.incident_edge_ids()[k],
                msg: d.msg,
            });
            self.queue_local(to);
        }
        self.begin_round();
        // The fault plane bypasses the mailbox buffers, so the trace
        // contribution is the heap pop tally, not `in_flight_next`.
        self.last_delivered = delivered;
        self.last_bits = bits;
        let worklist = std::mem::take(&mut self.worklist_cur);
        let restart_round = fs.restart_local_round();
        'nodes: for &vi in &worklist {
            let idx = vi as usize;
            let local = idx - self.node_lo;
            if fs.crashed_at(idx, round) {
                self.fault.as_mut().expect("fault mode is on").inboxes[local].clear();
                continue;
            }
            let ctx = &contexts[idx];
            if restart_round == Some(round) && fs.is_crash_node(idx) {
                let fault = self.fault.as_mut().expect("fault mode is on");
                if let Some(spare) = fault
                    .spares
                    .iter_mut()
                    .find(|(v, _)| *v as usize == idx)
                    .and_then(|(_, s)| s.take())
                {
                    self.nodes[local] = spare;
                    fault.counters.restarts += 1;
                }
                fault.inboxes[local].clear();
                self.polls += 1;
                let outgoing = self.nodes[local].init(ctx);
                for out in outgoing {
                    if let Err(err) = self.post_faulty(config, topo, map, fs, ctx, out, round) {
                        self.error = Some(err);
                        break 'nodes;
                    }
                }
            } else {
                let fault = self.fault.as_mut().expect("fault mode is on");
                let incoming = std::mem::take(&mut fault.inboxes[local]);
                self.polls += 1;
                let outgoing = self.nodes[local].on_round(ctx, round, &incoming);
                let mut incoming = incoming;
                incoming.clear();
                self.fault.as_mut().expect("fault mode is on").inboxes[local] = incoming;
                for out in outgoing {
                    if let Err(err) = self.post_faulty(config, topo, map, fs, ctx, out, round) {
                        self.error = Some(err);
                        break 'nodes;
                    }
                }
            }
            if !self.nodes[local].is_done() {
                let target = match self.nodes[local].next_wake(round) {
                    Some(r) => r.max(round + 1),
                    None => round + 1,
                };
                let due = fs.next_poll(idx, target);
                if due > round + 1 {
                    self.wakes.push(Reverse((due, idx as u32)));
                } else {
                    self.queue_local(idx);
                }
            }
        }
        self.worklist_cur = worklist;
    }

    /// The worker loop: execute phases until the coordinator says stop.
    fn work(
        &mut self,
        config: &SimConfig,
        topo: &Topology,
        map: &ShardMap,
        fs: Option<&FaultState>,
        contexts: &[NodeContext<'_>],
        shared: &Shared<P::Message>,
    ) {
        loop {
            self.wait_at_barrier(shared);
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let phase = shared.phase.load(Ordering::SeqCst);
            if self.error.is_none() && self.panic.is_none() {
                // Protocol code may panic (e.g. a protocol's own invariant
                // assertions). Catch it so this worker keeps meeting the
                // barriers; the coordinator stops the fleet and the payload
                // is re-raised on the caller's thread, matching the serial
                // engine's behavior. AssertUnwindSafe is sound because the
                // whole run is abandoned: no state of this shard is
                // observed afterwards.
                let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    match (fs, phase) {
                        (None, 0) => self.run_init(config, topo, map, contexts),
                        (None, _) => self.run_round(phase, config, topo, map, contexts, shared),
                        (Some(fs), 0) => self.run_init_faulty(config, topo, map, fs, contexts),
                        (Some(fs), _) => {
                            self.run_round_faulty(phase, config, topo, map, fs, contexts, shared)
                        }
                    }
                    self.flush_staging(phase, shared);
                }));
                if let Err(payload) = work {
                    self.panic = Some(payload);
                }
            }
            shared.active[self.id].store(
                !self.worklist_next.is_empty()
                    || !self.wakes.is_empty()
                    || self.fault.as_ref().is_some_and(|f| !f.heap.is_empty()),
                Ordering::SeqCst,
            );
            shared.delivered[self.id].store(self.last_delivered, Ordering::SeqCst);
            shared.bits[self.id].store(self.last_bits, Ordering::SeqCst);
            if self.error.is_some() || self.panic.is_some() {
                shared.any_error.store(true, Ordering::SeqCst);
            }
            self.wait_at_barrier(shared);
        }
    }

    /// One barrier rendezvous, timed into the shard-local accumulator when
    /// probes are on (the only clock reads probes add to a worker, and
    /// only in recording runs).
    fn wait_at_barrier(&mut self, shared: &Shared<P::Message>) {
        if self.probe_on {
            let start = std::time::Instant::now();
            shared.barrier.wait();
            self.barrier_nanos += start.elapsed().as_nanos() as u64;
        } else {
            shared.barrier.wait();
        }
    }
}

fn run_sharded<P, F>(
    graph: &Graph,
    config: &SimConfig,
    obs: &Obs,
    mut factory: F,
    shard_count: usize,
) -> crate::Result<SimOutcome<P>>
where
    P: NodeProtocol + Send,
    P::Message: Send,
    F: FnMut(&NodeContext) -> P,
{
    let topo = Topology::new(graph);
    let map = ShardMap::by_volume(graph, shard_count);
    let shard_count = map.shard_count();
    let contexts = build_contexts(graph);
    // Factory calls happen on this thread, in node order — the same
    // sequence the serial engine produces, so stateful factories (counters,
    // RNG streams) observe identical call histories.
    let mut all_nodes: Vec<P> = contexts.iter().map(&mut factory).collect();
    let fault_state = config
        .active_fault()
        .map(|plan| FaultState::new(&plan, graph));
    // Spare states for restartable crash nodes, created in ascending node
    // order after the main factory pass — the exact call sequence the
    // serial engine makes, so stateful factories agree with it.
    let mut spare_pool: Vec<(u32, Option<P>)> = match &fault_state {
        Some(fs) if fs.restart_local_round().is_some() => fs
            .crash_nodes()
            .iter()
            .map(|&v| (v, Some(factory(&contexts[v as usize]))))
            .collect(),
        _ => Vec::new(),
    };

    let mut shards: Vec<Shard<P>> = Vec::with_capacity(shard_count);
    for s in (0..shard_count).rev() {
        let range = map.range(s);
        let nodes: Vec<P> = all_nodes.split_off(range.start);
        let fault = fault_state.as_ref().map(|_| {
            let split = spare_pool.partition_point(|(v, _)| (*v as usize) < range.start);
            ShardFault {
                heap: BinaryHeap::new(),
                inboxes: (0..range.len()).map(|_| Vec::new()).collect(),
                spares: spare_pool.split_off(split),
                counters: FaultCounters::default(),
            }
        });
        let slot_lo = topo.offset[range.start] as usize;
        let slot_hi = topo.offset[range.end] as usize;
        let slots = slot_hi - slot_lo;
        shards.push(Shard {
            id: s,
            node_lo: range.start,
            slot_lo,
            nodes,
            cur: (0..slots).map(|_| None).collect(),
            next: (0..slots).map(|_| None).collect(),
            stamp: vec![u64::MAX; slots],
            inbox_cur: vec![0; range.len()],
            inbox_next: vec![0; range.len()],
            queued: vec![false; range.len()],
            worklist_cur: Vec::new(),
            worklist_next: Vec::new(),
            wakes: BinaryHeap::new(),
            staging: (0..shard_count).map(|_| Vec::new()).collect(),
            in_flight_next: 0,
            bits_next: 0,
            last_delivered: 0,
            last_bits: 0,
            stats: SimStats::default(),
            polls: 0,
            probe_on: obs.is_on(),
            barrier_nanos: 0,
            flush_sizes: obs.is_on().then(LatencyHistogram::new),
            error: None,
            panic: None,
            scratch: Vec::new(),
            fault,
        });
    }
    shards.reverse();

    let shared: Shared<P::Message> = Shared {
        barrier: Barrier::new(shard_count + 1),
        phase: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        any_error: AtomicBool::new(false),
        active: (0..shard_count).map(|_| AtomicBool::new(false)).collect(),
        delivered: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        bits: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        inboxes: [
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect(),
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect(),
        ],
    };

    let mut rounds_executed: u64 = 0;
    let mut trace: Vec<RoundTrace> = Vec::new();
    let mut limit_error: Option<SimError> = None;

    std::thread::scope(|scope| {
        for shard in shards.iter_mut() {
            let contexts = &contexts;
            let topo = &topo;
            let map = &map;
            let shared = &shared;
            let fs = fault_state.as_ref();
            scope.spawn(move || shard.work(config, topo, map, fs, contexts, shared));
        }

        // The coordinator: decide between the end barrier of one phase and
        // the start barrier of the next (workers are parked on the start
        // barrier while this code runs).
        loop {
            shared.barrier.wait(); // workers begin the current phase
            shared.barrier.wait(); // workers finished it
            let phase = shared.phase.load(Ordering::SeqCst);
            if phase > 0 {
                rounds_executed = phase;
                if config.trace {
                    let messages: u64 = shared
                        .delivered
                        .iter()
                        .map(|d| d.load(Ordering::SeqCst))
                        .sum();
                    let bits: u64 = shared.bits.iter().map(|b| b.load(Ordering::SeqCst)).sum();
                    trace.push(RoundTrace {
                        round: phase,
                        messages,
                        bits,
                    });
                }
            }
            if shared.any_error.load(Ordering::SeqCst) {
                shared.stop.store(true, Ordering::SeqCst);
            } else {
                let queued_work = shared.active.iter().any(|a| a.load(Ordering::SeqCst))
                    || shared.inboxes.iter().flatten().any(|m| {
                        !m.lock()
                            .expect("no worker panics while holding an inbox lock")
                            .is_empty()
                    });
                if !queued_work {
                    shared.stop.store(true, Ordering::SeqCst);
                } else if phase >= config.max_rounds {
                    limit_error = Some(SimError::RoundLimitExceeded {
                        limit: config.max_rounds,
                    });
                    shared.stop.store(true, Ordering::SeqCst);
                } else {
                    shared.phase.store(phase + 1, Ordering::SeqCst);
                }
            }
            if shared.stop.load(Ordering::SeqCst) {
                shared.barrier.wait(); // release workers into the stop check
                break;
            }
        }
    });

    // Shards are ordered by ascending node range, and the coordinator stops
    // at the end of the earliest failing phase, so the first failure found
    // here is the one the serial engine would have hit first. A caught
    // protocol panic is re-raised on this thread, exactly as the serial
    // engine would have let it propagate.
    for shard in &mut shards {
        if let Some(payload) = shard.panic.take() {
            std::panic::resume_unwind(payload);
        }
        if let Some(err) = shard.error.clone() {
            return Err(err);
        }
    }
    if let Some(err) = limit_error {
        return Err(err);
    }

    let mut stats = SimStats {
        rounds: rounds_executed,
        ..SimStats::default()
    };
    let mut nodes: Vec<P> = Vec::with_capacity(graph.node_count());
    // Per-thread probe buffers are merged here, after the scope ended, in
    // ascending shard order — the deterministic phase-boundary merge the
    // obs layer's contract asks for. Counters fold to the same totals as
    // the serial engine; per-shard splits and barrier timings go to
    // gauges/timers because they depend on the shard count.
    let probe_on = obs.is_on();
    let mut polls_total: u64 = 0;
    let mut staged_total: u64 = 0;
    let mut fault_counters = FaultCounters::default();
    let mut barrier_spans = SpanBuffer::new();
    for shard in shards {
        stats.messages += shard.stats.messages;
        stats.total_bits += shard.stats.total_bits;
        stats.max_message_bits = stats.max_message_bits.max(shard.stats.max_message_bits);
        if probe_on {
            polls_total += shard.polls;
            obs.gauge_set(
                &format!("engine/shard/{}/messages", shard.id),
                shard.stats.messages,
            );
            obs.gauge_set(
                &format!("engine/shard/{}/bits", shard.id),
                shard.stats.total_bits,
            );
            obs.gauge_set(&format!("engine/shard/{}/polls", shard.id), shard.polls);
            barrier_spans.record("engine/barrier_wait", shard.barrier_nanos);
            if let Some(sizes) = &shard.flush_sizes {
                staged_total += sizes.sum() as u64;
                obs.timer_merge("engine/staging_flush_size", sizes);
            }
            if let Some(f) = &shard.fault {
                fault_counters.absorb(&f.counters);
            }
        }
        nodes.extend(shard.nodes);
    }
    if probe_on {
        obs.merge_spans(&mut barrier_spans);
        record_run(obs, &stats, polls_total);
        if fault_state.is_some() {
            fault_counters.record(obs);
        }
        obs.gauge_set("engine/shards", shard_count as u64);
        obs.gauge_set("engine/staged_messages", staged_total);
    }

    Ok(SimOutcome {
        nodes,
        stats,
        trace,
    })
}
