//! Round-execution engines.
//!
//! [`crate::Simulator`] delegates its round loop to a [`RoundEngine`]:
//!
//! * [`serial::SerialEngine`] — the single-threaded reference
//!   implementation (the PR-3 edge-slot loop, unchanged);
//! * [`sharded::ShardedEngine`] — the same loop partitioned over `S`
//!   contiguous node shards executed by `std::thread::scope` workers.
//!
//! **Determinism is the invariant.** Both engines must produce
//! byte-identical [`crate::SimStats`], [`crate::RoundTrace`] sequences,
//! node states, and errors for every protocol and every shard count. The
//! sharded engine earns this by construction rather than by locking
//! discipline:
//!
//! * each directed edge has exactly one sender, so the per-slot
//!   duplicate-send stamp can live with the *sender's* shard (indexed by
//!   sender-side CSR position, which the `mirror` array maps bijectively
//!   onto recipient-side slots) — no two shards ever contend for a slot;
//! * cross-shard messages travel through per-shard staging buffers and are
//!   merged at the round barrier; since every slot is written at most once
//!   per round, the merge order cannot affect buffer contents;
//! * everything else an outside observer can see is an order-independent
//!   reduction: message/bit counters are sums, `max_message_bits` is a
//!   max, and per-round worklists are sorted before polling;
//! * errors are reported from the lowest-numbered shard of the earliest
//!   round, which (shards being contiguous, ascending node ranges) is
//!   exactly the node the serial engine would have failed on first.

pub(crate) mod serial;
pub(crate) mod sharded;

use lcs_graph::Graph;
use lcs_obs::Obs;

use crate::{NodeContext, NodeProtocol, SimConfig, SimOutcome, SimStats};

/// Which engine a [`crate::Simulator`] executes its rounds on. Derived from
/// [`SimConfig::threads`] and the graph size by
/// [`crate::Simulator::engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSelection {
    /// The single-threaded reference engine.
    Serial,
    /// The sharded engine with the given number of worker threads (each
    /// owning one contiguous node shard).
    Sharded {
        /// Worker-thread (equivalently, shard) count; always at least 2
        /// (one shard degenerates to [`EngineSelection::Serial`]).
        threads: usize,
    },
}

/// The round-execution core extracted from `Simulator::run`: everything
/// between "protocol states exist" and "quiescence or error".
pub(crate) trait RoundEngine {
    /// Number of node shards this engine partitions the graph into.
    fn shard_count(&self) -> usize;

    /// Runs `factory`-built nodes to quiescence under `config`, reporting
    /// probe data through `obs` (a no-op handle when recording is off).
    fn run<P, F>(
        &self,
        graph: &Graph,
        config: &SimConfig,
        obs: &Obs,
        factory: F,
    ) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol + Send,
        P::Message: Send,
        F: FnMut(&NodeContext) -> P;
}

/// Emits the thread-invariant counters of one successful run. Both engines
/// report through here so the counter names — and therefore the
/// deterministic half of a snapshot — cannot drift between them: rounds,
/// messages, bits, and active-node polls are identical for every shard
/// count by the determinism invariant. (`max_message_bits` is a max, not a
/// sum, so it lives in a gauge.)
pub(crate) fn record_run(obs: &Obs, stats: &SimStats, polls: u64) {
    obs.counter_add("engine/runs", 1);
    obs.counter_add("engine/rounds", stats.rounds);
    obs.counter_add("engine/messages", stats.messages);
    obs.counter_add("engine/bits", stats.total_bits);
    obs.counter_add("engine/polls", polls);
    obs.gauge_max("engine/max_message_bits", stats.max_message_bits as u64);
}

/// The read-only message-plane topology both engines index into: CSR slot
/// offsets plus the sender-position → recipient-slot `mirror` map. One slot
/// per directed edge, laid out in the graph's CSR order.
pub(crate) struct Topology {
    /// CSR offsets mirroring the graph's (`offset[v]..offset[v + 1]` are
    /// node `v`'s recipient-side slots). Length `n + 1`.
    pub(crate) offset: Vec<u32>,
    /// `mirror[p]`: for the sender-side position `p` (node `v`'s adjacency
    /// entry pointing at `w`), the recipient-side slot (`w`'s entry
    /// pointing back at `v`). Posting is one indexed store.
    pub(crate) mirror: Vec<u32>,
}

impl Topology {
    pub(crate) fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offset: Vec<u32> = Vec::with_capacity(n + 1);
        offset.push(0);
        for v in graph.nodes() {
            let last = *offset.last().expect("offset starts nonempty");
            offset.push(last + graph.degree(v) as u32);
        }
        let slots = *offset.last().expect("offset is nonempty") as usize;

        // slot_of[e] = recipient-side slot of edge e at [e.u, e.v].
        let mut slot_of = vec![[0u32; 2]; graph.edge_count()];
        for v in graph.nodes() {
            let base = offset[v.index()];
            for (k, &e) in graph.incident_edge_ids(v).iter().enumerate() {
                let side = usize::from(graph.edge(e).v == v);
                slot_of[e.index()][side] = base + k as u32;
            }
        }
        let mut mirror = vec![0u32; slots];
        for v in graph.nodes() {
            let base = offset[v.index()] as usize;
            let neighbors = graph.neighbor_ids(v);
            for (k, &e) in graph.incident_edge_ids(v).iter().enumerate() {
                let w = neighbors[k];
                mirror[base + k] = slot_of[e.index()][usize::from(graph.edge(e).v == w)];
            }
        }

        Topology { offset, mirror }
    }

    /// Total number of directed-edge slots.
    pub(crate) fn slots(&self) -> usize {
        *self.offset.last().expect("offset is nonempty") as usize
    }
}

/// Builds the per-node contexts (borrowed CSR views) in node order.
pub(crate) fn build_contexts(graph: &Graph) -> Vec<NodeContext<'_>> {
    let n = graph.node_count();
    graph
        .nodes()
        .map(|v| NodeContext::new(v, graph.neighbor_ids(v), graph.incident_edge_ids(v), n))
        .collect()
}
