//! The single-threaded reference engine: the PR-3 allocation-free edge-slot
//! round loop, verbatim. The sharded engine is validated against this one
//! (see `tests/determinism.rs` in this crate and in `lcs_dist`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lcs_graph::Graph;
use lcs_obs::Obs;

use crate::fault::{Delayed, FaultCounters, FaultState};
use crate::{
    Incoming, MessageBits, NodeContext, NodeProtocol, Outgoing, RoundTrace, SimConfig, SimError,
    SimOutcome, SimStats,
};

use super::{build_contexts, record_run, RoundEngine, Topology};

/// The serial round engine (unit struct: it has no tuning knobs).
pub(crate) struct SerialEngine;

impl RoundEngine for SerialEngine {
    fn shard_count(&self) -> usize {
        1
    }

    fn run<P, F>(
        &self,
        graph: &Graph,
        config: &SimConfig,
        obs: &Obs,
        factory: F,
    ) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol + Send,
        P::Message: Send,
        F: FnMut(&NodeContext) -> P,
    {
        run_protocol(graph, config, obs, factory)
    }
}

/// The preallocated message plane of one run: edge-slot buffers for the
/// current and next round, per-slot duplicate-send stamps, per-node inbox
/// counts, and the active-set worklists. No method allocates on the round
/// path (worklist pushes reuse capacity after the first rounds).
struct Network<M> {
    topo: Topology,
    /// Messages being delivered this round, one slot per directed edge.
    cur: Vec<Option<M>>,
    /// Messages accumulating for the next round.
    next: Vec<Option<M>>,
    /// Round number of the last post into each slot (`u64::MAX` = never);
    /// posting twice in the same round is the CONGEST duplicate-send error.
    stamp: Vec<u64>,
    /// Number of pending messages per recipient, current round.
    inbox_cur: Vec<u32>,
    /// Number of pending messages per recipient, next round.
    inbox_next: Vec<u32>,
    /// Whether a node is already on `worklist_next`.
    queued: Vec<bool>,
    /// Nodes to poll this round (sorted before polling).
    worklist_cur: Vec<u32>,
    /// Nodes that must be polled next round: message recipients plus nodes
    /// that reported pending work after their last poll.
    worklist_next: Vec<u32>,
    /// Messages / bits accumulated for the next round (for the trace).
    in_flight_next: u64,
    bits_next: u64,
}

impl<M: MessageBits> Network<M> {
    fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let topo = Topology::new(graph);
        let slots = topo.slots();
        Network {
            topo,
            cur: (0..slots).map(|_| None).collect(),
            next: (0..slots).map(|_| None).collect(),
            stamp: vec![u64::MAX; slots],
            inbox_cur: vec![0; n],
            inbox_next: vec![0; n],
            queued: vec![false; n],
            worklist_cur: Vec::new(),
            worklist_next: Vec::new(),
            in_flight_next: 0,
            bits_next: 0,
        }
    }

    /// Schedules `node` for the next round (idempotent).
    fn queue(&mut self, node: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.worklist_next.push(node as u32);
        }
    }

    /// Validates and enqueues one outgoing message for the next round.
    fn post(
        &mut self,
        config: &SimConfig,
        ctx: &NodeContext<'_>,
        out: Outgoing<M>,
        round: u64,
        stats: &mut SimStats,
    ) -> crate::Result<()> {
        let pos = ctx.position_of(out.to).ok_or(SimError::NotANeighbor {
            from: ctx.node,
            to: out.to,
        })?;
        let slot = self.topo.mirror[self.topo.offset[ctx.node.index()] as usize + pos] as usize;
        // Posting rounds strictly increase, so one stamp array covers both
        // buffers: an equal stamp can only mean "already sent this round".
        if self.stamp[slot] == round {
            return Err(SimError::DuplicateSend {
                from: ctx.node,
                to: out.to,
                round,
            });
        }
        self.stamp[slot] = round;
        let bits = out.msg.size_bits();
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from: ctx.node,
                to: out.to,
                message_bits: bits,
                bandwidth_bits: config.bandwidth_bits,
            });
        }
        stats.messages += 1;
        stats.total_bits += bits as u64;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        self.next[slot] = Some(out.msg);
        self.inbox_next[out.to.index()] += 1;
        self.in_flight_next += 1;
        self.bits_next += bits as u64;
        self.queue(out.to.index());
        Ok(())
    }

    /// Flips the next-round buffers in as the current round, returning the
    /// number of messages and bits being delivered. The worklist for the
    /// new round ends up in `worklist_cur`, sorted for deterministic
    /// polling order; its nodes' `queued` flags are cleared so they can be
    /// re-scheduled.
    fn begin_round(&mut self) -> (u64, u64) {
        std::mem::swap(&mut self.cur, &mut self.next);
        std::mem::swap(&mut self.inbox_cur, &mut self.inbox_next);
        std::mem::swap(&mut self.worklist_cur, &mut self.worklist_next);
        self.worklist_next.clear();
        for &v in &self.worklist_cur {
            self.queued[v as usize] = false;
        }
        self.worklist_cur.sort_unstable();
        let delivered = self.in_flight_next;
        let bits = self.bits_next;
        self.in_flight_next = 0;
        self.bits_next = 0;
        (delivered, bits)
    }

    /// Moves node `idx`'s pending messages into `scratch` (cleared first).
    fn drain_into(&mut self, idx: usize, ctx: &NodeContext<'_>, scratch: &mut Vec<Incoming<M>>) {
        scratch.clear();
        if self.inbox_cur[idx] == 0 {
            return;
        }
        let base = self.topo.offset[idx] as usize;
        let end = self.topo.offset[idx + 1] as usize;
        let neighbors = ctx.neighbor_ids();
        let edges = ctx.incident_edge_ids();
        for p in base..end {
            if let Some(msg) = self.cur[p].take() {
                scratch.push(Incoming {
                    from: neighbors[p - base],
                    edge: edges[p - base],
                    msg,
                });
            }
        }
        self.inbox_cur[idx] = 0;
    }
}

/// The serial round loop, callable without `Send` bounds (this is what
/// [`crate::Simulator::run_serial`] exposes for non-`Send` protocols).
pub(crate) fn run_protocol<P, F>(
    graph: &Graph,
    config: &SimConfig,
    obs: &Obs,
    mut factory: F,
) -> crate::Result<SimOutcome<P>>
where
    P: NodeProtocol,
    F: FnMut(&NodeContext) -> P,
{
    if let Some(plan) = config.active_fault() {
        let state = FaultState::new(&plan, graph);
        return run_protocol_faulty(graph, config, &state, obs, factory);
    }
    let contexts = build_contexts(graph);
    let mut nodes: Vec<P> = contexts.iter().map(&mut factory).collect();
    let mut stats = SimStats::default();
    let mut trace: Vec<RoundTrace> = Vec::new();
    let mut net: Network<P::Message> = Network::new(graph);
    let mut scratch: Vec<Incoming<P::Message>> = Vec::new();
    // Timed wake-ups from NodeProtocol::next_wake, keyed by round.
    // Stale entries (a node woken earlier by a message) cause a spurious
    // poll, which the next_wake contract makes harmless.
    let mut wakes: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        std::collections::BinaryHeap::new();

    // Initialization: nodes may already emit messages; every node that
    // reports pending work is scheduled for round 1 (or its requested
    // wake round).
    for (idx, (state, ctx)) in nodes.iter_mut().zip(&contexts).enumerate() {
        let outgoing = state.init(ctx);
        for out in outgoing {
            net.post(config, ctx, out, 0, &mut stats)?;
        }
        if !state.is_done() {
            match state.next_wake(0) {
                Some(r) if r > 1 => wakes.push(std::cmp::Reverse((r, idx as u32))),
                _ => net.queue(idx),
            }
        }
    }

    let mut round: u64 = 0;
    // Active-node polls: one per worklist entry per round. A plain local
    // add — the obs registry is only touched once, after quiescence.
    let mut polls: u64 = 0;
    // The schedule is exhaustive: every message recipient, every node
    // with immediate pending work, and every timed wake-up is recorded,
    // so "no queued node and no pending wake" is exactly the old "no
    // message in flight and all nodes done" condition.
    while !net.worklist_next.is_empty() || !wakes.is_empty() {
        if round >= config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        round += 1;

        while let Some(&std::cmp::Reverse((due, idx))) = wakes.peek() {
            if due > round {
                break;
            }
            wakes.pop();
            net.queue(idx as usize);
        }
        let (delivered, bits) = net.begin_round();
        if config.trace {
            trace.push(RoundTrace {
                round,
                messages: delivered,
                bits,
            });
        }
        let worklist = std::mem::take(&mut net.worklist_cur);
        polls += worklist.len() as u64;
        for &vi in &worklist {
            let idx = vi as usize;
            let ctx = &contexts[idx];
            net.drain_into(idx, ctx, &mut scratch);
            let outgoing = nodes[idx].on_round(ctx, round, &scratch);
            for out in outgoing {
                net.post(config, ctx, out, round, &mut stats)?;
            }
            if !nodes[idx].is_done() {
                match nodes[idx].next_wake(round) {
                    Some(r) if r > round + 1 => {
                        wakes.push(std::cmp::Reverse((r, idx as u32)));
                    }
                    _ => net.queue(idx),
                }
            }
        }
        net.worklist_cur = worklist;
    }

    stats.rounds = round;
    if obs.is_on() {
        record_run(obs, &stats, polls);
        obs.gauge_set("engine/shards", 1);
        obs.gauge_set("engine/shard/0/messages", stats.messages);
        obs.gauge_set("engine/shard/0/bits", stats.total_bits);
        obs.gauge_set("engine/shard/0/polls", polls);
    }
    Ok(SimOutcome {
        nodes,
        stats,
        trace,
    })
}

/// The message plane of a faulty run: the delivery queue replaces the
/// edge-slot mailbox buffers (a slot can carry several in-flight messages
/// once latency and duplication are on), while the duplicate-send stamps
/// and the worklist machinery are identical to the fault-free plane. Heap
/// entries pop in `(due, slot, posted)` order, so each node's per-round
/// incoming list is slot-ordered — the same order `drain_into` produces —
/// with a slot's multiple copies ordered by posting round. Unlike the
/// fault-free plane this one allocates per-node inbox vectors; fault
/// injection is a diagnostics mode, not a hot path.
struct FaultNet<M> {
    topo: Topology,
    /// Duplicate-send stamps, recipient-side slot indexed (as in
    /// [`Network`]).
    stamp: Vec<u64>,
    queued: Vec<bool>,
    worklist_cur: Vec<u32>,
    worklist_next: Vec<u32>,
    /// The delivery queue, ordered by `(due, slot, posted)`.
    heap: BinaryHeap<Reverse<Delayed<M>>>,
    /// Messages delivered to each node this round (cleared after polling).
    inboxes: Vec<Vec<Incoming<M>>>,
}

impl<M: MessageBits + Clone> FaultNet<M> {
    fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let topo = Topology::new(graph);
        let slots = topo.slots();
        FaultNet {
            topo,
            stamp: vec![u64::MAX; slots],
            queued: vec![false; n],
            worklist_cur: Vec::new(),
            worklist_next: Vec::new(),
            heap: BinaryHeap::new(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn queue(&mut self, node: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.worklist_next.push(node as u32);
        }
    }

    /// Validates one outgoing message exactly as the fault-free plane
    /// does, then routes it through the fault schedule: a loss draw, the
    /// edge's fixed delay, alignment to the recipient's poll rounds, and
    /// an optional duplicate one poll later.
    #[allow(clippy::too_many_arguments)]
    fn post(
        &mut self,
        config: &SimConfig,
        fs: &FaultState,
        counters: &mut FaultCounters,
        ctx: &NodeContext<'_>,
        out: Outgoing<M>,
        round: u64,
        stats: &mut SimStats,
    ) -> crate::Result<()> {
        let pos = ctx.position_of(out.to).ok_or(SimError::NotANeighbor {
            from: ctx.node,
            to: out.to,
        })?;
        let slot = self.topo.mirror[self.topo.offset[ctx.node.index()] as usize + pos];
        if self.stamp[slot as usize] == round {
            return Err(SimError::DuplicateSend {
                from: ctx.node,
                to: out.to,
                round,
            });
        }
        self.stamp[slot as usize] = round;
        let bits = out.msg.size_bits();
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from: ctx.node,
                to: out.to,
                message_bits: bits,
                bandwidth_bits: config.bandwidth_bits,
            });
        }
        // Under faults `stats.messages` counts *sends*; deliveries (which
        // loss shrinks and duplication grows) are what the trace counts.
        stats.messages += 1;
        stats.total_bits += bits as u64;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        if fs.lose(u64::from(slot), round) {
            counters.drops += 1;
            return Ok(());
        }
        let to = out.to.index();
        let delay = fs.delay_of(ctx.incident_edge_ids()[pos].index());
        if delay > 0 {
            counters.delays += 1;
        }
        let due = fs.next_poll(to, round + 1 + delay);
        let dup = fs.duplicate(u64::from(slot), round);
        if dup {
            counters.dups += 1;
            self.heap.push(Reverse(Delayed {
                due: fs.next_poll(to, due + 1),
                slot,
                posted: round,
                to: to as u32,
                bits: bits as u64,
                msg: out.msg.clone(),
            }));
        }
        self.heap.push(Reverse(Delayed {
            due,
            slot,
            posted: round,
            to: to as u32,
            bits: bits as u64,
            msg: out.msg,
        }));
        Ok(())
    }
}

/// Maps a node's `next_wake` answer through its poll schedule: stragglers
/// can only be polled on their poll rounds, so the effective wake round is
/// the first poll round at or after the requested one (a late wake is
/// exactly the straggler fault; the protocol layer budgets for it).
fn fault_wake<P: NodeProtocol>(
    fs: &FaultState,
    wakes: &mut BinaryHeap<Reverse<(u64, u32)>>,
    net_queue: &mut dyn FnMut(usize),
    state: &P,
    idx: usize,
    round: u64,
) {
    let target = match state.next_wake(round) {
        Some(r) => r.max(round + 1),
        None => round + 1,
    };
    let due = fs.next_poll(idx, target);
    if due > round + 1 {
        wakes.push(Reverse((due, idx as u32)));
    } else {
        net_queue(idx);
    }
}

/// The serial round loop under an active [`crate::FaultPlan`]: the same
/// schedule as the fault-free loop, with deliveries routed through the
/// [`FaultNet`] delivery queue, crashed nodes skipped (their mail
/// dropped), and restarts executed as a fresh `init` at the restart round.
fn run_protocol_faulty<P, F>(
    graph: &Graph,
    config: &SimConfig,
    fs: &FaultState,
    obs: &Obs,
    mut factory: F,
) -> crate::Result<SimOutcome<P>>
where
    P: NodeProtocol,
    F: FnMut(&NodeContext) -> P,
{
    let contexts = build_contexts(graph);
    let mut nodes: Vec<P> = contexts.iter().map(&mut factory).collect();
    // Fresh states for restartable crash nodes, created in ascending node
    // order *after* the main factory pass — the sharded engine makes the
    // identical call sequence, so stateful factories agree.
    let restart_round = fs.restart_local_round();
    let mut spares: Vec<(u32, Option<P>)> = if restart_round.is_some() {
        fs.crash_nodes()
            .iter()
            .map(|&v| (v, Some(factory(&contexts[v as usize]))))
            .collect()
    } else {
        Vec::new()
    };
    let mut stats = SimStats::default();
    let mut trace: Vec<RoundTrace> = Vec::new();
    let mut counters = FaultCounters::default();
    let mut net: FaultNet<P::Message> = FaultNet::new(graph);
    let mut wakes: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    for (idx, (state, ctx)) in nodes.iter_mut().zip(&contexts).enumerate() {
        if fs.crashed_at(idx, 0) {
            continue;
        }
        let outgoing = state.init(ctx);
        for out in outgoing {
            net.post(config, fs, &mut counters, ctx, out, 0, &mut stats)?;
        }
        if !state.is_done() {
            let queued = &mut net.queued;
            let worklist = &mut net.worklist_next;
            fault_wake(
                fs,
                &mut wakes,
                &mut |i| {
                    if !queued[i] {
                        queued[i] = true;
                        worklist.push(i as u32);
                    }
                },
                state,
                idx,
                0,
            );
        }
    }
    if let Some(r) = restart_round {
        for &v in fs.crash_nodes() {
            wakes.push(Reverse((r, v)));
        }
    }

    let mut round: u64 = 0;
    let mut polls: u64 = 0;
    while !net.worklist_next.is_empty() || !wakes.is_empty() || !net.heap.is_empty() {
        if round >= config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        round += 1;

        while let Some(&Reverse((due, idx))) = wakes.peek() {
            if due > round {
                break;
            }
            wakes.pop();
            net.queue(idx as usize);
        }
        counters.queue_peak = counters.queue_peak.max(net.heap.len() as u64);
        let mut delivered: u64 = 0;
        let mut bits: u64 = 0;
        while net.heap.peek().is_some_and(|Reverse(d)| d.due <= round) {
            let Reverse(d) = net.heap.pop().expect("peeked entry exists");
            debug_assert_eq!(d.due, round, "delivery rounds are never skipped");
            let to = d.to as usize;
            if fs.crashed_at(to, round) {
                counters.crash_drops += 1;
                continue;
            }
            delivered += 1;
            bits += d.bits;
            let base = net.topo.offset[to] as usize;
            let k = d.slot as usize - base;
            let ctx = &contexts[to];
            net.inboxes[to].push(Incoming {
                from: ctx.neighbor_ids()[k],
                edge: ctx.incident_edge_ids()[k],
                msg: d.msg,
            });
            net.queue(to);
        }
        std::mem::swap(&mut net.worklist_cur, &mut net.worklist_next);
        net.worklist_next.clear();
        for &v in &net.worklist_cur {
            net.queued[v as usize] = false;
        }
        net.worklist_cur.sort_unstable();
        if config.trace {
            trace.push(RoundTrace {
                round,
                messages: delivered,
                bits,
            });
        }
        let worklist = std::mem::take(&mut net.worklist_cur);
        for &vi in &worklist {
            let idx = vi as usize;
            if fs.crashed_at(idx, round) {
                net.inboxes[idx].clear();
                continue;
            }
            let ctx = &contexts[idx];
            if restart_round == Some(round) && fs.is_crash_node(idx) {
                // Restart: swap in the cleared state and run its `init` at
                // this round; whatever mail arrived alongside is lost with
                // the old state.
                if let Some(spare) = spares
                    .iter_mut()
                    .find(|(v, _)| *v as usize == idx)
                    .and_then(|(_, s)| s.take())
                {
                    nodes[idx] = spare;
                    counters.restarts += 1;
                }
                net.inboxes[idx].clear();
                polls += 1;
                let outgoing = nodes[idx].init(ctx);
                for out in outgoing {
                    net.post(config, fs, &mut counters, ctx, out, round, &mut stats)?;
                }
            } else {
                let incoming = std::mem::take(&mut net.inboxes[idx]);
                polls += 1;
                let outgoing = nodes[idx].on_round(ctx, round, &incoming);
                let mut incoming = incoming;
                incoming.clear();
                net.inboxes[idx] = incoming;
                for out in outgoing {
                    net.post(config, fs, &mut counters, ctx, out, round, &mut stats)?;
                }
            }
            if !nodes[idx].is_done() {
                let queued = &mut net.queued;
                let worklist_next = &mut net.worklist_next;
                fault_wake(
                    fs,
                    &mut wakes,
                    &mut |i| {
                        if !queued[i] {
                            queued[i] = true;
                            worklist_next.push(i as u32);
                        }
                    },
                    &nodes[idx],
                    idx,
                    round,
                );
            }
        }
        net.worklist_cur = worklist;
    }

    stats.rounds = round;
    if obs.is_on() {
        record_run(obs, &stats, polls);
        counters.record(obs);
        obs.gauge_set("engine/shards", 1);
        obs.gauge_set("engine/shard/0/messages", stats.messages);
        obs.gauge_set("engine/shard/0/bits", stats.total_bits);
        obs.gauge_set("engine/shard/0/polls", polls);
    }
    Ok(SimOutcome {
        nodes,
        stats,
        trace,
    })
}
