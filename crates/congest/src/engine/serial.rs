//! The single-threaded reference engine: the PR-3 allocation-free edge-slot
//! round loop, verbatim. The sharded engine is validated against this one
//! (see `tests/determinism.rs` in this crate and in `lcs_dist`).

use lcs_graph::Graph;
use lcs_obs::Obs;

use crate::{
    Incoming, MessageBits, NodeContext, NodeProtocol, Outgoing, RoundTrace, SimConfig, SimError,
    SimOutcome, SimStats,
};

use super::{build_contexts, record_run, RoundEngine, Topology};

/// The serial round engine (unit struct: it has no tuning knobs).
pub(crate) struct SerialEngine;

impl RoundEngine for SerialEngine {
    fn shard_count(&self) -> usize {
        1
    }

    fn run<P, F>(
        &self,
        graph: &Graph,
        config: &SimConfig,
        obs: &Obs,
        factory: F,
    ) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol + Send,
        P::Message: Send,
        F: FnMut(&NodeContext) -> P,
    {
        run_protocol(graph, config, obs, factory)
    }
}

/// The preallocated message plane of one run: edge-slot buffers for the
/// current and next round, per-slot duplicate-send stamps, per-node inbox
/// counts, and the active-set worklists. No method allocates on the round
/// path (worklist pushes reuse capacity after the first rounds).
struct Network<M> {
    topo: Topology,
    /// Messages being delivered this round, one slot per directed edge.
    cur: Vec<Option<M>>,
    /// Messages accumulating for the next round.
    next: Vec<Option<M>>,
    /// Round number of the last post into each slot (`u64::MAX` = never);
    /// posting twice in the same round is the CONGEST duplicate-send error.
    stamp: Vec<u64>,
    /// Number of pending messages per recipient, current round.
    inbox_cur: Vec<u32>,
    /// Number of pending messages per recipient, next round.
    inbox_next: Vec<u32>,
    /// Whether a node is already on `worklist_next`.
    queued: Vec<bool>,
    /// Nodes to poll this round (sorted before polling).
    worklist_cur: Vec<u32>,
    /// Nodes that must be polled next round: message recipients plus nodes
    /// that reported pending work after their last poll.
    worklist_next: Vec<u32>,
    /// Messages / bits accumulated for the next round (for the trace).
    in_flight_next: u64,
    bits_next: u64,
}

impl<M: MessageBits> Network<M> {
    fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let topo = Topology::new(graph);
        let slots = topo.slots();
        Network {
            topo,
            cur: (0..slots).map(|_| None).collect(),
            next: (0..slots).map(|_| None).collect(),
            stamp: vec![u64::MAX; slots],
            inbox_cur: vec![0; n],
            inbox_next: vec![0; n],
            queued: vec![false; n],
            worklist_cur: Vec::new(),
            worklist_next: Vec::new(),
            in_flight_next: 0,
            bits_next: 0,
        }
    }

    /// Schedules `node` for the next round (idempotent).
    fn queue(&mut self, node: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.worklist_next.push(node as u32);
        }
    }

    /// Validates and enqueues one outgoing message for the next round.
    fn post(
        &mut self,
        config: &SimConfig,
        ctx: &NodeContext<'_>,
        out: Outgoing<M>,
        round: u64,
        stats: &mut SimStats,
    ) -> crate::Result<()> {
        let pos = ctx.position_of(out.to).ok_or(SimError::NotANeighbor {
            from: ctx.node,
            to: out.to,
        })?;
        let slot = self.topo.mirror[self.topo.offset[ctx.node.index()] as usize + pos] as usize;
        // Posting rounds strictly increase, so one stamp array covers both
        // buffers: an equal stamp can only mean "already sent this round".
        if self.stamp[slot] == round {
            return Err(SimError::DuplicateSend {
                from: ctx.node,
                to: out.to,
                round,
            });
        }
        self.stamp[slot] = round;
        let bits = out.msg.size_bits();
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from: ctx.node,
                to: out.to,
                message_bits: bits,
                bandwidth_bits: config.bandwidth_bits,
            });
        }
        stats.messages += 1;
        stats.total_bits += bits as u64;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        self.next[slot] = Some(out.msg);
        self.inbox_next[out.to.index()] += 1;
        self.in_flight_next += 1;
        self.bits_next += bits as u64;
        self.queue(out.to.index());
        Ok(())
    }

    /// Flips the next-round buffers in as the current round, returning the
    /// number of messages and bits being delivered. The worklist for the
    /// new round ends up in `worklist_cur`, sorted for deterministic
    /// polling order; its nodes' `queued` flags are cleared so they can be
    /// re-scheduled.
    fn begin_round(&mut self) -> (u64, u64) {
        std::mem::swap(&mut self.cur, &mut self.next);
        std::mem::swap(&mut self.inbox_cur, &mut self.inbox_next);
        std::mem::swap(&mut self.worklist_cur, &mut self.worklist_next);
        self.worklist_next.clear();
        for &v in &self.worklist_cur {
            self.queued[v as usize] = false;
        }
        self.worklist_cur.sort_unstable();
        let delivered = self.in_flight_next;
        let bits = self.bits_next;
        self.in_flight_next = 0;
        self.bits_next = 0;
        (delivered, bits)
    }

    /// Moves node `idx`'s pending messages into `scratch` (cleared first).
    fn drain_into(&mut self, idx: usize, ctx: &NodeContext<'_>, scratch: &mut Vec<Incoming<M>>) {
        scratch.clear();
        if self.inbox_cur[idx] == 0 {
            return;
        }
        let base = self.topo.offset[idx] as usize;
        let end = self.topo.offset[idx + 1] as usize;
        let neighbors = ctx.neighbor_ids();
        let edges = ctx.incident_edge_ids();
        for p in base..end {
            if let Some(msg) = self.cur[p].take() {
                scratch.push(Incoming {
                    from: neighbors[p - base],
                    edge: edges[p - base],
                    msg,
                });
            }
        }
        self.inbox_cur[idx] = 0;
    }
}

/// The serial round loop, callable without `Send` bounds (this is what
/// [`crate::Simulator::run_serial`] exposes for non-`Send` protocols).
pub(crate) fn run_protocol<P, F>(
    graph: &Graph,
    config: &SimConfig,
    obs: &Obs,
    mut factory: F,
) -> crate::Result<SimOutcome<P>>
where
    P: NodeProtocol,
    F: FnMut(&NodeContext) -> P,
{
    let contexts = build_contexts(graph);
    let mut nodes: Vec<P> = contexts.iter().map(&mut factory).collect();
    let mut stats = SimStats::default();
    let mut trace: Vec<RoundTrace> = Vec::new();
    let mut net: Network<P::Message> = Network::new(graph);
    let mut scratch: Vec<Incoming<P::Message>> = Vec::new();
    // Timed wake-ups from NodeProtocol::next_wake, keyed by round.
    // Stale entries (a node woken earlier by a message) cause a spurious
    // poll, which the next_wake contract makes harmless.
    let mut wakes: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        std::collections::BinaryHeap::new();

    // Initialization: nodes may already emit messages; every node that
    // reports pending work is scheduled for round 1 (or its requested
    // wake round).
    for (idx, (state, ctx)) in nodes.iter_mut().zip(&contexts).enumerate() {
        let outgoing = state.init(ctx);
        for out in outgoing {
            net.post(config, ctx, out, 0, &mut stats)?;
        }
        if !state.is_done() {
            match state.next_wake(0) {
                Some(r) if r > 1 => wakes.push(std::cmp::Reverse((r, idx as u32))),
                _ => net.queue(idx),
            }
        }
    }

    let mut round: u64 = 0;
    // Active-node polls: one per worklist entry per round. A plain local
    // add — the obs registry is only touched once, after quiescence.
    let mut polls: u64 = 0;
    // The schedule is exhaustive: every message recipient, every node
    // with immediate pending work, and every timed wake-up is recorded,
    // so "no queued node and no pending wake" is exactly the old "no
    // message in flight and all nodes done" condition.
    while !net.worklist_next.is_empty() || !wakes.is_empty() {
        if round >= config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        round += 1;

        while let Some(&std::cmp::Reverse((due, idx))) = wakes.peek() {
            if due > round {
                break;
            }
            wakes.pop();
            net.queue(idx as usize);
        }
        let (delivered, bits) = net.begin_round();
        if config.trace {
            trace.push(RoundTrace {
                round,
                messages: delivered,
                bits,
            });
        }
        let worklist = std::mem::take(&mut net.worklist_cur);
        polls += worklist.len() as u64;
        for &vi in &worklist {
            let idx = vi as usize;
            let ctx = &contexts[idx];
            net.drain_into(idx, ctx, &mut scratch);
            let outgoing = nodes[idx].on_round(ctx, round, &scratch);
            for out in outgoing {
                net.post(config, ctx, out, round, &mut stats)?;
            }
            if !nodes[idx].is_done() {
                match nodes[idx].next_wake(round) {
                    Some(r) if r > round + 1 => {
                        wakes.push(std::cmp::Reverse((r, idx as u32)));
                    }
                    _ => net.queue(idx),
                }
            }
        }
        net.worklist_cur = worklist;
    }

    stats.rounds = round;
    if obs.is_on() {
        record_run(obs, &stats, polls);
        obs.gauge_set("engine/shards", 1);
        obs.gauge_set("engine/shard/0/messages", stats.messages);
        obs.gauge_set("engine/shard/0/bits", stats.total_bits);
        obs.gauge_set("engine/shard/0/polls", polls);
    }
    Ok(SimOutcome {
        nodes,
        stats,
        trace,
    })
}
