//! Simulator error type.

use std::error::Error;
use std::fmt;

use lcs_graph::NodeId;

/// Errors raised while executing a protocol on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node attempted to send a message to a node that is not its
    /// neighbor.
    NotANeighbor {
        /// The sending node.
        from: NodeId,
        /// The intended (non-adjacent) recipient.
        to: NodeId,
    },
    /// A node attempted to send two messages to the same neighbor in one
    /// round.
    DuplicateSend {
        /// The sending node.
        from: NodeId,
        /// The recipient that would have received two messages.
        to: NodeId,
        /// The round in which the violation happened.
        round: u64,
    },
    /// A message exceeded the per-edge per-round bandwidth.
    BandwidthExceeded {
        /// The sending node.
        from: NodeId,
        /// The recipient.
        to: NodeId,
        /// The size of the offending message in bits.
        message_bits: usize,
        /// The configured bandwidth in bits.
        bandwidth_bits: usize,
    },
    /// The protocol did not reach quiescence within the configured round
    /// budget.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A protocol-level invariant was violated (used by protocol
    /// implementations to surface internal errors).
    Protocol {
        /// Human readable description.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::DuplicateSend { from, to, round } => {
                write!(f, "node {from} sent two messages to {to} in round {round}")
            }
            SimError::BandwidthExceeded { from, to, message_bits, bandwidth_bits } => write!(
                f,
                "message of {message_bits} bits from {from} to {to} exceeds the {bandwidth_bits}-bit bandwidth"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            SimError::Protocol { reason } => write!(f, "protocol error: {reason}"),
        }
    }
}

impl Error for SimError {}

impl From<SimError> for lcs_graph::LcsError {
    fn from(err: SimError) -> Self {
        lcs_graph::LcsError::Simulation {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SimError::BandwidthExceeded {
            from: NodeId::new(1),
            to: NodeId::new(2),
            message_bits: 80,
            bandwidth_bits: 32,
        };
        assert!(err.to_string().contains("80 bits"));
        assert!(err.to_string().contains("32-bit"));
        let err = SimError::RoundLimitExceeded { limit: 10 };
        assert!(err.to_string().contains("10 rounds"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
