//! The synchronous round loop.

use lcs_graph::Graph;

use crate::{Incoming, MessageBits, NodeContext, NodeProtocol, Outgoing, SimError};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-edge, per-direction, per-round bandwidth in bits (the `O(log n)`
    /// of the CONGEST model).
    pub bandwidth_bits: usize,
    /// Hard cap on the number of simulated rounds; exceeding it is reported
    /// as [`SimError::RoundLimitExceeded`] so buggy protocols fail loudly
    /// instead of spinning forever.
    pub max_rounds: u64,
    /// When `true`, the simulator records one [`RoundTrace`] entry per
    /// executed round in [`SimOutcome::trace`] — the per-round message and
    /// bit counts a protocol author needs when debugging a multi-phase
    /// protocol. Off by default because traces of long runs are large.
    pub trace: bool,
}

impl SimConfig {
    /// A standard CONGEST configuration for the given graph: bandwidth
    /// `4⌈log₂ n⌉ + 64` bits (room for a tagged identifier pair plus a
    /// 64-bit value, the usual "O(log n) bits" reading) and a generous round
    /// cap of `64 · n + 1024`.
    pub fn for_graph(graph: &Graph) -> Self {
        let id_bits = crate::bits_for_node_count(graph.node_count());
        SimConfig {
            bandwidth_bits: 4 * id_bits + 64,
            max_rounds: 64 * graph.node_count() as u64 + 1024,
            trace: false,
        }
    }

    /// Overrides the round cap.
    ///
    /// The default cap of [`SimConfig::for_graph`] (`64·n + 1024`) is sized
    /// for single-phase protocols; multi-phase protocols (such as the
    /// windowed superstep protocols of `lcs_dist`) must compute their own
    /// round budget and pass it through here rather than silently inheriting
    /// the default.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the bandwidth.
    pub fn with_bandwidth_bits(mut self, bandwidth_bits: usize) -> Self {
        self.bandwidth_bits = bandwidth_bits;
        self
    }

    /// Enables per-round tracing (see [`SimConfig::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One entry of the optional per-round trace: what the network delivered in
/// a single synchronous round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// The round number (1-based; round 0 is initialization).
    pub round: u64,
    /// Number of messages delivered in this round.
    pub messages: u64,
    /// Total bits delivered in this round.
    pub bits: u64,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of synchronous rounds executed until quiescence.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of message bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
}

/// The result of running a protocol to quiescence.
#[derive(Debug, Clone)]
pub struct SimOutcome<P> {
    /// The final per-node protocol states, indexed by node id.
    pub nodes: Vec<P>,
    /// Run statistics (rounds, messages, bits).
    pub stats: SimStats,
    /// Per-round delivery trace; empty unless [`SimConfig::trace`] is set.
    pub trace: Vec<RoundTrace>,
}

/// A synchronous CONGEST simulator bound to a graph.
#[derive(Debug, Clone)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with the given configuration.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Simulator { graph, config }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Runs a protocol to quiescence: every node is instantiated via
    /// `factory`, `init` is called once, and rounds are executed until no
    /// node has pending work and no message is in flight.
    ///
    /// # Errors
    ///
    /// Returns an error if a node violates the CONGEST constraints (sends to
    /// a non-neighbor, sends twice over the same edge in a round, or exceeds
    /// the bandwidth), or if the round cap is reached.
    pub fn run<P, F>(&self, mut factory: F) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol,
        F: FnMut(&NodeContext) -> P,
    {
        let n = self.graph.node_count();
        let contexts: Vec<NodeContext> = self
            .graph
            .nodes()
            .map(|v| NodeContext {
                node: v,
                neighbors: self.graph.neighbors(v).collect(),
                node_count_bound: n,
            })
            .collect();
        let mut nodes: Vec<P> = contexts.iter().map(&mut factory).collect();
        let mut stats = SimStats::default();
        let mut trace: Vec<RoundTrace> = Vec::new();

        // Mailboxes for the next round, indexed by recipient.
        let mut inboxes: Vec<Vec<Incoming<P::Message>>> = vec![Vec::new(); n];

        // Initialization: nodes may already emit messages.
        for (state, ctx) in nodes.iter_mut().zip(&contexts) {
            let outgoing = state.init(ctx);
            self.post(ctx, outgoing, 0, &mut inboxes, &mut stats)?;
        }

        let mut round: u64 = 0;
        loop {
            let in_flight: usize = inboxes.iter().map(Vec::len).sum();
            let all_done = nodes.iter().all(NodeProtocol::is_done);
            if in_flight == 0 && all_done {
                break;
            }
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            round += 1;

            // Deliver this round's messages and collect next round's sends.
            let current: Vec<Vec<Incoming<P::Message>>> =
                std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
            if self.config.trace {
                let bits: u64 = current
                    .iter()
                    .flatten()
                    .map(|m| m.msg.size_bits() as u64)
                    .sum();
                trace.push(RoundTrace {
                    round,
                    messages: in_flight as u64,
                    bits,
                });
            }
            for (idx, incoming) in current.into_iter().enumerate() {
                let ctx = &contexts[idx];
                let outgoing = nodes[idx].on_round(ctx, round, &incoming);
                self.post(ctx, outgoing, round, &mut inboxes, &mut stats)?;
            }
        }

        stats.rounds = round;
        Ok(SimOutcome {
            nodes,
            stats,
            trace,
        })
    }

    /// Validates and enqueues a node's outgoing messages.
    fn post<M: Clone + MessageBits>(
        &self,
        ctx: &NodeContext,
        outgoing: Vec<Outgoing<M>>,
        round: u64,
        inboxes: &mut [Vec<Incoming<M>>],
        stats: &mut SimStats,
    ) -> crate::Result<()> {
        let mut sent_to = Vec::with_capacity(outgoing.len());
        for out in outgoing {
            let edge = ctx.edge_to(out.to).ok_or(SimError::NotANeighbor {
                from: ctx.node,
                to: out.to,
            })?;
            if sent_to.contains(&out.to) {
                return Err(SimError::DuplicateSend {
                    from: ctx.node,
                    to: out.to,
                    round,
                });
            }
            sent_to.push(out.to);
            let bits = out.msg.size_bits();
            if bits > self.config.bandwidth_bits {
                return Err(SimError::BandwidthExceeded {
                    from: ctx.node,
                    to: out.to,
                    message_bits: bits,
                    bandwidth_bits: self.config.bandwidth_bits,
                });
            }
            stats.messages += 1;
            stats.total_bits += bits as u64;
            stats.max_message_bits = stats.max_message_bits.max(bits);
            inboxes[out.to.index()].push(Incoming {
                from: ctx.node,
                edge,
                msg: out.msg,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, NodeId};

    /// A protocol where every node floods a token once and counts how many
    /// tokens it receives.
    #[derive(Debug)]
    struct FloodOnce {
        received: usize,
        started: bool,
    }

    impl NodeProtocol for FloodOnce {
        type Message = ();

        fn init(&mut self, ctx: &NodeContext) -> Vec<Outgoing<()>> {
            self.started = true;
            ctx.neighbors
                .iter()
                .map(|&(v, _)| Outgoing::new(v, ()))
                .collect()
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            _round: u64,
            incoming: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            self.received += incoming.len();
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.started
        }
    }

    #[test]
    fn flood_once_delivers_one_message_per_edge_direction() {
        let g = generators::cycle(8);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.messages, 2 * g.edge_count() as u64);
        for node in &outcome.nodes {
            assert_eq!(node.received, 2);
        }
    }

    /// A protocol that (incorrectly) sends to a fixed node id regardless of
    /// adjacency, to exercise error reporting.
    #[derive(Debug)]
    struct BadSender;

    impl NodeProtocol for BadSender {
        type Message = ();

        fn init(&mut self, ctx: &NodeContext) -> Vec<Outgoing<()>> {
            if ctx.node == NodeId::new(0) {
                vec![Outgoing::new(NodeId::new(3), ())]
            } else {
                Vec::new()
            }
        }

        fn on_round(&mut self, _: &NodeContext, _: u64, _: &[Incoming<()>]) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        // Path 0-1-2-3: node 0 is not adjacent to node 3.
        let g = generators::path(4);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let err = sim.run(|_| BadSender).unwrap_err();
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: NodeId::new(0),
                to: NodeId::new(3)
            }
        );
    }

    /// A protocol that sends one oversized message.
    #[derive(Debug)]
    struct BigTalker;

    impl NodeProtocol for BigTalker {
        type Message = (u64, u64);

        fn init(&mut self, ctx: &NodeContext) -> Vec<Outgoing<(u64, u64)>> {
            ctx.neighbors
                .iter()
                .take(1)
                .map(|&(v, _)| Outgoing::new(v, (0, 0)))
                .collect()
        }

        fn on_round(
            &mut self,
            _: &NodeContext,
            _: u64,
            _: &[Incoming<(u64, u64)>],
        ) -> Vec<Outgoing<(u64, u64)>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let g = generators::path(3);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_bandwidth_bits(32));
        let err = sim.run(|_| BigTalker).unwrap_err();
        assert!(matches!(
            err,
            SimError::BandwidthExceeded {
                message_bits: 128,
                ..
            }
        ));
    }

    /// A protocol that never terminates (always has pending work).
    #[derive(Debug)]
    struct Restless;

    impl NodeProtocol for Restless {
        type Message = ();

        fn init(&mut self, _: &NodeContext) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn on_round(&mut self, _: &NodeContext, _: u64, _: &[Incoming<()>]) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(2);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_max_rounds(5));
        let err = sim.run(|_| Restless).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
    }

    #[test]
    fn duplicate_sends_are_rejected() {
        #[derive(Debug)]
        struct DoubleSender;
        impl NodeProtocol for DoubleSender {
            type Message = ();
            fn init(&mut self, ctx: &NodeContext) -> Vec<Outgoing<()>> {
                if ctx.node == NodeId::new(0) {
                    vec![
                        Outgoing::new(NodeId::new(1), ()),
                        Outgoing::new(NodeId::new(1), ()),
                    ]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeContext,
                _: u64,
                _: &[Incoming<()>],
            ) -> Vec<Outgoing<()>> {
                Vec::new()
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let err = sim.run(|_| DoubleSender).unwrap_err();
        assert!(matches!(err, SimError::DuplicateSend { round: 0, .. }));
    }

    #[test]
    fn trace_records_per_round_deliveries() {
        let g = generators::path(6);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_trace());
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        // One round, all 2m messages delivered in it, one bit each.
        assert_eq!(outcome.trace.len(), 1);
        assert_eq!(outcome.trace[0].round, 1);
        assert_eq!(outcome.trace[0].messages, 2 * g.edge_count() as u64);
        assert_eq!(outcome.trace[0].bits, outcome.stats.total_bits);
        // The trace totals always reconcile with the aggregate stats.
        let traced: u64 = outcome.trace.iter().map(|t| t.messages).sum();
        assert_eq!(traced, outcome.stats.messages);
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let g = generators::path(6);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert!(outcome.trace.is_empty());
    }

    #[test]
    fn config_for_graph_scales_with_log_n() {
        let small = SimConfig::for_graph(&generators::path(4));
        let large = SimConfig::for_graph(&generators::grid(32, 32));
        assert!(large.bandwidth_bits > small.bandwidth_bits);
        assert!(large.max_rounds > small.max_rounds);
    }
}
