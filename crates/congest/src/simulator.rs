//! The synchronous round loop.
//!
//! # Hot-path layout
//!
//! The round loop is allocation-free after setup. Messages live in two
//! *edge-slot* buffers with one slot per directed edge, laid out in the
//! graph's CSR order: the slot for a message delivered to `v` from `u` is
//! `u`'s position within `v`'s adjacency slice. Delivering to a node is a
//! linear scan of its contiguous slots; posting is an `O(1)` store through
//! the precomputed `mirror` array (sender-side position → recipient-side
//! slot). One slot per directed edge per round is exactly the CONGEST
//! constraint, so a per-slot round stamp doubles as the duplicate-send
//! check. An active-set worklist schedules only nodes that received a
//! message or reported pending work — see [`NodeProtocol::is_done`] for the
//! quiescence contract that makes skipping idle nodes semantics-preserving.
//!
//! # Engines
//!
//! The loop itself runs on a round engine selected by
//! [`SimConfig::threads`]: the single-threaded reference engine, or a
//! sharded engine that partitions the nodes into contiguous CSR ranges and
//! executes them on `std::thread::scope` workers with a cross-shard staging
//! merge at every round barrier. Both produce byte-identical statistics,
//! traces, states, and errors — the shard count is a throughput knob, never
//! a semantic one (see `engine` module docs for why this holds by
//! construction).

use lcs_graph::Graph;
use lcs_obs::Obs;

use crate::engine::{serial, sharded, EngineSelection, RoundEngine};
use crate::{NodeContext, NodeProtocol};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-edge, per-direction, per-round bandwidth in bits (the `O(log n)`
    /// of the CONGEST model).
    pub bandwidth_bits: usize,
    /// Hard cap on the number of simulated rounds; exceeding it is reported
    /// as [`crate::SimError::RoundLimitExceeded`] so buggy protocols fail
    /// loudly instead of spinning forever.
    pub max_rounds: u64,
    /// When `true`, the simulator records one [`RoundTrace`] entry per
    /// executed round in [`SimOutcome::trace`] — the per-round message and
    /// bit counts a protocol author needs when debugging a multi-phase
    /// protocol. Off by default because traces of long runs are large.
    pub trace: bool,
    /// Worker-thread count of the round engine: `1` selects the serial
    /// reference engine, `t > 1` the sharded engine with `t` shards (capped
    /// at the node count). Results are byte-identical for every value —
    /// this only chooses how the rounds execute. [`SimConfig::for_graph`]
    /// initializes it from the `LCS_THREADS` environment variable
    /// (default 1), so one variable switches every protocol in a process.
    pub threads: usize,
    /// Optional deterministic fault schedule (latency, loss, duplication,
    /// stragglers, crashes). `None` — or a plan with every knob at zero —
    /// selects the unmodified fault-free round loop; an active plan routes
    /// the run through a delivery queue layered over the edge-slot
    /// mailboxes. Both engines inject identical faults (every decision is
    /// a pure function of the plan), so determinism across thread counts
    /// is preserved. See [`crate::FaultPlan`].
    pub fault: Option<crate::FaultPlan>,
}

impl SimConfig {
    /// A standard CONGEST configuration for the given graph: bandwidth
    /// `4⌈log₂ n⌉ + 64` bits (room for a tagged identifier pair plus a
    /// 64-bit value, the usual "O(log n) bits" reading) and a generous round
    /// cap of `64 · n + 1024`. The engine thread count comes from
    /// `LCS_THREADS` (see [`SimConfig::threads`]).
    pub fn for_graph(graph: &Graph) -> Self {
        let id_bits = crate::bits_for_node_count(graph.node_count());
        SimConfig {
            bandwidth_bits: 4 * id_bits + 64,
            max_rounds: 64 * graph.node_count() as u64 + 1024,
            trace: false,
            threads: lcs_graph::configured_threads(),
            fault: None,
        }
    }

    /// Overrides the round cap.
    ///
    /// The default cap of [`SimConfig::for_graph`] (`64·n + 1024`) is sized
    /// for single-phase protocols; multi-phase protocols (such as the
    /// windowed superstep protocols of `lcs_dist`) must compute their own
    /// round budget and pass it through here rather than silently inheriting
    /// the default.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the bandwidth.
    pub fn with_bandwidth_bits(mut self, bandwidth_bits: usize) -> Self {
        self.bandwidth_bits = bandwidth_bits;
        self
    }

    /// Enables per-round tracing (see [`SimConfig::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Overrides the engine thread count (see [`SimConfig::threads`]).
    /// Values below 1 are clamped to 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a deterministic fault schedule (see [`SimConfig::fault`]).
    pub fn with_fault(mut self, plan: crate::FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Removes any fault schedule: the run executes fault-free.
    pub fn without_fault(mut self) -> Self {
        self.fault = None;
        self
    }

    /// The active fault plan, if any: `Some` only when a plan is attached
    /// *and* at least one of its knobs is raised (an all-zero plan is
    /// indistinguishable from no plan).
    pub fn active_fault(&self) -> Option<crate::FaultPlan> {
        self.fault.filter(|p| p.active())
    }
}

/// One entry of the optional per-round trace: what the network delivered in
/// a single synchronous round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// The round number (1-based; round 0 is initialization).
    pub round: u64,
    /// Number of messages delivered in this round.
    pub messages: u64,
    /// Total bits delivered in this round.
    pub bits: u64,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of synchronous rounds executed until quiescence.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of message bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
}

/// The result of running a protocol to quiescence.
#[derive(Debug, Clone)]
pub struct SimOutcome<P> {
    /// The final per-node protocol states, indexed by node id.
    pub nodes: Vec<P>,
    /// Run statistics (rounds, messages, bits).
    pub stats: SimStats,
    /// Per-round delivery trace; empty unless [`SimConfig::trace`] is set.
    pub trace: Vec<RoundTrace>,
}

/// A synchronous CONGEST simulator bound to a graph.
///
/// # Engine selection
///
/// [`Simulator::run`] executes on the engine selected by
/// [`SimConfig::threads`] — serial for 1, sharded for more — and the choice
/// is observable only through wall-clock time:
///
/// ```
/// use lcs_congest::{primitives::DistributedBfs, SimConfig, Simulator};
/// use lcs_graph::{generators, NodeId};
///
/// let graph = generators::grid(8, 8);
/// let serial = Simulator::new(&graph, SimConfig::for_graph(&graph).with_threads(1));
/// let sharded = Simulator::new(&graph, SimConfig::for_graph(&graph).with_threads(4));
/// assert_eq!(serial.shard_count(), 1);
/// assert_eq!(sharded.shard_count(), 4);
///
/// let a = DistributedBfs::run(&serial, NodeId::new(0)).unwrap();
/// let b = DistributedBfs::run(&sharded, NodeId::new(0)).unwrap();
/// // Byte-identical statistics and results, on any machine, for any
/// // thread count.
/// assert_eq!(a.stats, b.stats);
/// assert_eq!(a.depths, b.depths);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
    obs: Obs,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with the given configuration.
    /// Instrumentation is off until [`Simulator::with_recorder`] attaches
    /// a handle — [`SimConfig`] stays `Copy` and recorder-free on purpose.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Simulator {
            graph,
            config,
            obs: Obs::off(),
        }
    }

    /// Attaches an instrumentation handle: successful runs report engine
    /// counters (rounds, messages, bits, polls), per-shard gauges, and —
    /// on the sharded engine — barrier-wait and staging-flush timers
    /// through it. An off handle (the default) costs one branch per run.
    pub fn with_recorder(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The instrumentation handle in use (off by default).
    pub fn recorder(&self) -> &Obs {
        &self.obs
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// The engine [`Simulator::run`] will execute on: serial when
    /// [`SimConfig::threads`] is 1 (or the graph is smaller than two
    /// shards), sharded otherwise.
    pub fn engine(&self) -> EngineSelection {
        let threads = self
            .config
            .threads
            .max(1)
            .min(self.graph.node_count().max(1));
        if threads <= 1 {
            EngineSelection::Serial
        } else {
            EngineSelection::Sharded { threads }
        }
    }

    /// Number of node shards the selected engine partitions this graph
    /// into: 1 for the serial engine, the worker count for the sharded one.
    pub fn shard_count(&self) -> usize {
        match self.engine() {
            EngineSelection::Serial => serial::SerialEngine.shard_count(),
            EngineSelection::Sharded { threads } => {
                sharded::ShardedEngine { threads }.shard_count()
            }
        }
    }

    /// Runs a protocol to quiescence: every node is instantiated via
    /// `factory`, `init` is called once, and rounds are executed until no
    /// node has pending work and no message is in flight.
    ///
    /// Executes on the engine reported by [`Simulator::engine`]; the
    /// statistics, trace, final states, and errors are identical for every
    /// engine. Protocol states and messages must be `Send` so they can be
    /// sharded across workers; a protocol that is not `Send` can still run
    /// through [`Simulator::run_serial`].
    ///
    /// # Errors
    ///
    /// Returns an error if a node violates the CONGEST constraints (sends to
    /// a non-neighbor, sends twice over the same edge in a round, or exceeds
    /// the bandwidth), or if the round cap is reached.
    pub fn run<P, F>(&self, factory: F) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol + Send,
        P::Message: Send,
        F: FnMut(&NodeContext) -> P,
    {
        match self.engine() {
            EngineSelection::Serial => {
                serial::SerialEngine.run(self.graph, &self.config, &self.obs, factory)
            }
            EngineSelection::Sharded { threads } => {
                sharded::ShardedEngine { threads }.run(self.graph, &self.config, &self.obs, factory)
            }
        }
    }

    /// Runs a protocol on the serial reference engine regardless of
    /// [`SimConfig::threads`] — the escape hatch for protocols whose state
    /// is not `Send`.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_serial<P, F>(&self, factory: F) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol,
        F: FnMut(&NodeContext) -> P,
    {
        serial::run_protocol(self.graph, &self.config, &self.obs, factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, NodeId};

    use crate::{Incoming, NodeProtocol, Outgoing, SimError};

    /// A protocol where every node floods a token once and counts how many
    /// tokens it receives.
    #[derive(Debug)]
    struct FloodOnce {
        received: usize,
        started: bool,
    }

    impl NodeProtocol for FloodOnce {
        type Message = ();

        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
            self.started = true;
            ctx.neighbor_ids()
                .iter()
                .map(|&v| Outgoing::new(v, ()))
                .collect()
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext<'_>,
            _round: u64,
            incoming: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            self.received += incoming.len();
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.started
        }
    }

    #[test]
    fn flood_once_delivers_one_message_per_edge_direction() {
        let g = generators::cycle(8);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.messages, 2 * g.edge_count() as u64);
        for node in &outcome.nodes {
            assert_eq!(node.received, 2);
        }
    }

    #[test]
    fn sharded_engine_matches_serial_on_flooding() {
        let g = generators::grid(7, 9);
        let serial = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(1).with_trace());
        let reference = serial
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        for threads in [2usize, 3, 8, 64] {
            let sim = Simulator::new(
                &g,
                SimConfig::for_graph(&g).with_threads(threads).with_trace(),
            );
            let outcome = sim
                .run(|_| FloodOnce {
                    received: 0,
                    started: false,
                })
                .unwrap();
            assert_eq!(outcome.stats, reference.stats, "threads={threads}");
            assert_eq!(outcome.trace, reference.trace, "threads={threads}");
            for (a, b) in outcome.nodes.iter().zip(&reference.nodes) {
                assert_eq!(a.received, b.received);
            }
        }
    }

    #[test]
    fn engine_selection_follows_threads_and_graph_size() {
        let g = generators::path(3);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(1));
        assert_eq!(sim.engine(), EngineSelection::Serial);
        assert_eq!(sim.shard_count(), 1);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(2));
        assert_eq!(sim.engine(), EngineSelection::Sharded { threads: 2 });
        assert_eq!(sim.shard_count(), 2);
        // More threads than nodes: capped at the node count.
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(64));
        assert_eq!(sim.shard_count(), 3);
        // A single-node graph cannot be sharded.
        let tiny = lcs_graph::Graph::from_edges(1, &[]).unwrap();
        let sim = Simulator::new(&tiny, SimConfig::for_graph(&tiny).with_threads(8));
        assert_eq!(sim.engine(), EngineSelection::Serial);
    }

    /// A protocol that (incorrectly) sends to a fixed node id regardless of
    /// adjacency, to exercise error reporting.
    #[derive(Debug)]
    struct BadSender;

    impl NodeProtocol for BadSender {
        type Message = ();

        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
            if ctx.node == NodeId::new(0) {
                vec![Outgoing::new(NodeId::new(3), ())]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            _: &NodeContext<'_>,
            _: u64,
            _: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        // Path 0-1-2-3: node 0 is not adjacent to node 3.
        let g = generators::path(4);
        for threads in [1usize, 2, 4] {
            let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(threads));
            let err = sim.run(|_| BadSender).unwrap_err();
            assert_eq!(
                err,
                SimError::NotANeighbor {
                    from: NodeId::new(0),
                    to: NodeId::new(3)
                },
                "threads={threads}"
            );
        }
    }

    /// A protocol that sends one oversized message.
    #[derive(Debug)]
    struct BigTalker;

    impl NodeProtocol for BigTalker {
        type Message = (u64, u64);

        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<(u64, u64)>> {
            ctx.neighbor_ids()
                .iter()
                .take(1)
                .map(|&v| Outgoing::new(v, (0, 0)))
                .collect()
        }

        fn on_round(
            &mut self,
            _: &NodeContext<'_>,
            _: u64,
            _: &[Incoming<(u64, u64)>],
        ) -> Vec<Outgoing<(u64, u64)>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let g = generators::path(3);
        for threads in [1usize, 3] {
            let sim = Simulator::new(
                &g,
                SimConfig::for_graph(&g)
                    .with_bandwidth_bits(32)
                    .with_threads(threads),
            );
            let err = sim.run(|_| BigTalker).unwrap_err();
            assert!(matches!(
                err,
                SimError::BandwidthExceeded {
                    message_bits: 128,
                    ..
                }
            ));
        }
    }

    /// A protocol that never terminates (always has pending work).
    #[derive(Debug)]
    struct Restless;

    impl NodeProtocol for Restless {
        type Message = ();

        fn init(&mut self, _: &NodeContext<'_>) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn on_round(
            &mut self,
            _: &NodeContext<'_>,
            _: u64,
            _: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(2);
        for threads in [1usize, 2] {
            let sim = Simulator::new(
                &g,
                SimConfig::for_graph(&g)
                    .with_max_rounds(5)
                    .with_threads(threads),
            );
            let err = sim.run(|_| Restless).unwrap_err();
            assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
        }
    }

    #[test]
    fn duplicate_sends_are_rejected() {
        #[derive(Debug)]
        struct DoubleSender;
        impl NodeProtocol for DoubleSender {
            type Message = ();
            fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
                if ctx.node == NodeId::new(0) {
                    vec![
                        Outgoing::new(NodeId::new(1), ()),
                        Outgoing::new(NodeId::new(1), ()),
                    ]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeContext<'_>,
                _: u64,
                _: &[Incoming<()>],
            ) -> Vec<Outgoing<()>> {
                Vec::new()
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        for threads in [1usize, 2] {
            let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(threads));
            let err = sim.run(|_| DoubleSender).unwrap_err();
            assert!(matches!(err, SimError::DuplicateSend { round: 0, .. }));
        }
    }

    /// A node that is done with an empty inbox must not be polled — pending
    /// work has to be declared through `is_done`, and a woken node must be
    /// woken by a message.
    #[test]
    fn quiescent_nodes_with_empty_inboxes_are_not_polled() {
        #[derive(Debug)]
        struct CountPolls {
            polls: u64,
            woken: bool,
        }
        impl NodeProtocol for CountPolls {
            type Message = ();
            fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
                // Node 0 pings its neighbors once, in round 3's mail.
                if ctx.node == NodeId::new(0) {
                    ctx.neighbor_ids()
                        .iter()
                        .map(|&v| Outgoing::new(v, ()))
                        .collect()
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeContext<'_>,
                _: u64,
                incoming: &[Incoming<()>],
            ) -> Vec<Outgoing<()>> {
                self.polls += 1;
                if !incoming.is_empty() {
                    self.woken = true;
                }
                Vec::new()
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(4);
        for threads in [1usize, 2, 4] {
            let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(threads));
            let outcome = sim
                .run(|_| CountPolls {
                    polls: 0,
                    woken: false,
                })
                .unwrap();
            // Only node 1 (the unique neighbor of node 0) was ever polled,
            // and only in the single round its message arrived.
            assert_eq!(outcome.stats.rounds, 1);
            assert_eq!(outcome.nodes[0].polls, 0);
            assert_eq!(outcome.nodes[1].polls, 1);
            assert!(outcome.nodes[1].woken);
            assert_eq!(outcome.nodes[2].polls, 0);
            assert_eq!(outcome.nodes[3].polls, 0);
        }
    }

    #[test]
    fn trace_records_per_round_deliveries() {
        let g = generators::path(6);
        for threads in [1usize, 3] {
            let sim = Simulator::new(
                &g,
                SimConfig::for_graph(&g).with_trace().with_threads(threads),
            );
            let outcome = sim
                .run(|_| FloodOnce {
                    received: 0,
                    started: false,
                })
                .unwrap();
            // One round, all 2m messages delivered in it, one bit each.
            assert_eq!(outcome.trace.len(), 1);
            assert_eq!(outcome.trace[0].round, 1);
            assert_eq!(outcome.trace[0].messages, 2 * g.edge_count() as u64);
            assert_eq!(outcome.trace[0].bits, outcome.stats.total_bits);
            // The trace totals always reconcile with the aggregate stats.
            let traced: u64 = outcome.trace.iter().map(|t| t.messages).sum();
            assert_eq!(traced, outcome.stats.messages);
        }
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let g = generators::path(6);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert!(outcome.trace.is_empty());
    }

    #[test]
    fn run_serial_ignores_the_thread_count() {
        let g = generators::cycle(9);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(4));
        let sharded = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        let serial = sim
            .run_serial(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert_eq!(sharded.stats, serial.stats);
    }

    /// A protocol panic must propagate out of the sharded engine as a
    /// panic (not a barrier deadlock): workers catch it, the coordinator
    /// stops the fleet, and the payload is re-raised on the caller's
    /// thread.
    #[test]
    fn protocol_panics_propagate_from_the_sharded_engine() {
        #[derive(Debug)]
        struct Panicky {
            id: usize,
        }
        impl NodeProtocol for Panicky {
            type Message = ();
            fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
                ctx.neighbor_ids()
                    .iter()
                    .map(|&v| Outgoing::new(v, ()))
                    .collect()
            }
            fn on_round(
                &mut self,
                _: &NodeContext<'_>,
                _: u64,
                _: &[Incoming<()>],
            ) -> Vec<Outgoing<()>> {
                if self.id == 5 {
                    panic!("protocol invariant violated at node {}", self.id);
                }
                Vec::new()
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::cycle(8);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_threads(4));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.run(|ctx| Panicky {
                id: ctx.node.index(),
            });
        }))
        .expect_err("the protocol panic must resurface");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("protocol invariant violated"), "{msg}");
    }

    #[test]
    fn config_for_graph_scales_with_log_n() {
        let small = SimConfig::for_graph(&generators::path(4));
        let large = SimConfig::for_graph(&generators::grid(32, 32));
        assert!(large.bandwidth_bits > small.bandwidth_bits);
        assert!(large.max_rounds > small.max_rounds);
    }
}
