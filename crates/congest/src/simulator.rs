//! The synchronous round loop.
//!
//! # Hot-path layout
//!
//! The round loop is allocation-free after setup. Messages live in two
//! *edge-slot* buffers with one slot per directed edge, laid out in the
//! graph's CSR order: the slot for a message delivered to `v` from `u` is
//! `u`'s position within `v`'s adjacency slice. Delivering to a node is a
//! linear scan of its contiguous slots; posting is an `O(1)` store through
//! the precomputed `mirror` array (sender-side position → recipient-side
//! slot). One slot per directed edge per round is exactly the CONGEST
//! constraint, so a per-slot round stamp doubles as the duplicate-send
//! check. An active-set worklist schedules only nodes that received a
//! message or reported pending work — see [`NodeProtocol::is_done`] for the
//! quiescence contract that makes skipping idle nodes semantics-preserving.

use lcs_graph::Graph;

use crate::{Incoming, MessageBits, NodeContext, NodeProtocol, Outgoing, SimError};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-edge, per-direction, per-round bandwidth in bits (the `O(log n)`
    /// of the CONGEST model).
    pub bandwidth_bits: usize,
    /// Hard cap on the number of simulated rounds; exceeding it is reported
    /// as [`SimError::RoundLimitExceeded`] so buggy protocols fail loudly
    /// instead of spinning forever.
    pub max_rounds: u64,
    /// When `true`, the simulator records one [`RoundTrace`] entry per
    /// executed round in [`SimOutcome::trace`] — the per-round message and
    /// bit counts a protocol author needs when debugging a multi-phase
    /// protocol. Off by default because traces of long runs are large.
    pub trace: bool,
}

impl SimConfig {
    /// A standard CONGEST configuration for the given graph: bandwidth
    /// `4⌈log₂ n⌉ + 64` bits (room for a tagged identifier pair plus a
    /// 64-bit value, the usual "O(log n) bits" reading) and a generous round
    /// cap of `64 · n + 1024`.
    pub fn for_graph(graph: &Graph) -> Self {
        let id_bits = crate::bits_for_node_count(graph.node_count());
        SimConfig {
            bandwidth_bits: 4 * id_bits + 64,
            max_rounds: 64 * graph.node_count() as u64 + 1024,
            trace: false,
        }
    }

    /// Overrides the round cap.
    ///
    /// The default cap of [`SimConfig::for_graph`] (`64·n + 1024`) is sized
    /// for single-phase protocols; multi-phase protocols (such as the
    /// windowed superstep protocols of `lcs_dist`) must compute their own
    /// round budget and pass it through here rather than silently inheriting
    /// the default.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the bandwidth.
    pub fn with_bandwidth_bits(mut self, bandwidth_bits: usize) -> Self {
        self.bandwidth_bits = bandwidth_bits;
        self
    }

    /// Enables per-round tracing (see [`SimConfig::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One entry of the optional per-round trace: what the network delivered in
/// a single synchronous round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// The round number (1-based; round 0 is initialization).
    pub round: u64,
    /// Number of messages delivered in this round.
    pub messages: u64,
    /// Total bits delivered in this round.
    pub bits: u64,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of synchronous rounds executed until quiescence.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of message bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
}

/// The result of running a protocol to quiescence.
#[derive(Debug, Clone)]
pub struct SimOutcome<P> {
    /// The final per-node protocol states, indexed by node id.
    pub nodes: Vec<P>,
    /// Run statistics (rounds, messages, bits).
    pub stats: SimStats,
    /// Per-round delivery trace; empty unless [`SimConfig::trace`] is set.
    pub trace: Vec<RoundTrace>,
}

/// A synchronous CONGEST simulator bound to a graph.
#[derive(Debug, Clone)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
}

/// The preallocated message plane of one run: edge-slot buffers for the
/// current and next round, per-slot duplicate-send stamps, per-node inbox
/// counts, and the active-set worklists. No method allocates on the round
/// path (worklist pushes reuse capacity after the first rounds).
struct Network<M> {
    /// CSR offsets mirroring the graph's (`offset[v]..offset[v + 1]` are
    /// node `v`'s recipient-side slots). Length `n + 1`.
    offset: Vec<u32>,
    /// `mirror[p]`: for the sender-side position `p` (node `v`'s adjacency
    /// entry pointing at `w`), the recipient-side slot (`w`'s entry
    /// pointing back at `v`). Posting is one indexed store.
    mirror: Vec<u32>,
    /// Messages being delivered this round, one slot per directed edge.
    cur: Vec<Option<M>>,
    /// Messages accumulating for the next round.
    next: Vec<Option<M>>,
    /// Round number of the last post into each slot (`u64::MAX` = never);
    /// posting twice in the same round is the CONGEST duplicate-send error.
    stamp: Vec<u64>,
    /// Number of pending messages per recipient, current round.
    inbox_cur: Vec<u32>,
    /// Number of pending messages per recipient, next round.
    inbox_next: Vec<u32>,
    /// Whether a node is already on `worklist_next`.
    queued: Vec<bool>,
    /// Nodes to poll this round (sorted before polling).
    worklist_cur: Vec<u32>,
    /// Nodes that must be polled next round: message recipients plus nodes
    /// that reported pending work after their last poll.
    worklist_next: Vec<u32>,
    /// Messages / bits accumulated for the next round (for the trace).
    in_flight_next: u64,
    bits_next: u64,
}

impl<M: MessageBits> Network<M> {
    fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offset: Vec<u32> = Vec::with_capacity(n + 1);
        offset.push(0);
        for v in graph.nodes() {
            let last = *offset.last().expect("offset starts nonempty");
            offset.push(last + graph.degree(v) as u32);
        }
        let slots = *offset.last().expect("offset is nonempty") as usize;

        // slot_of[e] = recipient-side slot of edge e at [e.u, e.v].
        let mut slot_of = vec![[0u32; 2]; graph.edge_count()];
        for v in graph.nodes() {
            let base = offset[v.index()];
            for (k, &e) in graph.incident_edge_ids(v).iter().enumerate() {
                let side = usize::from(graph.edge(e).v == v);
                slot_of[e.index()][side] = base + k as u32;
            }
        }
        let mut mirror = vec![0u32; slots];
        for v in graph.nodes() {
            let base = offset[v.index()] as usize;
            let neighbors = graph.neighbor_ids(v);
            for (k, &e) in graph.incident_edge_ids(v).iter().enumerate() {
                let w = neighbors[k];
                mirror[base + k] = slot_of[e.index()][usize::from(graph.edge(e).v == w)];
            }
        }

        Network {
            offset,
            mirror,
            cur: (0..slots).map(|_| None).collect(),
            next: (0..slots).map(|_| None).collect(),
            stamp: vec![u64::MAX; slots],
            inbox_cur: vec![0; n],
            inbox_next: vec![0; n],
            queued: vec![false; n],
            worklist_cur: Vec::new(),
            worklist_next: Vec::new(),
            in_flight_next: 0,
            bits_next: 0,
        }
    }

    /// Schedules `node` for the next round (idempotent).
    fn queue(&mut self, node: usize) {
        if !self.queued[node] {
            self.queued[node] = true;
            self.worklist_next.push(node as u32);
        }
    }

    /// Validates and enqueues one outgoing message for the next round.
    fn post(
        &mut self,
        config: &SimConfig,
        ctx: &NodeContext<'_>,
        out: Outgoing<M>,
        round: u64,
        stats: &mut SimStats,
    ) -> crate::Result<()> {
        let pos = ctx.position_of(out.to).ok_or(SimError::NotANeighbor {
            from: ctx.node,
            to: out.to,
        })?;
        let slot = self.mirror[self.offset[ctx.node.index()] as usize + pos] as usize;
        // Posting rounds strictly increase, so one stamp array covers both
        // buffers: an equal stamp can only mean "already sent this round".
        if self.stamp[slot] == round {
            return Err(SimError::DuplicateSend {
                from: ctx.node,
                to: out.to,
                round,
            });
        }
        self.stamp[slot] = round;
        let bits = out.msg.size_bits();
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from: ctx.node,
                to: out.to,
                message_bits: bits,
                bandwidth_bits: config.bandwidth_bits,
            });
        }
        stats.messages += 1;
        stats.total_bits += bits as u64;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        self.next[slot] = Some(out.msg);
        self.inbox_next[out.to.index()] += 1;
        self.in_flight_next += 1;
        self.bits_next += bits as u64;
        self.queue(out.to.index());
        Ok(())
    }

    /// Flips the next-round buffers in as the current round, returning the
    /// number of messages and bits being delivered. The worklist for the
    /// new round ends up in `worklist_cur`, sorted for deterministic
    /// polling order; its nodes' `queued` flags are cleared so they can be
    /// re-scheduled.
    fn begin_round(&mut self) -> (u64, u64) {
        std::mem::swap(&mut self.cur, &mut self.next);
        std::mem::swap(&mut self.inbox_cur, &mut self.inbox_next);
        std::mem::swap(&mut self.worklist_cur, &mut self.worklist_next);
        self.worklist_next.clear();
        for &v in &self.worklist_cur {
            self.queued[v as usize] = false;
        }
        self.worklist_cur.sort_unstable();
        let delivered = self.in_flight_next;
        let bits = self.bits_next;
        self.in_flight_next = 0;
        self.bits_next = 0;
        (delivered, bits)
    }

    /// Moves node `idx`'s pending messages into `scratch` (cleared first).
    fn drain_into(&mut self, idx: usize, ctx: &NodeContext<'_>, scratch: &mut Vec<Incoming<M>>) {
        scratch.clear();
        if self.inbox_cur[idx] == 0 {
            return;
        }
        let base = self.offset[idx] as usize;
        let end = self.offset[idx + 1] as usize;
        let neighbors = ctx.neighbor_ids();
        let edges = ctx.incident_edge_ids();
        for p in base..end {
            if let Some(msg) = self.cur[p].take() {
                scratch.push(Incoming {
                    from: neighbors[p - base],
                    edge: edges[p - base],
                    msg,
                });
            }
        }
        self.inbox_cur[idx] = 0;
    }
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with the given configuration.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Simulator { graph, config }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Runs a protocol to quiescence: every node is instantiated via
    /// `factory`, `init` is called once, and rounds are executed until no
    /// node has pending work and no message is in flight.
    ///
    /// # Errors
    ///
    /// Returns an error if a node violates the CONGEST constraints (sends to
    /// a non-neighbor, sends twice over the same edge in a round, or exceeds
    /// the bandwidth), or if the round cap is reached.
    pub fn run<P, F>(&self, mut factory: F) -> crate::Result<SimOutcome<P>>
    where
        P: NodeProtocol,
        F: FnMut(&NodeContext) -> P,
    {
        let n = self.graph.node_count();
        let contexts: Vec<NodeContext<'g>> = self
            .graph
            .nodes()
            .map(|v| {
                NodeContext::new(
                    v,
                    self.graph.neighbor_ids(v),
                    self.graph.incident_edge_ids(v),
                    n,
                )
            })
            .collect();
        let mut nodes: Vec<P> = contexts.iter().map(&mut factory).collect();
        let mut stats = SimStats::default();
        let mut trace: Vec<RoundTrace> = Vec::new();
        let mut net: Network<P::Message> = Network::new(self.graph);
        let mut scratch: Vec<Incoming<P::Message>> = Vec::new();
        // Timed wake-ups from NodeProtocol::next_wake, keyed by round.
        // Stale entries (a node woken earlier by a message) cause a spurious
        // poll, which the next_wake contract makes harmless.
        let mut wakes: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            std::collections::BinaryHeap::new();

        // Initialization: nodes may already emit messages; every node that
        // reports pending work is scheduled for round 1 (or its requested
        // wake round).
        for (idx, (state, ctx)) in nodes.iter_mut().zip(&contexts).enumerate() {
            let outgoing = state.init(ctx);
            for out in outgoing {
                net.post(&self.config, ctx, out, 0, &mut stats)?;
            }
            if !state.is_done() {
                match state.next_wake(0) {
                    Some(r) if r > 1 => wakes.push(std::cmp::Reverse((r, idx as u32))),
                    _ => net.queue(idx),
                }
            }
        }

        let mut round: u64 = 0;
        // The schedule is exhaustive: every message recipient, every node
        // with immediate pending work, and every timed wake-up is recorded,
        // so "no queued node and no pending wake" is exactly the old "no
        // message in flight and all nodes done" condition.
        while !net.worklist_next.is_empty() || !wakes.is_empty() {
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            round += 1;

            while let Some(&std::cmp::Reverse((due, idx))) = wakes.peek() {
                if due > round {
                    break;
                }
                wakes.pop();
                net.queue(idx as usize);
            }
            let (delivered, bits) = net.begin_round();
            if self.config.trace {
                trace.push(RoundTrace {
                    round,
                    messages: delivered,
                    bits,
                });
            }
            let worklist = std::mem::take(&mut net.worklist_cur);
            for &vi in &worklist {
                let idx = vi as usize;
                let ctx = &contexts[idx];
                net.drain_into(idx, ctx, &mut scratch);
                let outgoing = nodes[idx].on_round(ctx, round, &scratch);
                for out in outgoing {
                    net.post(&self.config, ctx, out, round, &mut stats)?;
                }
                if !nodes[idx].is_done() {
                    match nodes[idx].next_wake(round) {
                        Some(r) if r > round + 1 => {
                            wakes.push(std::cmp::Reverse((r, idx as u32)));
                        }
                        _ => net.queue(idx),
                    }
                }
            }
            net.worklist_cur = worklist;
        }

        stats.rounds = round;
        Ok(SimOutcome {
            nodes,
            stats,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, NodeId};

    /// A protocol where every node floods a token once and counts how many
    /// tokens it receives.
    #[derive(Debug)]
    struct FloodOnce {
        received: usize,
        started: bool,
    }

    impl NodeProtocol for FloodOnce {
        type Message = ();

        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
            self.started = true;
            ctx.neighbor_ids()
                .iter()
                .map(|&v| Outgoing::new(v, ()))
                .collect()
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext<'_>,
            _round: u64,
            incoming: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            self.received += incoming.len();
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.started
        }
    }

    #[test]
    fn flood_once_delivers_one_message_per_edge_direction() {
        let g = generators::cycle(8);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.messages, 2 * g.edge_count() as u64);
        for node in &outcome.nodes {
            assert_eq!(node.received, 2);
        }
    }

    /// A protocol that (incorrectly) sends to a fixed node id regardless of
    /// adjacency, to exercise error reporting.
    #[derive(Debug)]
    struct BadSender;

    impl NodeProtocol for BadSender {
        type Message = ();

        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
            if ctx.node == NodeId::new(0) {
                vec![Outgoing::new(NodeId::new(3), ())]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            _: &NodeContext<'_>,
            _: u64,
            _: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        // Path 0-1-2-3: node 0 is not adjacent to node 3.
        let g = generators::path(4);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let err = sim.run(|_| BadSender).unwrap_err();
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: NodeId::new(0),
                to: NodeId::new(3)
            }
        );
    }

    /// A protocol that sends one oversized message.
    #[derive(Debug)]
    struct BigTalker;

    impl NodeProtocol for BigTalker {
        type Message = (u64, u64);

        fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<(u64, u64)>> {
            ctx.neighbor_ids()
                .iter()
                .take(1)
                .map(|&v| Outgoing::new(v, (0, 0)))
                .collect()
        }

        fn on_round(
            &mut self,
            _: &NodeContext<'_>,
            _: u64,
            _: &[Incoming<(u64, u64)>],
        ) -> Vec<Outgoing<(u64, u64)>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let g = generators::path(3);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_bandwidth_bits(32));
        let err = sim.run(|_| BigTalker).unwrap_err();
        assert!(matches!(
            err,
            SimError::BandwidthExceeded {
                message_bits: 128,
                ..
            }
        ));
    }

    /// A protocol that never terminates (always has pending work).
    #[derive(Debug)]
    struct Restless;

    impl NodeProtocol for Restless {
        type Message = ();

        fn init(&mut self, _: &NodeContext<'_>) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn on_round(
            &mut self,
            _: &NodeContext<'_>,
            _: u64,
            _: &[Incoming<()>],
        ) -> Vec<Outgoing<()>> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(2);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_max_rounds(5));
        let err = sim.run(|_| Restless).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
    }

    #[test]
    fn duplicate_sends_are_rejected() {
        #[derive(Debug)]
        struct DoubleSender;
        impl NodeProtocol for DoubleSender {
            type Message = ();
            fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
                if ctx.node == NodeId::new(0) {
                    vec![
                        Outgoing::new(NodeId::new(1), ()),
                        Outgoing::new(NodeId::new(1), ()),
                    ]
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeContext<'_>,
                _: u64,
                _: &[Incoming<()>],
            ) -> Vec<Outgoing<()>> {
                Vec::new()
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let err = sim.run(|_| DoubleSender).unwrap_err();
        assert!(matches!(err, SimError::DuplicateSend { round: 0, .. }));
    }

    /// A node that is done with an empty inbox must not be polled — pending
    /// work has to be declared through `is_done`, and a woken node must be
    /// woken by a message.
    #[test]
    fn quiescent_nodes_with_empty_inboxes_are_not_polled() {
        #[derive(Debug)]
        struct CountPolls {
            polls: u64,
            woken: bool,
        }
        impl NodeProtocol for CountPolls {
            type Message = ();
            fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<()>> {
                // Node 0 pings its neighbors once, in round 3's mail.
                if ctx.node == NodeId::new(0) {
                    ctx.neighbor_ids()
                        .iter()
                        .map(|&v| Outgoing::new(v, ()))
                        .collect()
                } else {
                    Vec::new()
                }
            }
            fn on_round(
                &mut self,
                _: &NodeContext<'_>,
                _: u64,
                incoming: &[Incoming<()>],
            ) -> Vec<Outgoing<()>> {
                self.polls += 1;
                if !incoming.is_empty() {
                    self.woken = true;
                }
                Vec::new()
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(4);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| CountPolls {
                polls: 0,
                woken: false,
            })
            .unwrap();
        // Only node 1 (the unique neighbor of node 0) was ever polled, and
        // only in the single round its message arrived.
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.nodes[0].polls, 0);
        assert_eq!(outcome.nodes[1].polls, 1);
        assert!(outcome.nodes[1].woken);
        assert_eq!(outcome.nodes[2].polls, 0);
        assert_eq!(outcome.nodes[3].polls, 0);
    }

    #[test]
    fn trace_records_per_round_deliveries() {
        let g = generators::path(6);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g).with_trace());
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        // One round, all 2m messages delivered in it, one bit each.
        assert_eq!(outcome.trace.len(), 1);
        assert_eq!(outcome.trace[0].round, 1);
        assert_eq!(outcome.trace[0].messages, 2 * g.edge_count() as u64);
        assert_eq!(outcome.trace[0].bits, outcome.stats.total_bits);
        // The trace totals always reconcile with the aggregate stats.
        let traced: u64 = outcome.trace.iter().map(|t| t.messages).sum();
        assert_eq!(traced, outcome.stats.messages);
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let g = generators::path(6);
        let sim = Simulator::new(&g, SimConfig::for_graph(&g));
        let outcome = sim
            .run(|_| FloodOnce {
                received: 0,
                started: false,
            })
            .unwrap();
        assert!(outcome.trace.is_empty());
    }

    #[test]
    fn config_for_graph_scales_with_log_n() {
        let small = SimConfig::for_graph(&generators::path(4));
        let large = SimConfig::for_graph(&generators::grid(32, 32));
        assert!(large.bandwidth_bits > small.bandwidth_bits);
        assert!(large.max_rounds > small.max_rounds);
    }
}
