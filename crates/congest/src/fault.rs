//! Deterministic fault injection for the round engines.
//!
//! A [`FaultPlan`] is a small `Copy` description of a faulty network:
//! per-edge extra latency, per-delivery loss and duplication
//! probabilities, straggler nodes that only poll every `k`-th round, and
//! a crash schedule. Every fault decision is a **pure function of the
//! plan and of stable coordinates** (edge id, recipient-side slot, node
//! id, global round number) — never of RNG call order — so the serial
//! and sharded engines take byte-identical decisions regardless of how
//! work is scheduled across threads. The draws go through the vendored
//! `ChaCha8Rng`: one seeded generator per decision, keyed by
//! `(seed, tag, coordinates)`.
//!
//! Rounds are counted on two clocks. The *local* round is the engine's
//! round counter for one run; the *global* round adds the plan's
//! [`round_offset`](FaultPlan::with_round_offset). Retry wrappers advance
//! the offset between epochs, so a re-run experiences a different fault
//! timeline from the same plan without reseeding — and a crash window
//! that has passed on the global clock stays healed in later epochs.

use std::cmp::Ordering;

use lcs_graph::Graph;
use lcs_obs::Obs;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const TAG_DELAY: u64 = 0x9e37_79b9_7f4a_7c15;
const TAG_LOSS: u64 = 0xbf58_476d_1ce4_e5b9;
const TAG_DUP: u64 = 0x94d0_49bb_1331_11eb;
const TAG_STRAGGLER: u64 = 0x2545_f491_4f6c_dd1d;
const TAG_PHASE: u64 = 0x9e6c_63d0_876a_68e5;
const TAG_CRASH: u64 = 0xd6e8_feb8_6659_fd93;

/// One pure 64-bit draw, keyed by `(seed, tag, a, b)`.
fn word(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let mixed =
        seed ^ tag ^ a.wrapping_mul(0xa24b_aed4_963e_e407) ^ b.wrapping_mul(0x9fb2_1c65_1e98_df25);
    ChaCha8Rng::seed_from_u64(mixed).next_u64()
}

/// Probability check in parts per million.
fn hits_ppm(word: u64, ppm: u32) -> bool {
    word % 1_000_000 < u64::from(ppm)
}

/// A deterministic fault schedule for one simulation.
///
/// Attach a plan to a [`crate::SimConfig`] via
/// [`SimConfig::with_fault`](crate::SimConfig::with_fault). A plan with
/// every knob at zero is *inactive*: the engines take the unmodified
/// fault-free code path, so results are byte-identical to running with no
/// plan at all. All knobs compose; every decision is a pure function of
/// `(seed, coordinates, global round)`, so both engines — and reruns at
/// any thread count — inject exactly the same faults.
///
/// Semantics:
///
/// * **Latency** — every undirected edge gets a fixed extra delay
///   `ℓ ∈ [0, max_extra_latency]`; a message posted in round `r`
///   becomes deliverable in round `r + 1 + ℓ` (fault-free delivery is
///   `r + 1`) through a delivery queue layered over the edge-slot
///   mailboxes.
/// * **Loss / duplication** — each delivery is dropped with probability
///   `loss_ppm / 10^6`, or duplicated (second copy arrives at the
///   recipient's next poll round after the original) with probability
///   `dup_ppm / 10^6`, drawn per (directed edge, global round).
/// * **Stragglers** — each node is a straggler with probability
///   `straggler_ppm / 10^6`; a straggler is only polled on global rounds
///   `≡ phase (mod period)`, and deliveries to it land on its poll
///   rounds.
/// * **Crashes** — the `crash_count` nodes with the smallest seeded draw
///   die at global round `crash_round`: they are not polled and every
///   delivery to them is dropped. With `restart_after > 0` each crashed
///   node restarts at `crash_round + restart_after` with *cleared state*
///   (a fresh protocol instance whose `init` runs at the restart round);
///   with `restart_after = 0` the crash is permanent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    round_offset: u64,
    max_extra_latency: u32,
    loss_ppm: u32,
    dup_ppm: u32,
    straggler_ppm: u32,
    straggler_period: u32,
    crash_count: u32,
    crash_round: u64,
    restart_after: u64,
}

impl FaultPlan {
    /// A plan with the given seed and every fault knob at zero
    /// (inactive until a knob is raised).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            round_offset: 0,
            max_extra_latency: 0,
            loss_ppm: 0,
            dup_ppm: 0,
            straggler_ppm: 0,
            straggler_period: 0,
            crash_count: 0,
            crash_round: 0,
            restart_after: 0,
        }
    }

    /// Sets the per-edge extra latency bound (each undirected edge draws a
    /// fixed delay in `[0, max]`).
    pub fn with_latency(mut self, max: u32) -> Self {
        self.max_extra_latency = max;
        self
    }

    /// Sets the per-delivery loss probability in parts per million.
    pub fn with_loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    /// Sets the per-delivery duplication probability in parts per million.
    pub fn with_dup_ppm(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Makes each node a straggler with probability `ppm / 10^6`;
    /// stragglers poll only every `period`-th round. A period of 0 or 1
    /// disables straggling.
    pub fn with_stragglers(mut self, ppm: u32, period: u32) -> Self {
        self.straggler_ppm = ppm;
        self.straggler_period = period;
        self
    }

    /// Crashes the `count` (seeded) nodes at global round `round`; each
    /// restarts with cleared state after `restart_after` more rounds
    /// (0 = never restart).
    pub fn with_crashes(mut self, count: u32, round: u64, restart_after: u64) -> Self {
        self.crash_count = count;
        self.crash_round = round;
        self.restart_after = restart_after;
        self
    }

    /// Shifts the plan's global clock: local round `r` of the run maps to
    /// global round `r + offset`. Retry wrappers advance this between
    /// epochs so each epoch sees a fresh fault timeline from one plan.
    pub fn with_round_offset(mut self, offset: u64) -> Self {
        self.round_offset = offset;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The global-clock offset (see [`FaultPlan::with_round_offset`]).
    pub fn round_offset(&self) -> u64 {
        self.round_offset
    }

    /// The per-edge extra latency bound.
    pub fn max_extra_latency(&self) -> u32 {
        self.max_extra_latency
    }

    /// The per-delivery loss probability in parts per million.
    pub fn loss_ppm(&self) -> u32 {
        self.loss_ppm
    }

    /// The per-delivery duplication probability in parts per million.
    pub fn dup_ppm(&self) -> u32 {
        self.dup_ppm
    }

    /// The straggler poll period (0 or 1 = stragglers disabled).
    pub fn straggler_period(&self) -> u32 {
        self.straggler_period
    }

    /// The number of crashing nodes.
    pub fn crash_count(&self) -> u32 {
        self.crash_count
    }

    /// The global round at which the crash set dies.
    pub fn crash_round(&self) -> u64 {
        self.crash_round
    }

    /// Rounds after the crash at which crashed nodes restart (0 = never).
    pub fn restart_after(&self) -> u64 {
        self.restart_after
    }

    /// Whether stragglers are actually enabled.
    fn stragglers_on(&self) -> bool {
        self.straggler_ppm > 0 && self.straggler_period > 1
    }

    /// Whether any fault knob is raised. An inactive plan routes both
    /// engines to the unmodified fault-free code path.
    pub fn active(&self) -> bool {
        self.max_extra_latency > 0
            || self.loss_ppm > 0
            || self.dup_ppm > 0
            || self.stragglers_on()
            || self.crash_count > 0
    }

    /// The worst-case factor by which one fault-free round stretches:
    /// `(1 + max latency) · straggler period`. Protocol layers scale
    /// their round windows (and callers their round budgets) by this.
    pub fn round_stretch(&self) -> u64 {
        let period = if self.stragglers_on() {
            u64::from(self.straggler_period)
        } else {
            1
        };
        (1 + u64::from(self.max_extra_latency)) * period
    }
}

/// The precomputed, per-run expansion of a [`FaultPlan`] on one graph:
/// per-edge delays, the straggler phases, and the sorted crash set. Built
/// identically by both engines (it is a pure function of plan + graph).
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Fixed extra delay per undirected edge; empty when latency is off.
    delays: Vec<u32>,
    /// Straggler phase per node (`u32::MAX` = not a straggler); empty
    /// when straggling is off.
    straggler: Vec<u32>,
    /// Crashing node ids, ascending.
    crashed: Vec<u32>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan, graph: &Graph) -> Self {
        let delays = if plan.max_extra_latency > 0 {
            let span = u64::from(plan.max_extra_latency) + 1;
            (0..graph.edge_count())
                .map(|e| (word(plan.seed, TAG_DELAY, e as u64, 0) % span) as u32)
                .collect()
        } else {
            Vec::new()
        };
        let straggler = if plan.stragglers_on() {
            let period = u64::from(plan.straggler_period);
            (0..graph.node_count())
                .map(|v| {
                    if hits_ppm(
                        word(plan.seed, TAG_STRAGGLER, v as u64, 0),
                        plan.straggler_ppm,
                    ) {
                        (word(plan.seed, TAG_PHASE, v as u64, 0) % period) as u32
                    } else {
                        u32::MAX
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let crashed = if plan.crash_count > 0 {
            let mut ranked: Vec<(u64, u32)> = (0..graph.node_count())
                .map(|v| (word(plan.seed, TAG_CRASH, v as u64, 0), v as u32))
                .collect();
            ranked.sort_unstable();
            let mut picked: Vec<u32> = ranked
                .into_iter()
                .take(plan.crash_count as usize)
                .map(|(_, v)| v)
                .collect();
            picked.sort_unstable();
            picked
        } else {
            Vec::new()
        };
        FaultState {
            plan: *plan,
            delays,
            straggler,
            crashed,
        }
    }

    /// The fixed extra latency of an undirected edge.
    pub(crate) fn delay_of(&self, edge: usize) -> u64 {
        if self.delays.is_empty() {
            0
        } else {
            u64::from(self.delays[edge])
        }
    }

    /// The first local round `≥ round` at which `node` polls. Identity for
    /// non-stragglers; stragglers poll on global rounds `≡ phase (mod
    /// period)`.
    pub(crate) fn next_poll(&self, node: usize, round: u64) -> u64 {
        if self.straggler.is_empty() {
            return round;
        }
        let phase = self.straggler[node];
        if phase == u32::MAX {
            return round;
        }
        let period = u64::from(self.plan.straggler_period);
        let global = round + self.plan.round_offset;
        let rem = (global + period - u64::from(phase) % period) % period;
        if rem == 0 {
            round
        } else {
            round + period - rem
        }
    }

    /// Whether the delivery into `slot` (recipient-side directed-edge
    /// index) during local round `round` is lost.
    pub(crate) fn lose(&self, slot: u64, round: u64) -> bool {
        self.plan.loss_ppm > 0
            && hits_ppm(
                word(
                    self.plan.seed,
                    TAG_LOSS,
                    slot,
                    round + self.plan.round_offset,
                ),
                self.plan.loss_ppm,
            )
    }

    /// Whether the delivery into `slot` during local round `round` is
    /// duplicated.
    pub(crate) fn duplicate(&self, slot: u64, round: u64) -> bool {
        self.plan.dup_ppm > 0
            && hits_ppm(
                word(
                    self.plan.seed,
                    TAG_DUP,
                    slot,
                    round + self.plan.round_offset,
                ),
                self.plan.dup_ppm,
            )
    }

    /// The crashing node ids, ascending.
    pub(crate) fn crash_nodes(&self) -> &[u32] {
        &self.crashed
    }

    pub(crate) fn is_crash_node(&self, node: usize) -> bool {
        self.crashed.binary_search(&(node as u32)).is_ok()
    }

    /// Whether `node` is dead during local round `round`.
    pub(crate) fn crashed_at(&self, node: usize, round: u64) -> bool {
        if self.crashed.is_empty() || !self.is_crash_node(node) {
            return false;
        }
        let global = round + self.plan.round_offset;
        if global < self.plan.crash_round {
            return false;
        }
        self.plan.restart_after == 0 || global < self.plan.crash_round + self.plan.restart_after
    }

    /// The local round at which crashed nodes restart, if that round lies
    /// in this run's future (`None` for permanent crashes and for crash
    /// windows that closed before this run's global clock started).
    pub(crate) fn restart_local_round(&self) -> Option<u64> {
        if self.crashed.is_empty() || self.plan.restart_after == 0 {
            return None;
        }
        let global = self.plan.crash_round + self.plan.restart_after;
        global
            .checked_sub(self.plan.round_offset)
            .filter(|&r| r > 0)
    }
}

/// A message sitting in the delivery queue: becomes deliverable at local
/// round `due`, into recipient-side slot `slot`. Ordered by
/// `(due, slot, posted)` — a total order that is unique per entry (a slot
/// receives at most one post per round, and a duplicate shares `slot` and
/// `posted` but never `due`), so heap pop order is deterministic.
pub(crate) struct Delayed<M> {
    pub(crate) due: u64,
    pub(crate) slot: u32,
    pub(crate) posted: u64,
    pub(crate) to: u32,
    pub(crate) bits: u64,
    pub(crate) msg: M,
}

impl<M> Delayed<M> {
    fn key(&self) -> (u64, u32, u64) {
        (self.due, self.slot, self.posted)
    }
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Delayed<M> {}

impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Fault-event tallies of one run (or one shard of a run). The event
/// counts are thread-invariant facts — pure functions of the plan and the
/// protocol's sends — and fold into `lcs_obs` counters; the queue peak is
/// schedule-shaped and goes to a gauge.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FaultCounters {
    pub(crate) drops: u64,
    pub(crate) dups: u64,
    pub(crate) delays: u64,
    pub(crate) crash_drops: u64,
    pub(crate) restarts: u64,
    pub(crate) queue_peak: u64,
}

impl FaultCounters {
    /// Folds another shard's tallies in (sums; peak by max).
    pub(crate) fn absorb(&mut self, other: &FaultCounters) {
        self.drops += other.drops;
        self.dups += other.dups;
        self.delays += other.delays;
        self.crash_drops += other.crash_drops;
        self.restarts += other.restarts;
        self.queue_peak = self.queue_peak.max(other.queue_peak);
    }

    /// Records the tallies into the obs registry (no-op when off).
    pub(crate) fn record(&self, obs: &Obs) {
        if !obs.is_on() {
            return;
        }
        obs.counter_add("fault/drops", self.drops);
        obs.counter_add("fault/dups", self.dups);
        obs.counter_add("fault/delays", self.delays);
        obs.counter_add("fault/crash_drops", self.crash_drops);
        obs.counter_add("fault/restarts", self.restarts);
        obs.gauge_max("fault/queue_depth", self.queue_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    #[test]
    fn zero_knob_plan_is_inactive() {
        let plan = FaultPlan::new(7).with_round_offset(55);
        assert!(!plan.active());
        assert_eq!(plan.round_stretch(), 1);
        // Degenerate straggler periods keep the plan inactive.
        assert!(!FaultPlan::new(7).with_stragglers(500_000, 1).active());
        assert!(FaultPlan::new(7).with_stragglers(500_000, 3).active());
        assert!(FaultPlan::new(7).with_latency(1).active());
        assert!(FaultPlan::new(7).with_loss_ppm(1).active());
        assert!(FaultPlan::new(7).with_dup_ppm(1).active());
        assert!(FaultPlan::new(7).with_crashes(1, 5, 0).active());
    }

    #[test]
    fn round_stretch_multiplies_latency_and_period() {
        let plan = FaultPlan::new(1)
            .with_latency(2)
            .with_stragglers(1_000_000, 4);
        assert_eq!(plan.round_stretch(), 12);
        assert_eq!(FaultPlan::new(1).with_latency(3).round_stretch(), 4);
    }

    #[test]
    fn state_is_a_pure_function_of_plan_and_graph() {
        let graph = generators::grid(6, 6);
        let plan = FaultPlan::new(42)
            .with_latency(3)
            .with_loss_ppm(100_000)
            .with_dup_ppm(50_000)
            .with_stragglers(300_000, 3)
            .with_crashes(2, 10, 5);
        let a = FaultState::new(&plan, &graph);
        let b = FaultState::new(&plan, &graph);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.straggler, b.straggler);
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.crashed.len(), 2);
        for slot in 0..20u64 {
            for round in 1..20u64 {
                assert_eq!(a.lose(slot, round), b.lose(slot, round));
                assert_eq!(a.duplicate(slot, round), b.duplicate(slot, round));
            }
        }
    }

    #[test]
    fn next_poll_respects_phase_and_period() {
        let graph = generators::grid(4, 4);
        let plan = FaultPlan::new(9).with_stragglers(1_000_000, 4);
        let state = FaultState::new(&plan, &graph);
        for v in 0..graph.node_count() {
            let phase = state.straggler[v];
            assert_ne!(phase, u32::MAX, "ppm=10^6 makes every node a straggler");
            for r in 1..30u64 {
                let due = state.next_poll(v, r);
                assert!(due >= r && due < r + 4);
                assert_eq!(due % 4, u64::from(phase) % 4);
            }
        }
    }

    #[test]
    fn crash_window_and_restart_round() {
        let graph = generators::grid(4, 4);
        let plan = FaultPlan::new(3).with_crashes(1, 10, 5);
        let state = FaultState::new(&plan, &graph);
        let v = state.crash_nodes()[0] as usize;
        assert!(!state.crashed_at(v, 9));
        assert!(state.crashed_at(v, 10));
        assert!(state.crashed_at(v, 14));
        assert!(!state.crashed_at(v, 15));
        assert_eq!(state.restart_local_round(), Some(15));

        // Permanent crash: dead forever, no restart round.
        let forever = FaultState::new(&FaultPlan::new(3).with_crashes(1, 10, 0), &graph);
        let v = forever.crash_nodes()[0] as usize;
        assert!(forever.crashed_at(v, 1_000_000));
        assert_eq!(forever.restart_local_round(), None);

        // An offset past the crash window heals the node for the epoch.
        let healed = FaultState::new(
            &FaultPlan::new(3)
                .with_crashes(1, 10, 5)
                .with_round_offset(20),
            &graph,
        );
        let v = healed.crash_nodes()[0] as usize;
        assert!(!healed.crashed_at(v, 1));
        assert_eq!(healed.restart_local_round(), None);
    }

    #[test]
    fn delayed_orders_by_due_slot_posted() {
        let a = Delayed {
            due: 3,
            slot: 5,
            posted: 1,
            to: 0,
            bits: 0,
            msg: (),
        };
        let b = Delayed {
            due: 3,
            slot: 6,
            posted: 0,
            to: 0,
            bits: 0,
            msg: (),
        };
        let c = Delayed {
            due: 4,
            slot: 0,
            posted: 0,
            to: 0,
            bits: 0,
            msg: (),
        };
        assert!(a < b && b < c);
    }
}
