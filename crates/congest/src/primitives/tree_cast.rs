//! Convergecast and broadcast along a fixed rooted tree.
//!
//! Given an already-computed rooted spanning tree, a convergecast aggregates
//! one `O(log n)`-bit value per node up to the root in `depth(T)` rounds
//! (values are combined with an associative, commutative operator on the
//! way), and a broadcast pushes one value from the root to every node in
//! `depth(T)` rounds. These are the `O(D)` "coordination" steps that the
//! shortcut construction of the paper performs between its iterations
//! ("the check can be executed via a `O(D)` convergecast on the entire tree
//! `T`").

use lcs_graph::{Graph, NodeId, RootedTree};

use crate::{Incoming, NodeContext, NodeProtocol, Outgoing, SimConfig, SimStats, Simulator};

/// Associative, commutative operators available for tree aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Sum of the values.
    Sum,
    /// Minimum of the values.
    Min,
    /// Maximum of the values.
    Max,
}

impl AggregateOp {
    /// Applies the operator to two values.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggregateOp::Sum => a + b,
            AggregateOp::Min => a.min(b),
            AggregateOp::Max => a.max(b),
        }
    }
}

/// Per-node state of the convergecast protocol.
#[derive(Debug, Clone)]
struct ConvergecastNode {
    parent: Option<NodeId>,
    pending_children: usize,
    accumulator: u64,
    op: AggregateOp,
    sent: bool,
}

impl NodeProtocol for ConvergecastNode {
    type Message = u64;

    fn init(&mut self, _ctx: &NodeContext) -> Vec<Outgoing<u64>> {
        self.maybe_send()
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        _round: u64,
        incoming: &[Incoming<u64>],
    ) -> Vec<Outgoing<u64>> {
        for msg in incoming {
            self.accumulator = self.op.combine(self.accumulator, msg.msg);
            self.pending_children -= 1;
        }
        self.maybe_send()
    }

    fn is_done(&self) -> bool {
        self.pending_children == 0 && (self.sent || self.parent.is_none())
    }
}

impl ConvergecastNode {
    fn maybe_send(&mut self) -> Vec<Outgoing<u64>> {
        if self.pending_children == 0 && !self.sent {
            if let Some(parent) = self.parent {
                self.sent = true;
                return vec![Outgoing::new(parent, self.accumulator)];
            }
        }
        Vec::new()
    }
}

/// Result of a tree aggregation.
#[derive(Debug, Clone)]
pub struct TreeAggregateOutcome {
    /// The aggregate of all node values, available at the root.
    pub value: u64,
    /// Simulation statistics (the protocol takes `depth(T) + 1` rounds on a
    /// nontrivial tree).
    pub stats: SimStats,
}

/// Aggregates `values[v]` over all nodes `v` up the tree to the root using
/// `op`, exactly as a distributed convergecast would.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `values.len()` differs from the graph's node count.
pub fn tree_aggregate(
    graph: &Graph,
    tree: &RootedTree,
    values: &[u64],
    op: AggregateOp,
) -> crate::Result<TreeAggregateOutcome> {
    assert_eq!(
        values.len(),
        graph.node_count(),
        "one value per node is required"
    );
    let sim = Simulator::new(graph, SimConfig::for_graph(graph));
    let outcome = sim.run(|ctx| ConvergecastNode {
        parent: tree.parent(ctx.node),
        pending_children: tree.children(ctx.node).len(),
        accumulator: values[ctx.node.index()],
        op,
        sent: false,
    })?;
    let value = outcome.nodes[tree.root().index()].accumulator;
    Ok(TreeAggregateOutcome {
        value,
        stats: outcome.stats,
    })
}

/// Per-node state of the broadcast protocol.
#[derive(Debug, Clone)]
struct BroadcastNode {
    children: Vec<NodeId>,
    received: Option<u64>,
    forwarded: bool,
}

impl NodeProtocol for BroadcastNode {
    type Message = u64;

    fn init(&mut self, _ctx: &NodeContext) -> Vec<Outgoing<u64>> {
        self.maybe_forward()
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        _round: u64,
        incoming: &[Incoming<u64>],
    ) -> Vec<Outgoing<u64>> {
        if let Some(first) = incoming.first() {
            self.received.get_or_insert(first.msg);
        }
        self.maybe_forward()
    }

    fn is_done(&self) -> bool {
        self.received.is_some() && self.forwarded
    }
}

impl BroadcastNode {
    fn maybe_forward(&mut self) -> Vec<Outgoing<u64>> {
        match (self.received, self.forwarded) {
            (Some(value), false) => {
                self.forwarded = true;
                self.children
                    .iter()
                    .map(|&c| Outgoing::new(c, value))
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Result of a tree broadcast.
#[derive(Debug, Clone)]
pub struct TreeBroadcastOutcome {
    /// The value received by every node (indexed by node id); equal to the
    /// broadcast value everywhere.
    pub received: Vec<u64>,
    /// Simulation statistics (the protocol takes `depth(T)` rounds).
    pub stats: SimStats,
}

/// Broadcasts `value` from the root of `tree` to every node.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn tree_broadcast(
    graph: &Graph,
    tree: &RootedTree,
    value: u64,
) -> crate::Result<TreeBroadcastOutcome> {
    let sim = Simulator::new(graph, SimConfig::for_graph(graph));
    let outcome = sim.run(|ctx| BroadcastNode {
        children: tree.children(ctx.node).to_vec(),
        received: if ctx.node == tree.root() {
            Some(value)
        } else {
            None
        },
        forwarded: false,
    })?;
    let received = outcome
        .nodes
        .iter()
        .map(|n| n.received.unwrap_or(0))
        .collect();
    Ok(TreeBroadcastOutcome {
        received,
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators;

    fn setup(rows: usize, cols: usize) -> (Graph, RootedTree) {
        let g = generators::grid(rows, cols);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        (g, t)
    }

    #[test]
    fn sum_aggregation_matches_arithmetic() {
        let (g, t) = setup(6, 6);
        let values: Vec<u64> = (0..g.node_count() as u64).collect();
        let outcome = tree_aggregate(&g, &t, &values, AggregateOp::Sum).unwrap();
        assert_eq!(outcome.value, (0..36u64).sum());
        // Convergecast completes within depth + 1 rounds.
        assert!(outcome.stats.rounds <= u64::from(t.depth_of_tree()) + 1);
    }

    #[test]
    fn min_and_max_aggregation() {
        let (g, t) = setup(4, 9);
        let values: Vec<u64> = (0..g.node_count() as u64).map(|v| 1000 - v).collect();
        assert_eq!(
            tree_aggregate(&g, &t, &values, AggregateOp::Min)
                .unwrap()
                .value,
            1000 - 35
        );
        assert_eq!(
            tree_aggregate(&g, &t, &values, AggregateOp::Max)
                .unwrap()
                .value,
            1000
        );
    }

    #[test]
    fn aggregation_message_count_is_one_per_non_root_node() {
        let (g, t) = setup(5, 5);
        let values = vec![1u64; g.node_count()];
        let outcome = tree_aggregate(&g, &t, &values, AggregateOp::Sum).unwrap();
        assert_eq!(outcome.value, 25);
        assert_eq!(outcome.stats.messages, (g.node_count() - 1) as u64);
    }

    #[test]
    fn broadcast_reaches_every_node_in_depth_rounds() {
        let (g, t) = setup(8, 3);
        let outcome = tree_broadcast(&g, &t, 42).unwrap();
        assert!(outcome.received.iter().all(|&v| v == 42));
        assert_eq!(outcome.stats.rounds, u64::from(t.depth_of_tree()));
        assert_eq!(outcome.stats.messages, (g.node_count() - 1) as u64);
    }

    #[test]
    fn single_node_tree_aggregate_and_broadcast() {
        let g = lcs_graph::Graph::from_edges(1, &[]).unwrap();
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let agg = tree_aggregate(&g, &t, &[7], AggregateOp::Sum).unwrap();
        assert_eq!(agg.value, 7);
        assert_eq!(agg.stats.rounds, 0);
        let bc = tree_broadcast(&g, &t, 9).unwrap();
        assert_eq!(bc.received, vec![9]);
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn aggregate_requires_one_value_per_node() {
        let (g, t) = setup(3, 3);
        let _ = tree_aggregate(&g, &t, &[1, 2, 3], AggregateOp::Sum);
    }
}
