//! Reference distributed protocols.
//!
//! These are the standard CONGEST building blocks the paper takes for
//! granted: single-source BFS-tree construction (`O(D)` rounds), and
//! convergecast / broadcast along a fixed rooted tree (`O(depth)` rounds
//! each). They serve three purposes in this workspace:
//!
//! 1. they are genuinely executed by the shortcut framework (e.g. the
//!    "check whether any bad part remains" step of `FindShortcut` is a tree
//!    convergecast),
//! 2. they validate the simulator itself (their round counts have known
//!    closed forms),
//! 3. they are the yardstick the distributed tests compare centralized
//!    reference computations against.

mod bfs;
mod tree_cast;

pub use bfs::{BfsOutcome, DistributedBfs};
pub use tree_cast::{
    tree_aggregate, tree_broadcast, AggregateOp, TreeAggregateOutcome, TreeBroadcastOutcome,
};
