//! Distributed breadth-first-search tree construction.
//!
//! The standard `O(D)`-round flood: the root announces level 0; every node
//! adopts the first announcement it hears as its parent and re-announces its
//! own level in the next round. The shortcut framework runs this once to fix
//! the spanning tree `T` (Section 5.2 of the paper: "Computing a BFS tree
//! `T` … is a standard subroutine and can be computed in `O(D)` rounds").

use lcs_graph::{Graph, NodeId};

use crate::{Incoming, NodeContext, NodeProtocol, Outgoing, SimStats, Simulator};

/// Per-node state of the BFS protocol.
#[derive(Debug, Clone)]
pub struct DistributedBfs {
    root: NodeId,
    /// Depth of this node once joined.
    depth: Option<u32>,
    /// Chosen parent once joined (`None` for the root).
    parent: Option<NodeId>,
    /// Whether the node still has to announce its level.
    must_announce: bool,
}

/// Result of running [`DistributedBfs`] on a graph.
#[derive(Debug, Clone)]
pub struct BfsOutcome {
    /// The root the tree was grown from.
    pub root: NodeId,
    /// BFS depth of every node (indexed by node id).
    pub depths: Vec<u32>,
    /// BFS parent of every node (`None` for the root), indexed by node id.
    pub parents: Vec<Option<NodeId>>,
    /// Simulation statistics (the protocol terminates in `eccentricity + 1`
    /// rounds).
    pub stats: SimStats,
}

impl DistributedBfs {
    /// Runs the protocol on the simulator's graph from `root` and collects
    /// the distributed outputs into a [`BfsOutcome`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (the protocol itself never violates the
    /// CONGEST constraints) and reports a protocol error if the graph is
    /// disconnected.
    pub fn run(sim: &Simulator<'_>, root: NodeId) -> crate::Result<BfsOutcome> {
        let outcome = sim.run(|ctx| DistributedBfs {
            root,
            depth: if ctx.node == root { Some(0) } else { None },
            parent: None,
            must_announce: ctx.node == root,
        })?;
        let mut depths = Vec::with_capacity(outcome.nodes.len());
        let mut parents = Vec::with_capacity(outcome.nodes.len());
        for (i, node) in outcome.nodes.iter().enumerate() {
            let depth = node.depth.ok_or_else(|| crate::SimError::Protocol {
                reason: format!("node v{i} was never reached; the graph is disconnected"),
            })?;
            depths.push(depth);
            parents.push(node.parent);
        }
        Ok(BfsOutcome {
            root,
            depths,
            parents,
            stats: outcome.stats,
        })
    }

    /// Convenience wrapper: build a simulator with the default configuration
    /// and run the protocol.
    ///
    /// # Errors
    ///
    /// Same as [`DistributedBfs::run`].
    pub fn run_on(graph: &Graph, root: NodeId) -> crate::Result<BfsOutcome> {
        let sim = Simulator::new(graph, crate::SimConfig::for_graph(graph));
        Self::run(&sim, root)
    }
}

impl NodeProtocol for DistributedBfs {
    type Message = u32;

    fn init(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<u32>> {
        if ctx.node == self.root {
            self.must_announce = false;
            ctx.neighbor_ids()
                .iter()
                .map(|&v| Outgoing::new(v, 0))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        _round: u64,
        incoming: &[Incoming<u32>],
    ) -> Vec<Outgoing<u32>> {
        if self.depth.is_none() {
            // Adopt the first (and therefore smallest-level) announcement;
            // ties are broken by the smallest sender id for determinism.
            if let Some(best) = incoming.iter().min_by_key(|m| (m.msg, m.from)) {
                self.depth = Some(best.msg + 1);
                self.parent = Some(best.from);
                self.must_announce = true;
            }
        }
        if self.must_announce {
            self.must_announce = false;
            let level = self.depth.expect("announcing nodes have joined");
            return ctx
                .neighbor_ids()
                .iter()
                .filter(|&&v| Some(v) != self.parent)
                .map(|&v| Outgoing::new(v, level))
                .collect();
        }
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.depth.is_some() && !self.must_announce
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{bfs_distances, generators, RootedTree};

    #[test]
    fn bfs_depths_match_centralized_reference() {
        let g = generators::grid(7, 5);
        let root = NodeId::new(17);
        let outcome = DistributedBfs::run_on(&g, root).unwrap();
        let reference = bfs_distances(&g, root);
        for v in g.nodes() {
            assert_eq!(Some(outcome.depths[v.index()]), reference.dist[v.index()]);
        }
        assert_eq!(outcome.parents[root.index()], None);
    }

    #[test]
    fn bfs_parents_form_a_valid_tree() {
        let g = generators::torus(6, 6);
        let root = NodeId::new(0);
        let outcome = DistributedBfs::run_on(&g, root).unwrap();
        for v in g.nodes() {
            match outcome.parents[v.index()] {
                Some(p) => {
                    assert!(g.has_edge(v, p));
                    assert_eq!(outcome.depths[v.index()], outcome.depths[p.index()] + 1);
                }
                None => assert_eq!(v, root),
            }
        }
    }

    #[test]
    fn bfs_round_count_is_linear_in_eccentricity() {
        let g = generators::path(40);
        let outcome = DistributedBfs::run_on(&g, NodeId::new(0)).unwrap();
        // The wave reaches depth d in round d, so the protocol quiesces in
        // exactly eccentricity(root) rounds.
        assert_eq!(outcome.stats.rounds, 39);
        let tree = RootedTree::bfs(&g, NodeId::new(0));
        assert_eq!(
            outcome.depths.iter().copied().max().unwrap(),
            tree.depth_of_tree()
        );
    }

    #[test]
    fn bfs_on_disconnected_graph_reports_an_error() {
        // The unreachable node never joins the tree, so the protocol never
        // quiesces and the round cap fires.
        let g = lcs_graph::Graph::from_edges(3, &[(NodeId::new(0), NodeId::new(1))]).unwrap();
        let err = DistributedBfs::run_on(&g, NodeId::new(0)).unwrap_err();
        assert!(matches!(err, crate::SimError::RoundLimitExceeded { .. }));
    }

    #[test]
    fn bfs_message_count_is_bounded_by_twice_edge_count() {
        let g = generators::grid(10, 10);
        let outcome = DistributedBfs::run_on(&g, NodeId::new(0)).unwrap();
        // Every node announces once over each incident edge except towards
        // its parent, so at most 2m messages total.
        assert!(outcome.stats.messages <= 2 * g.edge_count() as u64);
    }
}
