//! Message size accounting.
//!
//! In the CONGEST model a message carries `O(log n)` bits. Protocols declare
//! the size of their messages via [`MessageBits`]; the simulator rejects any
//! message larger than the configured per-round bandwidth, which catches
//! protocols that accidentally stuff a whole neighborhood into one message.

/// Number of bits needed to address one of `count` distinct values
/// (at least 1 even for trivial domains, so that "empty" messages still
/// cost something).
pub fn bits_for_count(count: usize) -> usize {
    ((usize::BITS - count.saturating_sub(1).leading_zeros()) as usize).max(1)
}

/// Number of bits of a node, edge or part identifier in a graph with
/// `node_count` nodes: `⌈log₂ n⌉`, at least 1.
pub fn bits_for_node_count(node_count: usize) -> usize {
    bits_for_count(node_count.max(2))
}

/// Types that know their own size in bits when serialized into a CONGEST
/// message.
///
/// Implementations should return the size of the *encoded* message, not of
/// the in-memory representation; identifiers count as `⌈log₂ n⌉` bits,
/// booleans and tags as a constant number of bits.
pub trait MessageBits {
    /// Size of this message in bits.
    fn size_bits(&self) -> usize;
}

impl MessageBits for () {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageBits for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageBits for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

impl MessageBits for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl<A: MessageBits, B: MessageBits> MessageBits for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl<T: MessageBits> MessageBits for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageBits::size_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_count_is_ceil_log2() {
        assert_eq!(bits_for_count(2), 1);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 2);
        assert_eq!(bits_for_count(5), 3);
        assert_eq!(bits_for_count(1024), 10);
        assert_eq!(bits_for_count(1025), 11);
    }

    #[test]
    fn bits_for_node_count_has_a_floor() {
        assert_eq!(bits_for_node_count(0), 1);
        assert_eq!(bits_for_node_count(1), 1);
        assert_eq!(bits_for_node_count(2), 1);
        assert_eq!(bits_for_node_count(1_000_000), 20);
    }

    #[test]
    fn composite_message_sizes_add_up() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!((7u32, false).size_bits(), 33);
        assert_eq!(Some(3u64).size_bits(), 65);
        assert_eq!(None::<u64>.size_bits(), 1);
    }
}
