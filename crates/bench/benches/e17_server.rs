//! E17 benchmark: the wire cost of TCP serving (the table itself is
//! produced by the `experiments` binary; this bench times whole
//! loopback replays against one long-lived server):
//!
//! * `tcp_closed/{1,4}` — closed-loop replays at 1 and 4
//!   client connections, so the difference shows what concurrent
//!   serving over the shared session buys (or costs) end to end;
//! * `direct_serve_shared` — the same trace replayed in-process through
//!   `Session::serve_shared`, isolating protocol + socket overhead from
//!   query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::Pipeline;
use lcs_server::{client, ServerConfig, ServerHandle};
use lcs_workload::{
    generate_trace, query_of, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec,
};

const QUERIES: usize = 48;
const SEED: u64 = 23;

fn bench_e17(c: &mut Criterion) {
    let corpus_spec = CorpusSpec {
        family: Family::Grid,
        size: 10,
        entries: 4,
        seed: SEED,
    };
    let corpus = Corpus::build(&corpus_spec).unwrap();
    let spec = WorkloadSpec::new(
        Mode::Closed {
            clients: 1,
            think_nanos: 0,
        },
        QUERIES,
        1.0,
        QueryMix::consume(),
        SEED,
    );
    let trace = generate_trace(&spec, corpus.len()).unwrap();
    let server =
        ServerHandle::spawn(ServerConfig::new(vec![corpus_spec]).workers(4).seed(SEED)).unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("e17_server");
    group.sample_size(10);
    for clients in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("tcp_closed", clients),
            &clients,
            |b, &clients| {
                b.iter(|| client::replay_closed(addr, "grid", &trace, clients, 0).unwrap())
            },
        );
    }
    let session = Pipeline::on(corpus.graph()).seed(SEED).build().unwrap();
    group.bench_with_input(BenchmarkId::new("direct_serve_shared", 1), &(), |b, ()| {
        b.iter(|| {
            trace
                .iter()
                .map(|event| {
                    session
                        .serve_shared(query_of(&corpus, event))
                        .unwrap()
                        .digest
                })
                .fold(0u64, u64::wrapping_add)
        })
    });
    group.finish();

    client::shutdown(addr).unwrap();
    server.join().unwrap();
}

criterion_group!(benches, bench_e17);
criterion_main!(benches);
