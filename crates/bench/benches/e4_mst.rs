//! E4 benchmark: distributed Boruvka MST, shortcut strategies vs baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::{generators, EdgeWeights};
use lcs_api::{Pipeline, ShortcutStrategy};

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_mst");
    group.sample_size(10);
    let wheel = generators::wheel(129);
    let wheel_weights = EdgeWeights::random_permutation(&wheel, 3);
    let grid = generators::grid(10, 10);
    let grid_weights = EdgeWeights::random_permutation(&grid, 4);
    let wheel_session = Pipeline::on(&wheel).build().unwrap();
    let grid_session = Pipeline::on(&grid).build().unwrap();
    for (name, strategy) in [
        ("doubling", ShortcutStrategy::Doubling),
        ("no_shortcut", ShortcutStrategy::NoShortcut),
        ("whole_tree", ShortcutStrategy::WholeTree),
    ] {
        group.bench_with_input(BenchmarkId::new("wheel_129", name), &strategy, |b, s| {
            b.iter(|| wheel_session.mst(&wheel_weights, *s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("grid_10x10", name), &strategy, |b, s| {
            b.iter(|| grid_session.mst(&grid_weights, *s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
