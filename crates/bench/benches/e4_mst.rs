//! E4 benchmark: distributed Boruvka MST, shortcut strategies vs baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_graph::{generators, EdgeWeights};
use lcs_mst::{boruvka_mst, BoruvkaConfig, ShortcutStrategy};

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_mst");
    group.sample_size(10);
    let wheel = generators::wheel(129);
    let wheel_weights = EdgeWeights::random_permutation(&wheel, 3);
    let grid = generators::grid(10, 10);
    let grid_weights = EdgeWeights::random_permutation(&grid, 4);
    for (name, strategy) in [
        ("doubling", ShortcutStrategy::Doubling),
        ("no_shortcut", ShortcutStrategy::NoShortcut),
        ("whole_tree", ShortcutStrategy::WholeTree),
    ] {
        group.bench_with_input(BenchmarkId::new("wheel_129", name), &strategy, |b, s| {
            b.iter(|| boruvka_mst(&wheel, &wheel_weights, &BoruvkaConfig::new(*s)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("grid_10x10", name), &strategy, |b, s| {
            b.iter(|| boruvka_mst(&grid, &grid_weights, &BoruvkaConfig::new(*s)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
