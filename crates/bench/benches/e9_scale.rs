//! E9-companion benchmark: the scale tier's hot paths in isolation —
//! FindShortcut construction and the distributed verification protocol on
//! the grid 100×100 and torus 64×64 instances of the E9 table (the random
//! `n = 10⁵` row is left to the table/CI smoke, where one run suffices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::construction::{FindShortcut, FindShortcutConfig};
use lcs_core::existential::reference_parameters;
use lcs_dist::verification_simulated;
use lcs_graph::{generators, Graph, NodeId, Partition, RootedTree};

fn instances() -> Vec<(&'static str, Graph, Partition)> {
    let torus = generators::torus(64, 64);
    let torus_balls = generators::partitions::random_bfs_balls(&torus, 64, 11);
    vec![
        (
            "grid100x100",
            generators::grid(100, 100),
            generators::partitions::grid_columns(100, 100),
        ),
        ("torus64x64", torus, torus_balls),
    ]
}

fn bench_e9_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_scale");
    group.sample_size(10);
    for (name, graph, partition) in instances() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let cc = reference.congestion.max(1);
        let bb = reference.block_parameter.max(1);

        group.bench_with_input(BenchmarkId::new("find_shortcut", name), &name, |b, _| {
            b.iter(|| {
                FindShortcut::new(FindShortcutConfig::new(cc, bb).with_seed(42))
                    .run(&graph, &tree, &partition)
                    .unwrap()
            });
        });

        let shortcut = FindShortcut::new(FindShortcutConfig::new(cc, bb).with_seed(42))
            .run(&graph, &tree, &partition)
            .unwrap()
            .shortcut;
        let active = vec![true; partition.part_count()];
        group.bench_with_input(
            BenchmarkId::new("verification_simulated", name),
            &name,
            |b, _| {
                b.iter(|| {
                    verification_simulated(
                        &graph,
                        &tree,
                        &partition,
                        &shortcut,
                        3 * bb,
                        &active,
                        None,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e9_scale);
criterion_main!(benches);
