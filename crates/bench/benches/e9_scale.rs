//! E9-companion benchmark: the scale tier's hot paths in isolation —
//! FindShortcut construction and the distributed verification protocol on
//! the grid 100×100 and torus 64×64 instances of the E9 table (the random
//! `n = 10⁵` row is left to the table/CI smoke, where one run suffices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::existential::reference_parameters;
use lcs_api::graph::{generators, Graph, Partition};
use lcs_api::{ExecutionMode, Pipeline, Strategy};

fn instances() -> Vec<(&'static str, Graph, Partition)> {
    let torus = generators::torus(64, 64);
    let torus_balls = generators::partitions::random_bfs_balls(&torus, 64, 11);
    vec![
        (
            "grid100x100",
            generators::grid(100, 100),
            generators::partitions::grid_columns(100, 100),
        ),
        ("torus64x64", torus, torus_balls),
    ]
}

fn bench_e9_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_scale");
    group.sample_size(10);
    for (name, graph, partition) in instances() {
        let mut session = Pipeline::on(&graph).seed(42).build().unwrap();
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let strategy = Strategy::Fixed {
            congestion: reference.congestion.max(1),
            block: reference.block_parameter.max(1),
        };
        let bb = reference.block_parameter.max(1);

        group.bench_with_input(BenchmarkId::new("find_shortcut", name), &name, |b, _| {
            b.iter(|| session.shortcut(&partition, strategy).unwrap());
        });

        let shortcut = session.shortcut(&partition, strategy).unwrap().shortcut;
        session.set_execution(ExecutionMode::Simulated);
        group.bench_with_input(
            BenchmarkId::new("verification_simulated", name),
            &name,
            |b, _| {
                b.iter(|| session.verify(&shortcut, &partition, 3 * bb).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e9_scale);
criterion_main!(benches);
