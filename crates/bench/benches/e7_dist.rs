//! E7/E8-companion benchmark: wall-clock cost of executing the distributed
//! protocols in the CONGEST simulator versus computing the scheduled round
//! counts centrally, on the same instances as the E8 table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::dist::{part_leaders, BlockFamily};
use lcs_api::existential::ancestor_shortcut;
use lcs_api::graph::generators;
use lcs_api::routing::PartRouter;
use lcs_api::{ExecutionMode, Pipeline};

fn bench_e7_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_dist");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let graph = generators::grid(side, side);
        let partition = generators::partitions::grid_columns(side, side);
        let scheduled = Pipeline::on(&graph).build().unwrap();
        let simulated = Pipeline::on(&graph)
            .execution(ExecutionMode::Simulated)
            .build()
            .unwrap();
        let tree = scheduled.tree().clone();
        let shortcut = ancestor_shortcut(&graph, &tree, &partition);
        let family = BlockFamily::new(&graph, &tree, &partition, &shortcut);

        group.bench_with_input(
            BenchmarkId::new("leaders_simulated", side),
            &side,
            |b, _| {
                b.iter(|| part_leaders(&graph, &partition, &family, None).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("leaders_scheduled", side),
            &side,
            |b, _| {
                b.iter(|| PartRouter::new(&graph, &tree, &partition, &shortcut).elect_leaders());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("verification_simulated", side),
            &side,
            |b, _| {
                b.iter(|| simulated.verify(&shortcut, &partition, 3).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("verification_scheduled", side),
            &side,
            |b, _| {
                b.iter(|| scheduled.verify(&shortcut, &partition, 3).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e7_dist);
criterion_main!(benches);
