//! E7/E8-companion benchmark: wall-clock cost of executing the distributed
//! protocols in the CONGEST simulator versus computing the scheduled round
//! counts centrally, on the same instances as the E8 table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::construction::verification;
use lcs_core::existential::ancestor_shortcut;
use lcs_core::routing::PartRouter;
use lcs_dist::{part_leaders, verification_simulated, BlockFamily};
use lcs_graph::{generators, NodeId, RootedTree};

fn bench_e7_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_dist");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let graph = generators::grid(side, side);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::grid_columns(side, side);
        let shortcut = ancestor_shortcut(&graph, &tree, &partition);
        let family = BlockFamily::new(&graph, &tree, &partition, &shortcut);
        let active = vec![true; partition.part_count()];

        group.bench_with_input(
            BenchmarkId::new("leaders_simulated", side),
            &side,
            |b, _| {
                b.iter(|| part_leaders(&graph, &partition, &family, None).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("leaders_scheduled", side),
            &side,
            |b, _| {
                b.iter(|| PartRouter::new(&graph, &tree, &partition, &shortcut).elect_leaders());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("verification_simulated", side),
            &side,
            |b, _| {
                b.iter(|| {
                    verification_simulated(&graph, &tree, &partition, &shortcut, 3, &active, None)
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("verification_scheduled", side),
            &side,
            |b, _| {
                b.iter(|| verification(&graph, &tree, &partition, &shortcut, 3, &active));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e7_dist);
criterion_main!(benches);
