//! E10-companion benchmark: the sharded round engine on the 10⁵–10⁶-node
//! tier. Times the distributed verification protocol on the grid 320×320
//! instance across engine thread counts {1, 2, 4} — the speedup-vs-threads
//! curve `BENCH_SCALE.json` tracks (the torus and random rows are left to
//! the table/CI smoke, where one run per thread count suffices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::generators;
use lcs_api::{ExecutionMode, Pipeline, Strategy, Threads};

fn bench_e10_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_scale");
    group.sample_size(10);

    let graph = generators::grid(320, 320);
    let partition = generators::partitions::grid_columns(320, 320);
    let (cc, bb) = (319usize, 1usize);
    let shortcut = {
        let session = Pipeline::on(&graph).seed(42).build().unwrap();
        session
            .shortcut(
                &partition,
                Strategy::Fixed {
                    congestion: cc,
                    block: bb,
                },
            )
            .unwrap()
            .shortcut
    };

    for threads in [1usize, 2, 4] {
        let session = Pipeline::on(&graph)
            .seed(42)
            .threads(Threads::Fixed(threads))
            .execution(ExecutionMode::Simulated)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("verification_grid320", threads),
            &threads,
            |b, _| {
                b.iter(|| session.verify(&shortcut, &partition, 3 * bb).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e10_scale);
criterion_main!(benches);
