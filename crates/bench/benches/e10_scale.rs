//! E10-companion benchmark: the sharded round engine on the 10⁵–10⁶-node
//! tier. Times the distributed verification protocol on the grid 320×320
//! instance across engine thread counts {1, 2, 4} — the speedup-vs-threads
//! curve `BENCH_SCALE.json` tracks (the torus and random rows are left to
//! the table/CI smoke, where one run per thread count suffices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_congest::SimConfig;
use lcs_core::construction::{FindShortcut, FindShortcutConfig};
use lcs_dist::verification_simulated;
use lcs_graph::{generators, NodeId, RootedTree};

fn bench_e10_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_scale");
    group.sample_size(10);

    let graph = generators::grid(320, 320);
    let partition = generators::partitions::grid_columns(320, 320);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let (cc, bb) = (319usize, 1usize);
    let shortcut = FindShortcut::new(FindShortcutConfig::new(cc, bb).with_seed(42))
        .run(&graph, &tree, &partition)
        .unwrap()
        .shortcut;
    let active = vec![true; partition.part_count()];

    for threads in [1usize, 2, 4] {
        let config = SimConfig::for_graph(&graph).with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("verification_grid320", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    verification_simulated(
                        &graph,
                        &tree,
                        &partition,
                        &shortcut,
                        3 * bb,
                        &active,
                        Some(config),
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e10_scale);
criterion_main!(benches);
