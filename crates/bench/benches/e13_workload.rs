//! E13 benchmark: end-to-end workload throughput of the serving harness
//! (the table itself is produced by the `experiments` binary; this bench
//! times whole workload runs):
//!
//! * `open_consume` / `closed_consume` — read-only traffic (verify +
//!   quality) against a warm corpus, open loop at maximal pressure vs a
//!   4-client closed loop;
//! * `closed_mixed` — the same closed loop with a construct/MST minority,
//!   showing how much the expensive tail costs in aggregate;
//! * `trace_generation` — the pure generator, to confirm traffic synthesis
//!   is noise next to serving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_workload::{
    generate_trace, run_workload, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec,
};

const QUERIES: usize = 120;

fn spec(mode: Mode, mix: QueryMix) -> WorkloadSpec {
    WorkloadSpec::new(mode, QUERIES, 1.0, mix, 17)
}

fn bench_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_workload");
    group.sample_size(10);
    for size in [12usize, 16] {
        let corpus = Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size,
            entries: 6,
            seed: 42,
        })
        .unwrap();
        let open = Mode::Open {
            mean_interarrival_nanos: 0,
        };
        let closed = Mode::Closed {
            clients: 4,
            think_nanos: 0,
        };

        group.bench_with_input(BenchmarkId::new("open_consume", size), &size, |b, _| {
            b.iter(|| run_workload(&corpus, &spec(open, QueryMix::consume())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("closed_consume", size), &size, |b, _| {
            b.iter(|| run_workload(&corpus, &spec(closed, QueryMix::consume())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("closed_mixed", size), &size, |b, _| {
            b.iter(|| run_workload(&corpus, &spec(closed, QueryMix::mixed())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("trace_generation", size), &size, |b, _| {
            let s = spec(open, QueryMix::mixed());
            b.iter(|| generate_trace(&s, corpus.len()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
