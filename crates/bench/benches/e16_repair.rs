//! E16 benchmark: incremental repair vs full rebuild (the
//! update-vs-rebuild table is produced by the `experiments` binary; this
//! bench times the same operations under Criterion's statistics):
//!
//! * `track_full` — tracking a 48x48 grid's column partition from
//!   scratch (the rebuild path repair is measured against);
//! * `repair/{1,4,12}` — repairing the tracked baseline through a churn
//!   delta that moves that many boundary nodes (dirtying one part more),
//!   so the distribution shows the cost growing with the dirty-part
//!   count while staying far below `track_full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::{generators, NodeId, PartId};
use lcs_api::{PartitionDelta, Pipeline, Strategy};

const SIDE: usize = 48;

fn bench_repair(c: &mut Criterion) {
    let graph = generators::grid(SIDE, SIDE);
    let partition = generators::partitions::grid_columns(SIDE, SIDE);

    {
        let mut group = c.benchmark_group("e16/track");
        group.bench_with_input(BenchmarkId::new("full", SIDE), &(), |b, ()| {
            b.iter(|| {
                let mut session = Pipeline::on(&graph).seed(7).build().unwrap();
                session
                    .track_partition(&partition, Strategy::doubling())
                    .unwrap()
            });
        });
        group.finish();
    }

    // One tracked baseline, repaired repeatedly: `repair_from` serves
    // from the detached snapshot, so every iteration sees the same state.
    let mut session = Pipeline::on(&graph).seed(7).build().unwrap();
    session
        .track_partition(&partition, Strategy::doubling())
        .unwrap();
    let baseline = session.repair_baseline().unwrap();

    let mut group = c.benchmark_group("e16/repair");
    for moved in [1usize, 4, 12] {
        // Move the row-0 node of columns 1..=moved into column 0: the
        // moved run stays attached to column 0 and every source column
        // keeps its remaining path, so the delta is always valid.
        let nodes: Vec<NodeId> = (1..=moved).map(NodeId::new).collect();
        let delta = PartitionDelta::new().move_nodes(nodes, PartId::new(0));
        group.bench_with_input(BenchmarkId::new("moved", moved), &delta, |b, delta| {
            b.iter(|| session.repair_from(&baseline, delta).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);
