//! E5 benchmark: CoreSlow (Algorithm 1) vs CoreFast (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::construction::{core_fast, core_slow, CoreFastConfig};
use lcs_graph::{generators, NodeId, RootedTree};

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_core");
    group.sample_size(10);
    let graph = generators::grid(20, 20);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    for parts in [20usize, 100] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 3);
        let active = vec![true; partition.part_count()];
        let congestion = parts / 2;
        group.bench_with_input(BenchmarkId::new("core_slow", parts), &parts, |b, _| {
            b.iter(|| core_slow(&graph, &tree, &partition, congestion, &active))
        });
        group.bench_with_input(BenchmarkId::new("core_fast", parts), &parts, |b, _| {
            b.iter(|| {
                core_fast(
                    &graph,
                    &tree,
                    &partition,
                    &CoreFastConfig::new(congestion),
                    &active,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
