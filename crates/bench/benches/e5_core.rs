//! E5 benchmark: CoreSlow (Algorithm 1) vs CoreFast (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::generators;
use lcs_api::{CoreKind, Pipeline};

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_core");
    group.sample_size(10);
    let graph = generators::grid(20, 20);
    let session = Pipeline::on(&graph).build().unwrap();
    for parts in [20usize, 100] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 3);
        let congestion = parts / 2;
        group.bench_with_input(BenchmarkId::new("core_slow", parts), &parts, |b, _| {
            b.iter(|| {
                session
                    .core(&partition, CoreKind::Slow, congestion)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("core_fast", parts), &parts, |b, _| {
            b.iter(|| {
                session
                    .core(&partition, CoreKind::Fast, congestion)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
