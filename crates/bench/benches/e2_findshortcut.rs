//! E2 benchmark: FindShortcut (Theorem 3) construction time as the instance
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::construction::{FindShortcut, FindShortcutConfig};
use lcs_core::existential::reference_parameters;
use lcs_graph::{generators, NodeId, RootedTree};

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_findshortcut");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let graph = generators::grid(side, side);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::grid_columns(side, side);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let config = FindShortcutConfig::new(
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        );
        group.bench_with_input(BenchmarkId::new("grid_columns", side), &side, |b, _| {
            b.iter(|| {
                FindShortcut::new(config)
                    .run(&graph, &tree, &partition)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
