//! E2 benchmark: FindShortcut (Theorem 3) construction time as the instance
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::existential::reference_parameters;
use lcs_api::graph::generators;
use lcs_api::{Pipeline, Strategy};

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_findshortcut");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let graph = generators::grid(side, side);
        let partition = generators::partitions::grid_columns(side, side);
        let session = Pipeline::on(&graph).build().unwrap();
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let strategy = Strategy::Fixed {
            congestion: reference.congestion.max(1),
            block: reference.block_parameter.max(1),
        };
        group.bench_with_input(BenchmarkId::new("grid_columns", side), &side, |b, _| {
            b.iter(|| session.shortcut(&partition, strategy).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
