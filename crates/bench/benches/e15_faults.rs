//! E15 benchmark: fault-injected verification (the robustness table is
//! produced by the `experiments` binary; this bench times the same
//! operation under Criterion's statistics):
//!
//! * `verify_clean` — grid 32x32 simulated verification with no fault
//!   plan (the baseline the fault-mode schedule stretches);
//! * `verify_faulty` — the identical query under a combined plan
//!   (latency 1, 1% loss, one restarting crash) through the self-healing
//!   retry wrapper.
//!
//! The gap between the two distributions is the price of the fault
//! machinery: the stretched windows and the per-poll resend engine, not
//! the (constant-time) per-message fault draws.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::{generators, Graph, Partition};
use lcs_api::{ExecutionMode, FaultPlan, Pipeline, Strategy, TreeShortcut};

const SIDE: usize = 32;

fn build_shortcut(graph: &Graph, partition: &Partition) -> TreeShortcut {
    let session = Pipeline::on(graph).seed(42).build().unwrap();
    session
        .shortcut(
            partition,
            Strategy::Fixed {
                congestion: partition.part_count(),
                block: 1,
            },
        )
        .unwrap()
        .shortcut
}

fn verify_once(
    graph: &Graph,
    partition: &Partition,
    shortcut: &TreeShortcut,
    fault: Option<FaultPlan>,
) {
    let mut pipeline = Pipeline::on(graph)
        .seed(42)
        .execution(ExecutionMode::Simulated);
    if let Some(plan) = fault {
        pipeline = pipeline.fault(plan);
    }
    let session = pipeline.build().unwrap();
    let run = session.verify(shortcut, partition, 3).unwrap();
    assert!(run.good.iter().all(|&g| g));
}

fn bench_e15(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_faults");
    group.sample_size(10);
    let graph = generators::grid(SIDE, SIDE);
    let partition = generators::partitions::grid_columns(SIDE, SIDE);
    let shortcut = build_shortcut(&graph, &partition);
    let plan = FaultPlan::new(21)
        .with_latency(1)
        .with_loss_ppm(10_000)
        .with_crashes(1, 10, 40);

    group.bench_with_input(BenchmarkId::new("verify_clean", SIDE), &SIDE, |b, _| {
        b.iter(|| verify_once(&graph, &partition, &shortcut, None))
    });
    group.bench_with_input(BenchmarkId::new("verify_faulty", SIDE), &SIDE, |b, _| {
        b.iter(|| verify_once(&graph, &partition, &shortcut, Some(plan)))
    });
    group.finish();
}

criterion_group!(benches, bench_e15);
criterion_main!(benches);
