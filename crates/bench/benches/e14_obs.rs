//! E14 benchmark: instrumentation overhead of the observability layer
//! (the on-vs-off table is produced by the `experiments` binary; this
//! bench times the same operation under Criterion's statistics):
//!
//! * `verify_off` — grid 32x32 simulated verification with the recorder
//!   off (an [`lcs_obs::Obs::off`] handle: every probe is one branch on a
//!   `None`);
//! * `verify_on` — the identical operation with a fresh recording
//!   registry attached, paying for real counters, gauges, timers and
//!   span merges.
//!
//! The two distributions should be statistically indistinguishable at
//! this size — the zero-overhead-when-off claim as a Criterion
//! comparison rather than a table cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::{generators, Graph, Partition};
use lcs_api::{ExecutionMode, Pipeline, Strategy};
use lcs_obs::Obs;

const SIDE: usize = 32;

fn verify_once(graph: &Graph, partition: &Partition, obs: &Obs) {
    let session = Pipeline::on(graph)
        .seed(42)
        .execution(ExecutionMode::Simulated)
        .recorder(obs.clone())
        .build()
        .unwrap();
    let run = session
        .shortcut(
            partition,
            Strategy::Fixed {
                congestion: partition.part_count(),
                block: 1,
            },
        )
        .unwrap();
    session.verify(&run.shortcut, partition, 3).unwrap();
}

fn bench_e14(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_obs");
    group.sample_size(10);
    let graph = generators::grid(SIDE, SIDE);
    let partition = generators::partitions::grid_columns(SIDE, SIDE);

    group.bench_with_input(BenchmarkId::new("verify_off", SIDE), &SIDE, |b, _| {
        let obs = Obs::off();
        b.iter(|| verify_once(&graph, &partition, &obs))
    });
    group.bench_with_input(BenchmarkId::new("verify_on", SIDE), &SIDE, |b, _| {
        b.iter(|| verify_once(&graph, &partition, &Obs::recording()))
    });
    group.finish();
}

criterion_group!(benches, bench_e14);
criterion_main!(benches);
