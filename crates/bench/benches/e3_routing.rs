//! E3 benchmark: the Lemma 2 routing scheduler on overlapping subtree
//! families of growing congestion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::{generators, NodeId, RootedTree};
use lcs_api::routing::{convergecast_rounds, RoutingPriority, SubtreeSpec};

fn bench_e3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_routing");
    group.sample_size(10);
    let graph = generators::path(200);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let all: Vec<NodeId> = graph.nodes().collect();
    for load in [2usize, 8, 32] {
        let family: Vec<SubtreeSpec> = (0..load)
            .map(|_| SubtreeSpec::new(&tree, all.clone()))
            .collect();
        group.bench_with_input(BenchmarkId::new("overlapping_path", load), &load, |b, _| {
            b.iter(|| convergecast_rounds(&tree, &family, RoutingPriority::BlockRootDepth))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
