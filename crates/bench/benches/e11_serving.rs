//! E11 benchmark: multi-query serving throughput through the `lcs_api`
//! façade (the table itself is produced by the `experiments` binary; this
//! bench times both query shapes):
//!
//! * `warm_batch` vs `cold_per_query` — shortcut+quality construction
//!   queries with and without session reuse (setup amortization only;
//!   construction dominates, so the two are close);
//! * `warm_consume` vs `cold_consume` — verification queries answered from
//!   the session's prebuilt decomposition corpus versus a cold consumer
//!   re-running setup + construction per query ("one decomposition, many
//!   consumers" — where serving wins big).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::{generators, Partition};
use lcs_api::{Pipeline, Strategy, TreeShortcut};

fn serving_partitions(graph: &lcs_api::graph::Graph, count: usize) -> Vec<Partition> {
    (0..count as u64)
        .map(|seed| generators::partitions::random_bfs_balls(graph, 24, seed))
        .collect()
}

fn bench_e11(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_serving");
    group.sample_size(10);
    for side in [24usize, 32] {
        let graph = generators::grid(side, side);
        let partitions = serving_partitions(&graph, 8);
        let refs: Vec<&Partition> = partitions.iter().collect();

        // Warm: the session (tree, shard map, quality pool) is built once
        // and reused by every query of every iteration.
        let session = Pipeline::on(&graph).build().unwrap();
        group.bench_with_input(BenchmarkId::new("warm_batch", side), &side, |b, _| {
            b.iter(|| session.batch(&refs, Strategy::doubling()).unwrap())
        });

        // Cold: every query pays the full per-graph setup again.
        group.bench_with_input(BenchmarkId::new("cold_per_query", side), &side, |b, _| {
            b.iter(|| {
                let mut runs = Vec::with_capacity(partitions.len());
                for partition in &partitions {
                    let one_shot = Pipeline::on(&graph).build().unwrap();
                    let mut run = one_shot.shortcut(partition, Strategy::doubling()).unwrap();
                    run.report.quality = Some(one_shot.quality(&run.shortcut, partition).unwrap());
                    runs.push(run);
                }
                runs
            })
        });

        // Consume: verification against the cached decomposition corpus,
        // vs a cold consumer that reconstructs it per query.
        let corpus: Vec<TreeShortcut> = {
            let prep = Pipeline::on(&graph).build().unwrap();
            partitions
                .iter()
                .map(|p| prep.shortcut(p, Strategy::doubling()).unwrap().shortcut)
                .collect()
        };
        group.bench_with_input(BenchmarkId::new("warm_consume", side), &side, |b, _| {
            b.iter(|| {
                partitions
                    .iter()
                    .zip(&corpus)
                    .map(|(p, sc)| session.verify(sc, p, 3).unwrap().good)
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("cold_consume", side), &side, |b, _| {
            b.iter(|| {
                partitions
                    .iter()
                    .map(|p| {
                        let one_shot = Pipeline::on(&graph).build().unwrap();
                        let run = one_shot.shortcut(p, Strategy::doubling()).unwrap();
                        one_shot.verify(&run.shortcut, p, 3).unwrap().good
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
