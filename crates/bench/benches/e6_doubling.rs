//! E6 benchmark: the Appendix A doubling search vs known parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::existential::reference_parameters;
use lcs_api::graph::generators;
use lcs_api::{Pipeline, Strategy};

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_doubling");
    group.sample_size(10);
    for side in [8usize, 16] {
        let graph = generators::grid(side, side);
        let partition = generators::partitions::grid_columns(side, side);
        let session = Pipeline::on(&graph).build().unwrap();
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let known = Strategy::Fixed {
            congestion: reference.congestion.max(1),
            block: reference.block_parameter.max(1),
        };
        group.bench_with_input(BenchmarkId::new("known_parameters", side), &side, |b, _| {
            b.iter(|| session.shortcut(&partition, known).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("doubling", side), &side, |b, _| {
            b.iter(|| session.shortcut(&partition, Strategy::doubling()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
