//! E1 benchmark: wall-clock cost of constructing shortcuts on planar and
//! genus-g families (the table itself is produced by the `experiments`
//! binary; this bench times the dominant computation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::construction::{doubling_search, DoublingConfig};
use lcs_graph::{generators, NodeId, RootedTree};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_quality");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let graph = generators::grid(side, side);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::grid_columns(side, side);
        group.bench_with_input(BenchmarkId::new("grid_doubling", side), &side, |b, _| {
            b.iter(|| doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap())
        });
    }
    for genus in [1usize, 4] {
        let graph = generators::genus_handles(12, 12, genus);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::grid_columns(12, 12);
        group.bench_with_input(BenchmarkId::new("genus_doubling", genus), &genus, |b, _| {
            b.iter(|| doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
