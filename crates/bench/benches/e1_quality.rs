//! E1 benchmark: wall-clock cost of constructing shortcuts on planar and
//! genus-g families (the table itself is produced by the `experiments`
//! binary; this bench times the dominant computation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_api::graph::generators;
use lcs_api::{Pipeline, Strategy};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_quality");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let graph = generators::grid(side, side);
        let partition = generators::partitions::grid_columns(side, side);
        let session = Pipeline::on(&graph).build().unwrap();
        group.bench_with_input(BenchmarkId::new("grid_doubling", side), &side, |b, _| {
            b.iter(|| session.shortcut(&partition, Strategy::doubling()).unwrap())
        });
    }
    for genus in [1usize, 4] {
        let graph = generators::genus_handles(12, 12, genus);
        let partition = generators::partitions::grid_columns(12, 12);
        let session = Pipeline::on(&graph).build().unwrap();
        group.bench_with_input(BenchmarkId::new("genus_doubling", genus), &genus, |b, _| {
            b.iter(|| session.shortcut(&partition, Strategy::doubling()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
