//! The experiment tables E1–E10.

use lcs_congest::primitives::AggregateOp;
use lcs_core::construction::{
    core_fast, core_slow, doubling_search, CoreFastConfig, DoublingConfig, FindShortcut,
    FindShortcutConfig,
};
use lcs_core::existential::reference_parameters;
use lcs_core::routing::{convergecast_rounds, RoutingPriority, SubtreeSpec};
use lcs_dist::CrossCheck;
use lcs_graph::{diameter_exact, generators, EdgeWeights, NodeId, Partition, RootedTree};
use lcs_mst::{boruvka_mst, BoruvkaConfig, ShortcutStrategy};

/// A rendered experiment table: a title, column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier and short description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// One row per measurement.
    pub rows: Vec<Vec<String>>,
}

/// Renders a [`Table`] as aligned plain text.
pub fn render_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.headers.iter().map(String::len).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {}\n", table.title));
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&table.headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

fn grid_instance(side: usize) -> (lcs_graph::Graph, RootedTree, Partition) {
    let graph = generators::grid(side, side);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let partition = generators::partitions::grid_columns(side, side);
    (graph, tree, partition)
}

/// E1 — Theorem 1 / Corollary 1 shape: quality of constructed shortcuts on
/// planar and genus-`g` families (grid-column partitions, doubling
/// construction).
pub fn e1_quality_table() -> Table {
    let mut rows = Vec::new();
    let mut push_row = |family: String, graph: &lcs_graph::Graph, partition: &Partition| {
        let tree = RootedTree::bfs(graph, NodeId::new(0));
        let result = doubling_search(graph, &tree, partition, DoublingConfig::new())
            .expect("families in E1 admit shortcuts");
        let q = result.shortcut.quality(graph, partition);
        rows.push(vec![
            family,
            graph.node_count().to_string(),
            diameter_exact(graph).to_string(),
            partition.part_count().to_string(),
            q.congestion.to_string(),
            q.block_parameter.to_string(),
            q.dilation.to_string(),
            result.total_rounds().to_string(),
        ]);
    };

    for side in [8usize, 12, 16, 24] {
        let graph = generators::grid(side, side);
        let partition = generators::partitions::grid_columns(side, side);
        push_row(format!("grid {side}x{side} (genus 0)"), &graph, &partition);
    }
    for genus in [1usize, 2, 4, 8] {
        let graph = generators::genus_handles(16, 16, genus);
        let partition = generators::partitions::grid_columns(16, 16);
        push_row(
            format!("16x16 + {genus} handles (genus <= {genus})"),
            &graph,
            &partition,
        );
    }
    {
        let graph = generators::torus(16, 16);
        let partition = generators::partitions::grid_columns(16, 16);
        push_row("torus 16x16 (genus 1)".to_string(), &graph, &partition);
    }
    {
        let graph = generators::wheel(257);
        let partition = generators::partitions::wheel_arcs(257, 16);
        push_row("wheel W_257 (planar, D=2)".to_string(), &graph, &partition);
    }

    Table {
        title: "E1: shortcut quality on planar / genus-g families (doubling construction)"
            .to_string(),
        headers: [
            "family",
            "n",
            "D",
            "N",
            "congestion",
            "block",
            "dilation",
            "rounds",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E2 — Theorem 3 shape: FindShortcut round count as the instance grows
/// (grid side sweep and part-count sweep).
pub fn e2_findshortcut_table() -> Table {
    let mut rows = Vec::new();
    for side in [8usize, 12, 16, 24, 32] {
        let (graph, tree, partition) = grid_instance(side);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let config = FindShortcutConfig::new(
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        )
        .with_seed(1);
        let result = FindShortcut::new(config)
            .run(&graph, &tree, &partition)
            .unwrap();
        let q = result.shortcut.quality(&graph, &partition);
        rows.push(vec![
            format!("grid {side}x{side}, columns"),
            graph.node_count().to_string(),
            tree.depth_of_tree().to_string(),
            partition.part_count().to_string(),
            format!("({}, {})", reference.congestion, reference.block_parameter),
            result.iterations.to_string(),
            result.total_rounds().to_string(),
            q.congestion.to_string(),
            q.block_parameter.to_string(),
            result.all_parts_good.to_string(),
        ]);
    }
    // Part-count sweep at fixed size: random BFS-ball partitions.
    let side = 20usize;
    let graph = generators::grid(side, side);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    for parts in [5usize, 10, 20, 40, 80] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 7);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let config = FindShortcutConfig::new(
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        )
        .with_seed(2);
        let result = FindShortcut::new(config)
            .run(&graph, &tree, &partition)
            .unwrap();
        let q = result.shortcut.quality(&graph, &partition);
        rows.push(vec![
            format!("grid {side}x{side}, {parts} BFS balls"),
            graph.node_count().to_string(),
            tree.depth_of_tree().to_string(),
            parts.to_string(),
            format!("({}, {})", reference.congestion, reference.block_parameter),
            result.iterations.to_string(),
            result.total_rounds().to_string(),
            q.congestion.to_string(),
            q.block_parameter.to_string(),
            result.all_parts_good.to_string(),
        ]);
    }
    Table {
        title: "E2: FindShortcut (Theorem 3) scaling — rounds vs n, D and N".to_string(),
        headers: [
            "instance",
            "n",
            "depth(T)",
            "N",
            "(c, b) ref",
            "iterations",
            "rounds",
            "out congestion",
            "out block",
            "all good",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E3 — Lemma 2 / Theorem 2 shape: routing rounds versus `D + c`.
pub fn e3_routing_table() -> Table {
    let mut rows = Vec::new();
    // Overlapping copies of a path subtree: congestion grows, depth fixed.
    let graph = generators::path(200);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let all: Vec<NodeId> = graph.nodes().collect();
    for c in [1usize, 2, 4, 8, 16, 32] {
        let family: Vec<SubtreeSpec> = (0..c)
            .map(|_| SubtreeSpec::new(&tree, all.clone()))
            .collect();
        let lemma2 = convergecast_rounds(&tree, &family, RoutingPriority::BlockRootDepth);
        let reverse = convergecast_rounds(&tree, &family, RoutingPriority::ReverseDepth);
        rows.push(vec![
            format!("path_200, {c} overlapping subtrees"),
            tree.depth_of_tree().to_string(),
            c.to_string(),
            lemma2.rounds.to_string(),
            (u64::from(tree.depth_of_tree()) + c as u64).to_string(),
            reverse.rounds.to_string(),
        ]);
    }
    // Nested suffixes on a deeper path: priority rule matters more.
    let graph = generators::path(240);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    for c in [8usize, 16, 32] {
        let family: Vec<SubtreeSpec> = (0..c)
            .map(|k| SubtreeSpec::new(&tree, (k * (240 / c)..240).map(NodeId::new).collect()))
            .collect();
        let lemma2 = convergecast_rounds(&tree, &family, RoutingPriority::BlockRootDepth);
        let reverse = convergecast_rounds(&tree, &family, RoutingPriority::ReverseDepth);
        rows.push(vec![
            format!("path_240, {c} nested suffixes"),
            tree.depth_of_tree().to_string(),
            lemma2.max_edge_load.to_string(),
            lemma2.rounds.to_string(),
            (u64::from(tree.depth_of_tree()) + lemma2.max_edge_load as u64).to_string(),
            reverse.rounds.to_string(),
        ]);
    }
    Table {
        title: "E3: Lemma 2 tree routing — measured rounds vs the D + c bound (and the reverse-priority ablation)".to_string(),
        headers: ["family", "D", "c", "rounds (Lemma 2 priority)", "D + c bound", "rounds (reverse priority)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E4 — Lemma 4 shape: distributed MST rounds, shortcuts vs baselines.
///
/// Reports both the total rounds (which include the per-phase shortcut
/// construction) and the routing-only rounds (the cost of the per-part
/// minimum-outgoing-edge exchanges, the quantity Lemma 4's comparison is
/// about: `O(D·polylog)` with shortcuts versus the part diameter without).
pub fn e4_mst_table() -> Table {
    /// Sum of the "min-outgoing-edge" entries of a run's cost breakdown.
    fn routing_rounds(outcome: &lcs_mst::MstOutcome) -> u64 {
        outcome
            .cost
            .entries()
            .iter()
            .filter(|(label, _)| label.contains("min-outgoing-edge"))
            .map(|(_, rounds)| rounds)
            .sum()
    }

    let mut rows = Vec::new();
    let mut push_row = |family: &str, graph: &lcs_graph::Graph, seed: u64| {
        let weights = EdgeWeights::random_permutation(graph, seed);
        let reference = lcs_graph::kruskal_mst(graph, &weights);
        let mut cells = vec![
            family.to_string(),
            graph.node_count().to_string(),
            diameter_exact(graph).to_string(),
        ];
        let mut routing = Vec::new();
        for strategy in [
            ShortcutStrategy::Doubling,
            ShortcutStrategy::NoShortcut,
            ShortcutStrategy::WholeTree,
        ] {
            let outcome = boruvka_mst(
                graph,
                &weights,
                &BoruvkaConfig::new(strategy).with_seed(seed),
            )
            .expect("MST succeeds");
            assert_eq!(
                outcome.edges, reference,
                "distributed MST must match Kruskal"
            );
            cells.push(outcome.total_rounds().to_string());
            if matches!(strategy, ShortcutStrategy::Doubling) {
                cells.push(outcome.phases.to_string());
            }
            if !matches!(strategy, ShortcutStrategy::WholeTree) {
                routing.push(routing_rounds(&outcome).to_string());
            }
        }
        cells.extend(routing);
        rows.push(cells);
    };

    push_row("wheel W_129 (D=2)", &generators::wheel(129), 3);
    push_row("wheel W_257 (D=2)", &generators::wheel(257), 4);
    push_row("wheel W_513 (D=2)", &generators::wheel(513), 5);
    push_row("wheel W_1025 (D=2)", &generators::wheel(1025), 10);
    push_row("grid 12x12", &generators::grid(12, 12), 6);
    push_row("grid 16x16", &generators::grid(16, 16), 7);
    push_row("torus 12x12 (genus 1)", &generators::torus(12, 12), 8);
    let (lb, _) = generators::lower_bound_graph(8, 32);
    push_row("lower-bound graph 8x32 (hard)", &lb, 9);

    Table {
        title: "E4: distributed Boruvka MST (Lemma 4) — rounds by shortcut strategy (totals include per-phase construction; 'routing' columns isolate the per-part min-edge exchanges)"
            .to_string(),
        headers: [
            "family", "n", "D", "doubling total", "phases", "no-shortcut total",
            "whole-tree total", "shortcut routing", "baseline routing",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E5 — Lemmas 5 and 7: CoreSlow vs CoreFast rounds and output quality.
pub fn e5_core_table() -> Table {
    let mut rows = Vec::new();
    let side = 20usize;
    let graph = generators::grid(side, side);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    for parts in [10usize, 25, 50, 100, 200] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 3);
        let active = vec![true; partition.part_count()];
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        let slow = core_slow(&graph, &tree, &partition, c, &active);
        let fast = core_fast(
            &graph,
            &tree,
            &partition,
            &CoreFastConfig::new(c).with_seed(5),
            &active,
        );
        let good = |shortcut: &lcs_core::TreeShortcut| {
            shortcut
                .block_counts(&graph, &partition)
                .iter()
                .filter(|&&k| k <= 3 * b)
                .count()
        };
        let max_assign = |outcome: &lcs_core::construction::CoreOutcome| {
            graph
                .edge_ids()
                .map(|e| outcome.shortcut.parts_on_edge(e).len())
                .max()
                .unwrap_or(0)
        };
        rows.push(vec![
            format!("grid {side}x{side}, {parts} BFS balls"),
            format!("({c}, {b})"),
            slow.rounds.to_string(),
            fast.rounds.to_string(),
            format!("{}/{}", good(&slow.shortcut), parts),
            format!("{}/{}", good(&fast.shortcut), parts),
            format!("{} (<= {})", max_assign(&slow), 2 * c),
            max_assign(&fast).to_string(),
        ]);
    }
    Table {
        title:
            "E5: CoreSlow (Lemma 7) vs CoreFast (Lemma 5) — rounds, good parts, max edge assignment"
                .to_string(),
        headers: [
            "instance",
            "(c, b) ref",
            "slow rounds",
            "fast rounds",
            "slow good",
            "fast good",
            "slow max/edge",
            "fast max/edge",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E6 — Appendix A: overhead of the doubling search versus known
/// parameters.
pub fn e6_doubling_table() -> Table {
    let mut rows = Vec::new();
    for side in [8usize, 16, 24] {
        let (graph, tree, partition) = grid_instance(side);
        let (_, reference) = reference_parameters(&graph, &tree, &partition);
        let known = FindShortcut::new(
            FindShortcutConfig::new(
                reference.congestion.max(1),
                reference.block_parameter.max(1),
            )
            .with_seed(3),
        )
        .run(&graph, &tree, &partition)
        .unwrap();
        let unknown = doubling_search(
            &graph,
            &tree,
            &partition,
            DoublingConfig::new().with_seed(3),
        )
        .unwrap();
        rows.push(vec![
            format!("grid {side}x{side}, columns"),
            format!("({}, {})", reference.congestion, reference.block_parameter),
            known.total_rounds().to_string(),
            format!("({}, {})", unknown.congestion_guess, unknown.block_guess),
            unknown.attempts.len().to_string(),
            unknown.total_rounds().to_string(),
            format!(
                "{:.2}",
                unknown.total_rounds() as f64 / known.total_rounds().max(1) as f64
            ),
        ]);
    }
    Table {
        title: "E6: Appendix A doubling search vs known parameters".to_string(),
        headers: [
            "instance",
            "(c, b) known",
            "rounds (known)",
            "(c, b) found",
            "attempts",
            "rounds (doubling)",
            "overhead",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E7 — guarantee validation across families: congestion ≤ 8c·iterations,
/// block ≤ 3b, dilation ≤ b(2D+1).
pub fn e7_guarantees_table() -> Table {
    let mut rows = Vec::new();
    let mut check =
        |family: &str, graph: &lcs_graph::Graph, tree: &RootedTree, partition: &Partition| {
            let (_, reference) = reference_parameters(graph, tree, partition);
            let c = reference.congestion.max(1);
            let b = reference.block_parameter.max(1);
            let result = FindShortcut::new(FindShortcutConfig::new(c, b).with_seed(9))
                .run(graph, tree, partition)
                .unwrap();
            let q = result.shortcut.quality(graph, partition);
            let congestion_bound = 8 * c * result.iterations.max(1) + 1;
            rows.push(vec![
                family.to_string(),
                format!("({c}, {b})"),
                result.all_parts_good.to_string(),
                format!("{} <= {}", q.block_parameter, 3 * b),
                (q.block_parameter <= 3 * b).to_string(),
                format!("{} <= {}", q.congestion, congestion_bound),
                (q.congestion <= congestion_bound).to_string(),
                q.satisfies_lemma1(tree.depth_of_tree()).to_string(),
            ]);
        };

    for side in [8usize, 16] {
        let (graph, tree, partition) = grid_instance(side);
        check(
            &format!("grid {side}x{side}, columns"),
            &graph,
            &tree,
            &partition,
        );
    }
    {
        let graph = generators::torus(12, 12);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::random_bfs_balls(&graph, 12, 2);
        check("torus 12x12, 12 BFS balls", &graph, &tree, &partition);
    }
    {
        let graph = generators::wheel(129);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::wheel_arcs(129, 8);
        check("wheel W_129, 8 arcs", &graph, &tree, &partition);
    }
    {
        let graph = generators::genus_handles(16, 16, 4);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::grid_columns(16, 16);
        check("16x16 + 4 handles, columns", &graph, &tree, &partition);
    }
    {
        let graph = generators::caterpillar(40, 3);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let partition = generators::partitions::random_bfs_balls(&graph, 10, 4);
        check("caterpillar 40x3, 10 BFS balls", &graph, &tree, &partition);
    }

    Table {
        title: "E7: Theorem 3 / Lemma 1 guarantee validation across families".to_string(),
        headers: [
            "family",
            "(c, b) ref",
            "all good",
            "block <= 3b",
            "ok",
            "congestion <= 8c*iter",
            "ok",
            "Lemma 1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E8 — charged vs executed rounds: every distributed protocol of
/// `lcs_dist` cross-checked against its scheduled counterpart across the
/// generator families. Every row's results are asserted equal by the
/// [`CrossCheck`] harness (the builder panics otherwise) and the executed
/// round counts respect the Lemma 2 / Theorem 2 / Lemma 3 bounds; the
/// table shows how far the executed protocols sit from the charged
/// schedules.
pub fn e8_dist_table() -> Table {
    let mut rows = Vec::new();
    let mut push_row = |family_name: &str, graph: &lcs_graph::Graph, partition: &Partition| {
        let tree = RootedTree::bfs(graph, NodeId::new(0));
        let constructed = doubling_search(graph, &tree, partition, DoublingConfig::new())
            .expect("families in E8 admit shortcuts");
        let shortcut = constructed.shortcut;
        let check = CrossCheck::new(graph, &tree, partition, &shortcut)
            .expect("the measured schedule respects Lemma 2");
        let b = check.family().block_parameter();
        let c = check.family().schedule().max_edge_load;

        let ones: Vec<Option<u64>> = graph
            .nodes()
            .map(|v| partition.part_of(v).map(|_| 1))
            .collect();
        let conv = check
            .convergecast(&ones, AggregateOp::Sum)
            .expect("convergecast results match");
        let leaders = check.leader_election().expect("leaders match");
        let weights = EdgeWeights::random_permutation(graph, 17);
        let candidates = check.boruvka_candidates(&weights);
        let min_edge = check.min_edge(&candidates).expect("min edges match");
        let threshold = 3 * b.max(1);
        let counts = check.block_counts(threshold).expect("block counts match");

        rows.push(vec![
            family_name.to_string(),
            graph.node_count().to_string(),
            u64::from(tree.depth_of_tree()).to_string(),
            partition.part_count().to_string(),
            format!("({c}, {b})"),
            format!("{}/{}", conv.charged, conv.executed),
            format!("{}/{}", leaders.charged, leaders.executed),
            format!("{}/{}", min_edge.charged, min_edge.executed),
            format!("{}/{}", counts.charged, counts.executed),
            "true".to_string(),
        ]);
    };

    {
        let graph = generators::grid(12, 12);
        let partition = generators::partitions::grid_columns(12, 12);
        push_row("grid 12x12, columns", &graph, &partition);
    }
    {
        let graph = generators::grid(16, 16);
        let partition = generators::partitions::random_bfs_balls(&graph, 16, 5);
        push_row("grid 16x16, 16 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::torus(10, 10);
        let partition = generators::partitions::random_bfs_balls(&graph, 10, 2);
        push_row("torus 10x10, 10 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::caterpillar(30, 3);
        let partition = generators::partitions::random_bfs_balls(&graph, 8, 4);
        push_row("caterpillar 30x3, 8 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::random_connected(120, 120, 9);
        let partition = generators::partitions::random_bfs_balls(&graph, 12, 6);
        push_row("random n=120 m=+120, 12 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::wheel(129);
        let partition = generators::partitions::wheel_arcs(129, 8);
        push_row("wheel W_129, 8 arcs", &graph, &partition);
    }

    Table {
        title: "E8: charged vs executed rounds — scheduled accounting vs real message passing (cells are charged/executed; results asserted equal)"
            .to_string(),
        headers: [
            "family",
            "n",
            "D",
            "N",
            "(c, b)",
            "convergecast",
            "leaders",
            "min edge",
            "verification",
            "results equal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E9 — the scale tier: FindShortcut plus the Lemma 3 distributed
/// verification protocol (real message passing) on instances two orders of
/// magnitude beyond E1–E8, with wall-clock columns. These are the rows the
/// flat-memory hot paths (CSR graph, edge-slot simulator, quality
/// workspace) exist for; `BENCH_SCALE.json` tracks their timings across
/// PRs.
///
/// The random row uses the known-feasible parameters `(c, b) = (N, 1)`
/// instead of `reference_parameters`: measuring the existential ancestor
/// shortcut's quality costs far more than the protocols themselves at
/// `n = 10⁵` and is not what this table times.
pub fn e9_scale_table() -> Table {
    use lcs_dist::verification_simulated;

    let mut rows = Vec::new();
    let mut push_row = |family: &str,
                        graph: &lcs_graph::Graph,
                        partition: &Partition,
                        cb: Option<(usize, usize)>| {
        let tree = RootedTree::bfs(graph, NodeId::new(0));
        let (c, b) = cb.unwrap_or_else(|| {
            let (_, reference) = reference_parameters(graph, &tree, partition);
            (
                reference.congestion.max(1),
                reference.block_parameter.max(1),
            )
        });
        let fs_start = std::time::Instant::now();
        let result = FindShortcut::new(FindShortcutConfig::new(c, b).with_seed(42))
            .run(graph, &tree, partition)
            .expect("scale families admit shortcuts");
        let fs_ms = fs_start.elapsed().as_secs_f64() * 1e3;

        let active = vec![true; partition.part_count()];
        let ver_start = std::time::Instant::now();
        let ver = verification_simulated(
            graph,
            &tree,
            partition,
            &result.shortcut,
            3 * b,
            &active,
            None,
        )
        .expect("verification protocol respects the CONGEST constraints");
        let ver_ms = ver_start.elapsed().as_secs_f64() * 1e3;
        let good = ver.outcome.good.iter().filter(|&&g| g).count();

        rows.push(vec![
            family.to_string(),
            graph.node_count().to_string(),
            graph.edge_count().to_string(),
            partition.part_count().to_string(),
            format!("({c}, {b})"),
            result.total_rounds().to_string(),
            format!("{fs_ms:.0}"),
            ver.stats.rounds.to_string(),
            ver.stats.messages.to_string(),
            format!("{ver_ms:.0}"),
            format!("{}/{}", good, partition.part_count()),
        ]);
    };

    {
        let graph = generators::grid(100, 100);
        let partition = generators::partitions::grid_columns(100, 100);
        push_row("grid 100x100, columns", &graph, &partition, None);
    }
    {
        let graph = generators::torus(64, 64);
        let partition = generators::partitions::random_bfs_balls(&graph, 64, 11);
        push_row("torus 64x64, 64 BFS balls", &graph, &partition, None);
    }
    {
        let graph = generators::random_connected(100_000, 100_000, 13);
        let partition = generators::partitions::random_bfs_balls(&graph, 100, 7);
        let parts = partition.part_count();
        push_row(
            "random n=1e5 m=+1e5, 100 BFS balls",
            &graph,
            &partition,
            Some((parts, 1)),
        );
    }

    Table {
        title: "E9: scale tier — FindShortcut + distributed verification at n = 10^4..10^5 (wall-clock ms per step)"
            .to_string(),
        headers: [
            "family",
            "n",
            "m",
            "N",
            "(c, b)",
            "fs rounds",
            "fs ms",
            "ver rounds",
            "ver messages",
            "ver ms",
            "good",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E10 — the 10⁶-node tier: the E9 pipeline (FindShortcut + Lemma 3
/// distributed verification as real message passing) one order of magnitude
/// up, run on the engine selected by `LCS_THREADS` / `--threads` (recorded
/// in the `threads` column). The values of every row are byte-identical
/// for every thread count — the sharded engine's determinism invariant —
/// so this table doubles as the speedup-vs-threads measurement for
/// `BENCH_SCALE.json`.
///
/// All rows use known-feasible parameters instead of
/// `reference_parameters`: measuring an existential shortcut's quality at
/// these sizes costs far more than the protocols being timed. Grid columns
/// admit `(side - 1, 1)` (the measured E9 pattern); the ball partitions
/// use the trivially feasible `(N, 1)`.
pub fn e10_scale_table() -> Table {
    use lcs_dist::verification_simulated;

    let threads = lcs_graph::configured_threads();
    let mut rows = Vec::new();
    let mut push_row =
        |family: &str, graph: &lcs_graph::Graph, partition: &Partition, (c, b): (usize, usize)| {
            let tree = RootedTree::bfs(graph, NodeId::new(0));
            let fs_start = std::time::Instant::now();
            let result = FindShortcut::new(FindShortcutConfig::new(c, b).with_seed(42))
                .run(graph, &tree, partition)
                .expect("scale families admit shortcuts");
            let fs_ms = fs_start.elapsed().as_secs_f64() * 1e3;

            let active = vec![true; partition.part_count()];
            let ver_start = std::time::Instant::now();
            let ver = verification_simulated(
                graph,
                &tree,
                partition,
                &result.shortcut,
                3 * b,
                &active,
                None,
            )
            .expect("verification protocol respects the CONGEST constraints");
            let ver_ms = ver_start.elapsed().as_secs_f64() * 1e3;
            let good = ver.outcome.good.iter().filter(|&&g| g).count();

            rows.push(vec![
                family.to_string(),
                graph.node_count().to_string(),
                graph.edge_count().to_string(),
                partition.part_count().to_string(),
                threads.to_string(),
                format!("({c}, {b})"),
                result.total_rounds().to_string(),
                format!("{fs_ms:.0}"),
                ver.stats.rounds.to_string(),
                ver.stats.messages.to_string(),
                format!("{ver_ms:.0}"),
                format!("{}/{}", good, partition.part_count()),
            ]);
        };

    {
        let graph = generators::grid(320, 320);
        let partition = generators::partitions::grid_columns(320, 320);
        push_row("grid 320x320, columns", &graph, &partition, (319, 1));
    }
    {
        let graph = generators::torus(256, 256);
        let partition = generators::partitions::random_bfs_balls(&graph, 256, 11);
        let parts = partition.part_count();
        push_row(
            "torus 256x256, 256 BFS balls",
            &graph,
            &partition,
            (parts, 1),
        );
    }
    {
        let graph = generators::random_connected(1_000_000, 1_000_000, 13);
        let partition = generators::partitions::random_bfs_balls(&graph, 128, 7);
        let parts = partition.part_count();
        push_row(
            "random n=1e6 m=+1e6, 128 BFS balls",
            &graph,
            &partition,
            (parts, 1),
        );
    }

    Table {
        title: format!(
            "E10: 10^6-node tier — FindShortcut + distributed verification on the sharded engine ({threads} thread(s); values identical for every thread count)"
        ),
        headers: [
            "family",
            "n",
            "m",
            "N",
            "threads",
            "(c, b)",
            "fs rounds",
            "fs ms",
            "ver rounds",
            "ver messages",
            "ver ms",
            "good",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// A built table together with the wall-clock time it took to build — the
/// quantity the bench trajectory (`BENCH_SCALE.json`) tracks across PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTable {
    /// Experiment id (`"e1"` … `"e9"`).
    pub id: String,
    /// The rendered table.
    pub table: Table,
    /// Wall-clock build time in milliseconds.
    pub millis: f64,
}

/// Builds a table through `build`, measuring the wall-clock time.
pub fn timed_table(id: &str, build: impl FnOnce() -> Table) -> TimedTable {
    let start = std::time::Instant::now();
    let table = build();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    TimedTable {
        id: id.to_string(),
        table,
        millis,
    }
}

/// Renders a list of tables as a single machine-readable JSON document
/// (hand-rolled writer: the build environment has no serde). Each table
/// entry carries its wall-clock build time in milliseconds; the document
/// records the engine thread count the run used (`--threads` /
/// `LCS_THREADS`), so downstream consumers (the `BENCH_SCALE.json`
/// trajectory, CI artifacts) can attribute timings to an engine.
pub fn tables_to_json(tables: &[TimedTable], threads: usize) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn string_array(items: &[String]) -> String {
        let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", esc(c))).collect();
        format!("[{}]", cells.join(","))
    }

    let mut entries = Vec::new();
    for timed in tables {
        let table = &timed.table;
        let rows: Vec<String> = table.rows.iter().map(|r| string_array(r)).collect();
        entries.push(format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"millis\":{:.3},\"headers\":{},\"rows\":[{}]}}",
            esc(&timed.id),
            esc(&table.title),
            timed.millis,
            string_array(&table.headers),
            rows.join(",")
        ));
    }
    format!(
        "{{\"generator\":\"experiments\",\"threads\":{},\"tables\":[{}]}}\n",
        threads,
        entries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_mst::ExecutionMode;

    #[test]
    fn render_table_aligns_columns() {
        let table = Table {
            title: "demo".to_string(),
            headers: vec!["a".to_string(), "long-header".to_string()],
            rows: vec![vec!["1".to_string(), "2".to_string()]],
        };
        let text = render_table(&table);
        assert!(text.contains("## demo"));
        assert!(text.contains("long-header"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn e3_routing_table_respects_the_bound() {
        let table = e3_routing_table();
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            let rounds: u64 = row[3].parse().unwrap();
            let bound: u64 = row[4].parse().unwrap();
            assert!(rounds <= bound, "{row:?}");
        }
    }

    #[test]
    fn e7_guarantees_all_hold() {
        let table = e7_guarantees_table();
        for row in &table.rows {
            assert_eq!(row[4], "true", "{row:?}");
            assert_eq!(row[6], "true", "{row:?}");
            assert_eq!(row[7], "true", "{row:?}");
        }
    }

    #[test]
    fn json_writer_escapes_and_structures() {
        let table = Table {
            title: "with \"quotes\" and\nnewline".to_string(),
            headers: vec!["a".to_string()],
            rows: vec![vec!["x\\y".to_string()]],
        };
        let json = tables_to_json(
            &[TimedTable {
                id: "t1".to_string(),
                table,
                millis: 12.5,
            }],
            4,
        );
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("x\\\\y"));
        assert!(json.contains("\"millis\":12.500"));
        assert!(json.contains("\"threads\":4"));
        assert!(json.starts_with("{\"generator\":\"experiments\""));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn e8_simulated_boruvka_agrees_end_to_end() {
        // The acceptance check behind E8's contract: Boruvka with simulated
        // execution still verifies against Kruskal.
        let g = generators::grid(4, 4);
        let w = EdgeWeights::random_permutation(&g, 2);
        let outcome = boruvka_mst(
            &g,
            &w,
            &BoruvkaConfig::new(ShortcutStrategy::Doubling)
                .with_seed(1)
                .with_execution(ExecutionMode::Simulated),
        )
        .unwrap();
        assert_eq!(outcome.edges, lcs_graph::kruskal_mst(&g, &w));
    }
}
