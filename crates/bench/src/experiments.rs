//! The experiment tables E1–E11.
//!
//! Every table is produced through the `lcs_api` façade: one
//! [`Pipeline`]-built [`Session`] per instance graph, queried for
//! shortcuts, quality, verification and MST. The façade dispatches to the
//! same underlying algorithms as the legacy entry points (the
//! API-equivalence suite in `crates/api/tests` pins this), so the table
//! values are unchanged; what changed is that per-graph state (tree,
//! shard map, quality workspaces) is built once per session instead of
//! once per measurement.

use lcs_api::congest::primitives::AggregateOp;
use lcs_api::existential::reference_parameters;
use lcs_api::graph::{
    diameter_exact, generators, EdgeWeights, Graph, NodeId, Partition, RootedTree,
};
use lcs_api::routing::{convergecast_rounds, RoutingPriority, SubtreeSpec};
use lcs_api::{
    CoreKind, CoreOutcome, CrossCheck, ExecutionMode, MstRun, Pipeline, Session, ShortcutStrategy,
    Strategy,
};

/// A rendered experiment table: a title, column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier and short description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// One row per measurement.
    pub rows: Vec<Vec<String>>,
}

/// Renders a [`Table`] as aligned plain text.
pub fn render_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.headers.iter().map(String::len).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {}\n", table.title));
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&table.headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

fn grid_instance(side: usize) -> (Graph, Partition) {
    let graph = generators::grid(side, side);
    let partition = generators::partitions::grid_columns(side, side);
    (graph, partition)
}

/// A session with the experiments' standard shape: BFS tree rooted at node
/// 0, auto threads, scheduled execution, the given seed.
fn session_on(graph: &Graph, seed: u64) -> Session<'_> {
    Pipeline::on(graph)
        .seed(seed)
        .build()
        .expect("experiment instances are nonempty and connected")
}

/// E1 — Theorem 1 / Corollary 1 shape: quality of constructed shortcuts on
/// planar and genus-`g` families (grid-column partitions, doubling
/// construction).
pub fn e1_quality_table() -> Table {
    let mut rows = Vec::new();
    let mut push_row = |family: String, graph: &Graph, partition: &Partition| {
        let session = session_on(graph, 0);
        let run = session
            .shortcut(partition, Strategy::doubling())
            .expect("families in E1 admit shortcuts");
        let q = session
            .quality(&run.shortcut, partition)
            .expect("partition matches the session graph");
        rows.push(vec![
            family,
            graph.node_count().to_string(),
            diameter_exact(graph).to_string(),
            partition.part_count().to_string(),
            q.congestion.to_string(),
            q.block_parameter.to_string(),
            q.dilation.to_string(),
            run.total_rounds().to_string(),
        ]);
    };

    for side in [8usize, 12, 16, 24] {
        let (graph, partition) = grid_instance(side);
        push_row(format!("grid {side}x{side} (genus 0)"), &graph, &partition);
    }
    for genus in [1usize, 2, 4, 8] {
        let graph = generators::genus_handles(16, 16, genus);
        let partition = generators::partitions::grid_columns(16, 16);
        push_row(
            format!("16x16 + {genus} handles (genus <= {genus})"),
            &graph,
            &partition,
        );
    }
    {
        let graph = generators::torus(16, 16);
        let partition = generators::partitions::grid_columns(16, 16);
        push_row("torus 16x16 (genus 1)".to_string(), &graph, &partition);
    }
    {
        let graph = generators::wheel(257);
        let partition = generators::partitions::wheel_arcs(257, 16);
        push_row("wheel W_257 (planar, D=2)".to_string(), &graph, &partition);
    }

    Table {
        title: "E1: shortcut quality on planar / genus-g families (doubling construction)"
            .to_string(),
        headers: [
            "family",
            "n",
            "D",
            "N",
            "congestion",
            "block",
            "dilation",
            "rounds",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E2 — Theorem 3 shape: FindShortcut round count as the instance grows
/// (grid side sweep and part-count sweep).
pub fn e2_findshortcut_table() -> Table {
    let mut rows = Vec::new();
    for side in [8usize, 12, 16, 24, 32] {
        let (graph, partition) = grid_instance(side);
        let session = session_on(&graph, 1);
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let (c, b) = (
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        );
        let run = session
            .shortcut(
                &partition,
                Strategy::Fixed {
                    congestion: c,
                    block: b,
                },
            )
            .unwrap();
        let q = session.quality(&run.shortcut, &partition).unwrap();
        rows.push(vec![
            format!("grid {side}x{side}, columns"),
            graph.node_count().to_string(),
            session.tree().depth_of_tree().to_string(),
            partition.part_count().to_string(),
            format!("({}, {})", reference.congestion, reference.block_parameter),
            run.report.iterations.to_string(),
            run.total_rounds().to_string(),
            q.congestion.to_string(),
            q.block_parameter.to_string(),
            run.report.all_parts_good.to_string(),
        ]);
    }
    // Part-count sweep at fixed size: random BFS-ball partitions, all rows
    // served by one session (the multi-query shape the façade exists for).
    let side = 20usize;
    let graph = generators::grid(side, side);
    let session = session_on(&graph, 2);
    for parts in [5usize, 10, 20, 40, 80] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 7);
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let (c, b) = (
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        );
        let run = session
            .shortcut(
                &partition,
                Strategy::Fixed {
                    congestion: c,
                    block: b,
                },
            )
            .unwrap();
        let q = session.quality(&run.shortcut, &partition).unwrap();
        rows.push(vec![
            format!("grid {side}x{side}, {parts} BFS balls"),
            graph.node_count().to_string(),
            session.tree().depth_of_tree().to_string(),
            parts.to_string(),
            format!("({}, {})", reference.congestion, reference.block_parameter),
            run.report.iterations.to_string(),
            run.total_rounds().to_string(),
            q.congestion.to_string(),
            q.block_parameter.to_string(),
            run.report.all_parts_good.to_string(),
        ]);
    }
    Table {
        title: "E2: FindShortcut (Theorem 3) scaling — rounds vs n, D and N".to_string(),
        headers: [
            "instance",
            "n",
            "depth(T)",
            "N",
            "(c, b) ref",
            "iterations",
            "rounds",
            "out congestion",
            "out block",
            "all good",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E3 — Lemma 2 / Theorem 2 shape: routing rounds versus `D + c`.
pub fn e3_routing_table() -> Table {
    let mut rows = Vec::new();
    // Overlapping copies of a path subtree: congestion grows, depth fixed.
    let graph = generators::path(200);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let all: Vec<NodeId> = graph.nodes().collect();
    for c in [1usize, 2, 4, 8, 16, 32] {
        let family: Vec<SubtreeSpec> = (0..c)
            .map(|_| SubtreeSpec::new(&tree, all.clone()))
            .collect();
        let lemma2 = convergecast_rounds(&tree, &family, RoutingPriority::BlockRootDepth);
        let reverse = convergecast_rounds(&tree, &family, RoutingPriority::ReverseDepth);
        rows.push(vec![
            format!("path_200, {c} overlapping subtrees"),
            tree.depth_of_tree().to_string(),
            c.to_string(),
            lemma2.rounds.to_string(),
            (u64::from(tree.depth_of_tree()) + c as u64).to_string(),
            reverse.rounds.to_string(),
        ]);
    }
    // Nested suffixes on a deeper path: priority rule matters more.
    let graph = generators::path(240);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    for c in [8usize, 16, 32] {
        let family: Vec<SubtreeSpec> = (0..c)
            .map(|k| SubtreeSpec::new(&tree, (k * (240 / c)..240).map(NodeId::new).collect()))
            .collect();
        let lemma2 = convergecast_rounds(&tree, &family, RoutingPriority::BlockRootDepth);
        let reverse = convergecast_rounds(&tree, &family, RoutingPriority::ReverseDepth);
        rows.push(vec![
            format!("path_240, {c} nested suffixes"),
            tree.depth_of_tree().to_string(),
            lemma2.max_edge_load.to_string(),
            lemma2.rounds.to_string(),
            (u64::from(tree.depth_of_tree()) + lemma2.max_edge_load as u64).to_string(),
            reverse.rounds.to_string(),
        ]);
    }
    Table {
        title: "E3: Lemma 2 tree routing — measured rounds vs the D + c bound (and the reverse-priority ablation)".to_string(),
        headers: ["family", "D", "c", "rounds (Lemma 2 priority)", "D + c bound", "rounds (reverse priority)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E4 — Lemma 4 shape: distributed MST rounds, shortcuts vs baselines.
///
/// Reports both the total rounds (which include the per-phase shortcut
/// construction) and the routing-only rounds (the cost of the per-part
/// minimum-outgoing-edge exchanges, the quantity Lemma 4's comparison is
/// about: `O(D·polylog)` with shortcuts versus the part diameter without).
pub fn e4_mst_table() -> Table {
    /// Sum of the "min-outgoing-edge" entries of a run's cost breakdown.
    fn routing_rounds(outcome: &MstRun) -> u64 {
        outcome
            .cost
            .entries()
            .iter()
            .filter(|(label, _)| label.contains("min-outgoing-edge"))
            .map(|(_, rounds)| rounds)
            .sum()
    }

    let mut rows = Vec::new();
    let mut push_row = |family: &str, graph: &Graph, seed: u64| {
        let weights = EdgeWeights::random_permutation(graph, seed);
        let reference = lcs_api::graph::kruskal_mst(graph, &weights);
        let session = session_on(graph, seed);
        let mut cells = vec![
            family.to_string(),
            graph.node_count().to_string(),
            diameter_exact(graph).to_string(),
        ];
        let mut routing = Vec::new();
        for strategy in [
            ShortcutStrategy::Doubling,
            ShortcutStrategy::NoShortcut,
            ShortcutStrategy::WholeTree,
        ] {
            let outcome = session.mst(&weights, strategy).expect("MST succeeds");
            assert_eq!(
                outcome.edges, reference,
                "distributed MST must match Kruskal"
            );
            cells.push(outcome.report.rounds_charged.to_string());
            if matches!(strategy, ShortcutStrategy::Doubling) {
                cells.push(outcome.phases.to_string());
            }
            if !matches!(strategy, ShortcutStrategy::WholeTree) {
                routing.push(routing_rounds(&outcome).to_string());
            }
        }
        cells.extend(routing);
        rows.push(cells);
    };

    push_row("wheel W_129 (D=2)", &generators::wheel(129), 3);
    push_row("wheel W_257 (D=2)", &generators::wheel(257), 4);
    push_row("wheel W_513 (D=2)", &generators::wheel(513), 5);
    push_row("wheel W_1025 (D=2)", &generators::wheel(1025), 10);
    push_row("grid 12x12", &generators::grid(12, 12), 6);
    push_row("grid 16x16", &generators::grid(16, 16), 7);
    push_row("torus 12x12 (genus 1)", &generators::torus(12, 12), 8);
    let (lb, _) = generators::lower_bound_graph(8, 32);
    push_row("lower-bound graph 8x32 (hard)", &lb, 9);

    Table {
        title: "E4: distributed Boruvka MST (Lemma 4) — rounds by shortcut strategy (totals include per-phase construction; 'routing' columns isolate the per-part min-edge exchanges)"
            .to_string(),
        headers: [
            "family", "n", "D", "doubling total", "phases", "no-shortcut total",
            "whole-tree total", "shortcut routing", "baseline routing",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E5 — Lemmas 5 and 7: CoreSlow vs CoreFast rounds and output quality.
pub fn e5_core_table() -> Table {
    let mut rows = Vec::new();
    let side = 20usize;
    let graph = generators::grid(side, side);
    let session = session_on(&graph, 5);
    for parts in [10usize, 25, 50, 100, 200] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 3);
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        let slow = session.core(&partition, CoreKind::Slow, c).unwrap();
        let fast = session.core(&partition, CoreKind::Fast, c).unwrap();
        let good = |shortcut: &lcs_api::TreeShortcut| {
            shortcut
                .block_counts(&graph, &partition)
                .iter()
                .filter(|&&k| k <= 3 * b)
                .count()
        };
        let max_assign = |outcome: &CoreOutcome| {
            graph
                .edge_ids()
                .map(|e| outcome.shortcut.parts_on_edge(e).len())
                .max()
                .unwrap_or(0)
        };
        rows.push(vec![
            format!("grid {side}x{side}, {parts} BFS balls"),
            format!("({c}, {b})"),
            slow.rounds.to_string(),
            fast.rounds.to_string(),
            format!("{}/{}", good(&slow.shortcut), parts),
            format!("{}/{}", good(&fast.shortcut), parts),
            format!("{} (<= {})", max_assign(&slow), 2 * c),
            max_assign(&fast).to_string(),
        ]);
    }
    Table {
        title:
            "E5: CoreSlow (Lemma 7) vs CoreFast (Lemma 5) — rounds, good parts, max edge assignment"
                .to_string(),
        headers: [
            "instance",
            "(c, b) ref",
            "slow rounds",
            "fast rounds",
            "slow good",
            "fast good",
            "slow max/edge",
            "fast max/edge",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E6 — Appendix A: overhead of the doubling search versus known
/// parameters.
pub fn e6_doubling_table() -> Table {
    let mut rows = Vec::new();
    for side in [8usize, 16, 24] {
        let (graph, partition) = grid_instance(side);
        let session = session_on(&graph, 3);
        let (_, reference) = reference_parameters(&graph, session.tree(), &partition);
        let known = session
            .shortcut(
                &partition,
                Strategy::Fixed {
                    congestion: reference.congestion.max(1),
                    block: reference.block_parameter.max(1),
                },
            )
            .unwrap();
        let unknown = session.shortcut(&partition, Strategy::doubling()).unwrap();
        let (found_c, found_b) = unknown
            .winning_guess()
            .expect("the doubling search succeeded");
        rows.push(vec![
            format!("grid {side}x{side}, columns"),
            format!("({}, {})", reference.congestion, reference.block_parameter),
            known.total_rounds().to_string(),
            format!("({found_c}, {found_b})"),
            unknown.report.attempts.len().to_string(),
            unknown.total_rounds().to_string(),
            format!(
                "{:.2}",
                unknown.total_rounds() as f64 / known.total_rounds().max(1) as f64
            ),
        ]);
    }
    Table {
        title: "E6: Appendix A doubling search vs known parameters".to_string(),
        headers: [
            "instance",
            "(c, b) known",
            "rounds (known)",
            "(c, b) found",
            "attempts",
            "rounds (doubling)",
            "overhead",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E7 — guarantee validation across families: congestion ≤ 8c·iterations,
/// block ≤ 3b, dilation ≤ b(2D+1).
pub fn e7_guarantees_table() -> Table {
    let mut rows = Vec::new();
    let mut check = |family: &str, graph: &Graph, partition: &Partition| {
        let session = session_on(graph, 9);
        let (_, reference) = reference_parameters(graph, session.tree(), partition);
        let c = reference.congestion.max(1);
        let b = reference.block_parameter.max(1);
        let run = session
            .shortcut(
                partition,
                Strategy::Fixed {
                    congestion: c,
                    block: b,
                },
            )
            .unwrap();
        let q = session.quality(&run.shortcut, partition).unwrap();
        let congestion_bound = 8 * c * run.report.iterations.max(1) + 1;
        rows.push(vec![
            family.to_string(),
            format!("({c}, {b})"),
            run.report.all_parts_good.to_string(),
            format!("{} <= {}", q.block_parameter, 3 * b),
            (q.block_parameter <= 3 * b).to_string(),
            format!("{} <= {}", q.congestion, congestion_bound),
            (q.congestion <= congestion_bound).to_string(),
            q.satisfies_lemma1(session.tree().depth_of_tree())
                .to_string(),
        ]);
    };

    for side in [8usize, 16] {
        let (graph, partition) = grid_instance(side);
        check(&format!("grid {side}x{side}, columns"), &graph, &partition);
    }
    {
        let graph = generators::torus(12, 12);
        let partition = generators::partitions::random_bfs_balls(&graph, 12, 2);
        check("torus 12x12, 12 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::wheel(129);
        let partition = generators::partitions::wheel_arcs(129, 8);
        check("wheel W_129, 8 arcs", &graph, &partition);
    }
    {
        let graph = generators::genus_handles(16, 16, 4);
        let partition = generators::partitions::grid_columns(16, 16);
        check("16x16 + 4 handles, columns", &graph, &partition);
    }
    {
        let graph = generators::caterpillar(40, 3);
        let partition = generators::partitions::random_bfs_balls(&graph, 10, 4);
        check("caterpillar 40x3, 10 BFS balls", &graph, &partition);
    }

    Table {
        title: "E7: Theorem 3 / Lemma 1 guarantee validation across families".to_string(),
        headers: [
            "family",
            "(c, b) ref",
            "all good",
            "block <= 3b",
            "ok",
            "congestion <= 8c*iter",
            "ok",
            "Lemma 1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E8 — charged vs executed rounds: every distributed protocol of
/// `lcs_dist` cross-checked against its scheduled counterpart across the
/// generator families. Every row's results are asserted equal by the
/// [`CrossCheck`] harness (the builder panics otherwise) and the executed
/// round counts respect the Lemma 2 / Theorem 2 / Lemma 3 bounds; the
/// table shows how far the executed protocols sit from the charged
/// schedules.
pub fn e8_dist_table() -> Table {
    let mut rows = Vec::new();
    let mut push_row = |family_name: &str, graph: &Graph, partition: &Partition| {
        let session = session_on(graph, 0);
        let shortcut = session
            .shortcut(partition, Strategy::doubling())
            .expect("families in E8 admit shortcuts")
            .shortcut;
        let check = CrossCheck::new(graph, session.tree(), partition, &shortcut)
            .expect("the measured schedule respects Lemma 2");
        let b = check.family().block_parameter();
        let c = check.family().schedule().max_edge_load;

        let ones: Vec<Option<u64>> = graph
            .nodes()
            .map(|v| partition.part_of(v).map(|_| 1))
            .collect();
        let conv = check
            .convergecast(&ones, AggregateOp::Sum)
            .expect("convergecast results match");
        let leaders = check.leader_election().expect("leaders match");
        let weights = EdgeWeights::random_permutation(graph, 17);
        let candidates = check.boruvka_candidates(&weights);
        let min_edge = check.min_edge(&candidates).expect("min edges match");
        let threshold = 3 * b.max(1);
        let counts = check.block_counts(threshold).expect("block counts match");

        rows.push(vec![
            family_name.to_string(),
            graph.node_count().to_string(),
            u64::from(session.tree().depth_of_tree()).to_string(),
            partition.part_count().to_string(),
            format!("({c}, {b})"),
            format!("{}/{}", conv.charged, conv.executed),
            format!("{}/{}", leaders.charged, leaders.executed),
            format!("{}/{}", min_edge.charged, min_edge.executed),
            format!("{}/{}", counts.charged, counts.executed),
            "true".to_string(),
        ]);
    };

    {
        let graph = generators::grid(12, 12);
        let partition = generators::partitions::grid_columns(12, 12);
        push_row("grid 12x12, columns", &graph, &partition);
    }
    {
        let graph = generators::grid(16, 16);
        let partition = generators::partitions::random_bfs_balls(&graph, 16, 5);
        push_row("grid 16x16, 16 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::torus(10, 10);
        let partition = generators::partitions::random_bfs_balls(&graph, 10, 2);
        push_row("torus 10x10, 10 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::caterpillar(30, 3);
        let partition = generators::partitions::random_bfs_balls(&graph, 8, 4);
        push_row("caterpillar 30x3, 8 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::random_connected(120, 120, 9);
        let partition = generators::partitions::random_bfs_balls(&graph, 12, 6);
        push_row("random n=120 m=+120, 12 BFS balls", &graph, &partition);
    }
    {
        let graph = generators::wheel(129);
        let partition = generators::partitions::wheel_arcs(129, 8);
        push_row("wheel W_129, 8 arcs", &graph, &partition);
    }

    Table {
        title: "E8: charged vs executed rounds — scheduled accounting vs real message passing (cells are charged/executed; results asserted equal)"
            .to_string(),
        headers: [
            "family",
            "n",
            "D",
            "N",
            "(c, b)",
            "convergecast",
            "leaders",
            "min edge",
            "verification",
            "results equal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// Builds the shared E9/E10 row shape: FindShortcut (scheduled) timed,
/// then the Lemma 3 verification as real message passing timed, on one
/// session per instance.
fn scale_row(
    session: &mut Session<'_>,
    partition: &Partition,
    (c, b): (usize, usize),
) -> (Vec<String>, u64) {
    let graph = session.graph();
    let fs_start = std::time::Instant::now();
    let run = session
        .shortcut(
            partition,
            Strategy::Fixed {
                congestion: c,
                block: b,
            },
        )
        .expect("scale families admit shortcuts");
    let fs_ms = fs_start.elapsed().as_secs_f64() * 1e3;

    session.set_execution(ExecutionMode::Simulated);
    let ver_start = std::time::Instant::now();
    let ver = session
        .verify(&run.shortcut, partition, 3 * b)
        .expect("verification protocol respects the CONGEST constraints");
    let ver_ms = ver_start.elapsed().as_secs_f64() * 1e3;
    session.set_execution(ExecutionMode::Scheduled);
    let stats = ver
        .report
        .sim
        .expect("simulated verification records stats");
    let good = ver.good.iter().filter(|&&g| g).count();

    (
        vec![
            graph.node_count().to_string(),
            graph.edge_count().to_string(),
            partition.part_count().to_string(),
            format!("({c}, {b})"),
            run.total_rounds().to_string(),
            format!("{fs_ms:.0}"),
            stats.rounds.to_string(),
            stats.messages.to_string(),
            format!("{ver_ms:.0}"),
            format!("{}/{}", good, partition.part_count()),
        ],
        stats.rounds,
    )
}

/// E9 — the scale tier: FindShortcut plus the Lemma 3 distributed
/// verification protocol (real message passing) on instances two orders of
/// magnitude beyond E1–E8, with wall-clock columns. These are the rows the
/// flat-memory hot paths (CSR graph, edge-slot simulator, quality
/// workspace) exist for; `BENCH_SCALE.json` tracks their timings across
/// PRs.
///
/// The random row uses the known-feasible parameters `(c, b) = (N, 1)`
/// instead of `reference_parameters`: measuring the existential ancestor
/// shortcut's quality costs far more than the protocols themselves at
/// `n = 10⁵` and is not what this table times.
pub fn e9_scale_table() -> Table {
    let mut rows = Vec::new();
    let mut push_row =
        |family: &str, graph: &Graph, partition: &Partition, cb: Option<(usize, usize)>| {
            let mut session = session_on(graph, 42);
            let (c, b) = cb.unwrap_or_else(|| {
                let (_, reference) = reference_parameters(graph, session.tree(), partition);
                (
                    reference.congestion.max(1),
                    reference.block_parameter.max(1),
                )
            });
            let (cells, _) = scale_row(&mut session, partition, (c, b));
            let mut row = vec![family.to_string()];
            row.extend(cells);
            rows.push(row);
        };

    {
        let graph = generators::grid(100, 100);
        let partition = generators::partitions::grid_columns(100, 100);
        push_row("grid 100x100, columns", &graph, &partition, None);
    }
    {
        let graph = generators::torus(64, 64);
        let partition = generators::partitions::random_bfs_balls(&graph, 64, 11);
        push_row("torus 64x64, 64 BFS balls", &graph, &partition, None);
    }
    {
        let graph = generators::random_connected(100_000, 100_000, 13);
        let partition = generators::partitions::random_bfs_balls(&graph, 100, 7);
        let parts = partition.part_count();
        push_row(
            "random n=1e5 m=+1e5, 100 BFS balls",
            &graph,
            &partition,
            Some((parts, 1)),
        );
    }

    Table {
        title: "E9: scale tier — FindShortcut + distributed verification at n = 10^4..10^5 (wall-clock ms per step)"
            .to_string(),
        headers: [
            "family",
            "n",
            "m",
            "N",
            "(c, b)",
            "fs rounds",
            "fs ms",
            "ver rounds",
            "ver messages",
            "ver ms",
            "good",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E10 — the 10⁶-node tier: the E9 pipeline (FindShortcut + Lemma 3
/// distributed verification as real message passing) one order of magnitude
/// up, run on the engine selected by `LCS_THREADS` / `--threads` (recorded
/// in the `threads` column). The values of every row are byte-identical
/// for every thread count — the sharded engine's determinism invariant —
/// so this table doubles as the speedup-vs-threads measurement for
/// `BENCH_SCALE.json`.
///
/// All rows use known-feasible parameters instead of
/// `reference_parameters`: measuring an existential shortcut's quality at
/// these sizes costs far more than the protocols being timed. Grid columns
/// admit `(side - 1, 1)` (the measured E9 pattern); the ball partitions
/// use the trivially feasible `(N, 1)`.
pub fn e10_scale_table() -> Table {
    let mut threads = 0usize;
    let mut rows = Vec::new();
    let mut push_row =
        |family: &str, graph: &Graph, partition: &Partition, (c, b): (usize, usize)| {
            let mut session = session_on(graph, 42);
            threads = session.threads();
            let (cells, _) = scale_row(&mut session, partition, (c, b));
            let mut row = vec![family.to_string()];
            row.extend(cells[..3].iter().cloned());
            row.push(session.threads().to_string());
            row.extend(cells[3..].iter().cloned());
            rows.push(row);
        };

    {
        let graph = generators::grid(320, 320);
        let partition = generators::partitions::grid_columns(320, 320);
        push_row("grid 320x320, columns", &graph, &partition, (319, 1));
    }
    {
        let graph = generators::torus(256, 256);
        let partition = generators::partitions::random_bfs_balls(&graph, 256, 11);
        let parts = partition.part_count();
        push_row(
            "torus 256x256, 256 BFS balls",
            &graph,
            &partition,
            (parts, 1),
        );
    }
    {
        let graph = generators::random_connected(1_000_000, 1_000_000, 13);
        let partition = generators::partitions::random_bfs_balls(&graph, 128, 7);
        let parts = partition.part_count();
        push_row(
            "random n=1e6 m=+1e6, 128 BFS balls",
            &graph,
            &partition,
            (parts, 1),
        );
    }

    Table {
        title: format!(
            "E10: 10^6-node tier — FindShortcut + distributed verification on the sharded engine ({threads} thread(s); values identical for every thread count)"
        ),
        headers: [
            "family",
            "n",
            "m",
            "N",
            "threads",
            "(c, b)",
            "fs rounds",
            "fs ms",
            "ver rounds",
            "ver messages",
            "ver ms",
            "good",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E11 — the serving tier: many queries over partitions of one graph,
/// answered *warm* (one [`Session`] serving the whole slice — tree, shard
/// map and quality workspaces built once and reused) versus *cold* (a
/// fresh pipeline per query, the shape E1–E10 rows used to emulate). Two
/// query shapes per family:
///
/// * **construct** — [`Session::batch`]: doubling construction plus
///   quality per partition. Construction dominates each query, so session
///   reuse only amortizes the per-graph setup — warm and cold should be
///   close, with warm never meaningfully behind.
/// * **consume** — the "one decomposition, many consumers" posture the
///   redesign exists for: verification queries answered from the
///   session's already-built decomposition corpus, versus a cold consumer
///   that must re-run the whole pipeline (setup + construction) before it
///   can answer. Reusing the decomposition is where serving wins big.
///
/// Every row warms up untimed first (both paths run identical code; the
/// warmup removes first-touch bias), and the warm/cold results are
/// asserted byte-identical — only the wall-clock may move.
pub fn e11_serving_table() -> Table {
    use std::time::Instant;

    let mut rows = Vec::new();
    let mut push_family = |family: &str, graph: &Graph, partitions: &[Partition]| {
        let refs: Vec<&Partition> = partitions.iter().collect();
        let queries = partitions.len();

        // -------- construct shape: Session::batch vs per-query sessions.
        let warmup = session_on(graph, 0)
            .batch(&refs, Strategy::doubling())
            .expect("serving families admit shortcuts");

        let warm_start = Instant::now();
        let session = session_on(graph, 0);
        let warm = session.batch(&refs, Strategy::doubling()).unwrap();
        let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;

        let cold_start = Instant::now();
        let mut cold = Vec::with_capacity(queries);
        for partition in partitions {
            let one_shot = session_on(graph, 0);
            let mut run = one_shot.shortcut(partition, Strategy::doubling()).unwrap();
            run.report.quality = Some(one_shot.quality(&run.shortcut, partition).unwrap());
            cold.push(run);
        }
        let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;

        let construct_equal = warm.iter().zip(&cold).zip(&warmup).all(|((w, c), u)| {
            w.shortcut == c.shortcut
                && w.shortcut == u.shortcut
                && w.report.quality == c.report.quality
                && w.report.attempts == c.report.attempts
                && w.report.rounds_charged == c.report.rounds_charged
        });
        rows.push(vec![
            family.to_string(),
            "construct".to_string(),
            graph.node_count().to_string(),
            queries.to_string(),
            format!("{:.2}", warm_ms / queries as f64),
            format!("{:.2}", cold_ms / queries as f64),
            format!("{:.2}", cold_ms / warm_ms.max(f64::MIN_POSITIVE)),
            construct_equal.to_string(),
        ]);

        // -------- consume shape: "one decomposition, many consumers".
        // The warm session answers verification queries against the
        // decomposition corpus it already built (the shortcuts from the
        // batch above); the cold consumer re-runs the whole pipeline —
        // session setup plus shortcut construction — before it can verify.
        let corpus: Vec<_> = warmup.iter().map(|run| &run.shortcut).collect();
        let threshold = 3;

        // Warmup pass (untimed) doubles as the reference results.
        let reference_session = session_on(graph, 0);
        let reference: Vec<_> = partitions
            .iter()
            .zip(&corpus)
            .map(|(p, sc)| {
                let v = reference_session.verify(sc, p, threshold).unwrap();
                (v.good, v.block_counts)
            })
            .collect();

        let warm_start = Instant::now();
        let session = session_on(graph, 0);
        let warm: Vec<_> = partitions
            .iter()
            .zip(&corpus)
            .map(|(p, sc)| {
                let v = session.verify(sc, p, threshold).unwrap();
                (v.good, v.block_counts)
            })
            .collect();
        let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;

        let cold_start = Instant::now();
        let cold: Vec<_> = partitions
            .iter()
            .map(|p| {
                let one_shot = session_on(graph, 0);
                let run = one_shot.shortcut(p, Strategy::doubling()).unwrap();
                let v = one_shot.verify(&run.shortcut, p, threshold).unwrap();
                (v.good, v.block_counts)
            })
            .collect();
        let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;

        let consume_equal = warm == cold && warm == reference;
        rows.push(vec![
            family.to_string(),
            "consume".to_string(),
            graph.node_count().to_string(),
            queries.to_string(),
            format!("{:.2}", warm_ms / queries as f64),
            format!("{:.2}", cold_ms / queries as f64),
            format!("{:.2}", cold_ms / warm_ms.max(f64::MIN_POSITIVE)),
            consume_equal.to_string(),
        ]);
    };

    {
        let graph = generators::grid(32, 32);
        let mut partitions = vec![generators::partitions::grid_columns(32, 32)];
        for seed in 0..7u64 {
            partitions.push(generators::partitions::random_bfs_balls(&graph, 32, seed));
        }
        push_family("grid 32x32, 8 partitions", &graph, &partitions);
    }
    {
        let graph = generators::torus(24, 24);
        let partitions: Vec<Partition> = (0..8u64)
            .map(|seed| generators::partitions::random_bfs_balls(&graph, 24, seed))
            .collect();
        push_family("torus 24x24, 8 ball partitions", &graph, &partitions);
    }
    {
        let graph = generators::wheel(257);
        let partitions: Vec<Partition> = [4usize, 8, 12, 16, 20, 24, 28, 32]
            .iter()
            .map(|&arcs| generators::partitions::wheel_arcs(257, arcs))
            .collect();
        push_family("wheel W_257, 8 arc partitions", &graph, &partitions);
    }

    Table {
        title: "E11: serving — warm Session reuse vs cold per-query pipeline setup (results asserted byte-identical; wall-clock ms per query)"
            .to_string(),
        headers: [
            "family",
            "shape",
            "n",
            "queries",
            "warm ms/q",
            "cold ms/q",
            "cold/warm",
            "equal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E13 — workload-driven serving: open- and closed-loop clients replaying
/// deterministic Zipf(θ) traffic over pre-built partition corpora, with
/// tail-latency (p50/p95/p99/max) and throughput columns.
///
/// Two corpora (grid 16×16, torus 12×12 — a planar family and a
/// higher-genus one, six partitions each) × two pacing modes × θ ∈ {0, 1}
/// × two query mixes ("consume" = verify/quality only; "mixed" adds a
/// construct/MST minority). Open loop paces Poisson arrivals at a fixed
/// mean and charges queueing delay to latency, so the expensive minority
/// of a mixed trace pushes p99 far past p50; the closed loop reports pure
/// service time for contrast. Every configuration is run twice and the
/// `det` column asserts the two result-value digests are identical — the
/// determinism contract the workload layer guarantees at any thread count.
///
/// Returns the table plus a JSON document with each row's *full* latency
/// histogram (the `--json` output embeds it under `"extra"`), because
/// p50/p95/p99 alone cannot show a bimodal service-time split.
pub fn e13_workload_table() -> (Table, String) {
    use lcs_workload::{run_workload, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec};

    const QUERIES: usize = 160;
    const CLIENTS: usize = 4;
    const MEAN_INTERARRIVAL_NANOS: u64 = 500_000; // 0.5 ms — near saturation

    let corpora = [
        Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 16,
            entries: 6,
            seed: 42,
        })
        .expect("grid corpus builds"),
        Corpus::build(&CorpusSpec {
            family: Family::Torus,
            size: 12,
            entries: 6,
            seed: 42,
        })
        .expect("torus corpus builds"),
    ];
    let modes = [
        Mode::Open {
            mean_interarrival_nanos: MEAN_INTERARRIVAL_NANOS,
        },
        Mode::Closed {
            clients: CLIENTS,
            think_nanos: 0,
        },
    ];

    let micros = |nanos: u64| format!("{:.1}", nanos as f64 / 1e3);
    let mut rows = Vec::new();
    let mut extras = Vec::new();
    for corpus in &corpora {
        for &theta in &[0.0f64, 1.0] {
            for &mix in &[QueryMix::consume(), QueryMix::mixed()] {
                for &mode in &modes {
                    let spec = WorkloadSpec::new(mode, QUERIES, theta, mix, 17);
                    let outcome = run_workload(corpus, &spec).expect("workload runs");
                    let rerun = run_workload(corpus, &spec).expect("workload reruns");
                    let deterministic = outcome.digest == rerun.digest;
                    let h = &outcome.histogram;
                    rows.push(vec![
                        corpus.label().to_string(),
                        mode.label().to_string(),
                        format!("{theta:.0}"),
                        mix.label(),
                        outcome.queries.to_string(),
                        mode.clients().to_string(),
                        micros(h.quantile(0.50)),
                        micros(h.quantile(0.95)),
                        micros(h.quantile(0.99)),
                        micros(h.max()),
                        format!("{:.0}", outcome.throughput_qps()),
                        deterministic.to_string(),
                    ]);
                    extras.push(format!(
                        "{{\"family\":\"{}\",\"mode\":\"{}\",\"theta\":{theta:.1},\"mix\":\"{}\",\"clients\":{},\"queries\":{},\"qps\":{:.1},\"deterministic\":{},\"digest\":{},\"histogram\":{}}}",
                        corpus.label(),
                        mode.label(),
                        mix.label(),
                        mode.clients(),
                        outcome.queries,
                        outcome.throughput_qps(),
                        deterministic,
                        outcome.digest,
                        h.to_json(),
                    ));
                }
            }
        }
    }

    let table = Table {
        title: "E13: workload serving — open/closed-loop clients, Zipf(theta) traffic over pre-built corpora (latency in microseconds; det = rerun digests identical)"
            .to_string(),
        headers: [
            "family", "mode", "theta", "mix", "queries", "clients", "p50 us", "p95 us", "p99 us",
            "max us", "qps", "det",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, format!("{{\"rows\":[{}]}}", extras.join(",")))
}

/// One E14 measurement: the operation timed with instrumentation off and
/// on, plus the determinism evidence of the recording runs.
struct ObsRow {
    label: String,
    n: usize,
    off_ms: f64,
    on_ms: f64,
    snapshot: lcs_obs::MetricsSnapshot,
    /// Counter halves of two independent recording runs byte-identical.
    deterministic: bool,
}

impl ObsRow {
    fn overhead_pct(&self) -> f64 {
        if self.off_ms <= 0.0 {
            0.0
        } else {
            (self.on_ms - self.off_ms) / self.off_ms * 100.0
        }
    }
}

/// Times `run` twice with an off handle (min), then twice with fresh
/// recording registries (min), and checks the two recording snapshots'
/// counter halves are byte-identical — "timings are measurements; counts
/// are facts" as a measured table cell rather than a doc claim.
fn obs_row(label: &str, n: usize, mut run: impl FnMut(&lcs_obs::Obs)) -> ObsRow {
    let mut time_with = |obs: &lcs_obs::Obs| {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = std::time::Instant::now();
            run(obs);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let off_ms = time_with(&lcs_obs::Obs::off());
    let first = lcs_obs::Obs::recording();
    let second = lcs_obs::Obs::recording();
    let on_ms = time_with(&first).min(time_with(&second));
    let a = first.snapshot();
    let b = second.snapshot();
    ObsRow {
        label: label.to_string(),
        n,
        off_ms,
        on_ms,
        deterministic: a.counters_text() == b.counters_text(),
        snapshot: a,
    }
}

/// E14 — instrumentation overhead: representative E9/E13 operations timed
/// with the recorder off and on. The off column is the shipping
/// configuration (an [`lcs_obs::Obs::off`] handle: one branch per probe);
/// the on column attaches a fresh registry and pays for real counters,
/// gauges, timers, and spans. `det` asserts the counter half of the
/// snapshot is byte-identical across two independent recording runs —
/// counters are thread- and rerun-invariant facts, timers are
/// measurements. The extra JSON payload carries each row's full
/// [`lcs_obs::MetricsSnapshot`].
pub fn e14_obs_table() -> (Table, String) {
    use lcs_workload::{
        run_workload_obs, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec,
    };

    let mut rows = Vec::new();
    let mut extras = Vec::new();
    let mut push = |row: ObsRow| {
        rows.push(vec![
            row.label.clone(),
            row.n.to_string(),
            format!("{:.1}", row.off_ms),
            format!("{:.1}", row.on_ms),
            format!("{:+.1}", row.overhead_pct()),
            row.snapshot.counters.len().to_string(),
            format!("{:016x}", row.snapshot.counters_digest()),
            row.deterministic.to_string(),
        ]);
        extras.push(format!(
            "{{\"label\":\"{}\",\"n\":{},\"off_ms\":{:.3},\"on_ms\":{:.3},\"overhead_pct\":{:.2},\"counters_digest\":\"{:016x}\",\"deterministic\":{},\"snapshot\":{}}}",
            lcs_obs::json::escape(&row.label),
            row.n,
            row.off_ms,
            row.on_ms,
            row.overhead_pct(),
            row.snapshot.counters_digest(),
            row.deterministic,
            row.snapshot.to_json(),
        ));
    };

    // Simulated verification rows: the operation E9 times. The shortcut is
    // built once per instance, outside the measured region; each timed run
    // constructs a recorder-carrying session and serves one verify query.
    let mut verify_row = |label: &str, graph: &Graph, partition: &Partition, b: usize| {
        let setup = session_on(graph, 42);
        let run = setup
            .shortcut(
                partition,
                Strategy::Fixed {
                    congestion: partition.part_count(),
                    block: b,
                },
            )
            .expect("E14 instances admit shortcuts");
        push(obs_row(label, graph.node_count(), |obs| {
            let session = Pipeline::on(graph)
                .seed(42)
                .execution(ExecutionMode::Simulated)
                .recorder(obs.clone())
                .build()
                .expect("E14 instances are nonempty and connected");
            session
                .verify(&run.shortcut, partition, 3 * b)
                .expect("verification protocol respects the CONGEST constraints");
        }));
    };
    {
        let graph = generators::grid(64, 64);
        let partition = generators::partitions::grid_columns(64, 64);
        verify_row("grid 64x64 columns, sim verify", &graph, &partition, 1);
    }
    {
        let graph = generators::grid(100, 100);
        let partition = generators::partitions::grid_columns(100, 100);
        verify_row("grid 100x100 columns, sim verify", &graph, &partition, 1);
    }

    // Workload row: the E13 open-loop consume configuration on the grid
    // corpus — the driver adds its own probes (lag, queue depth) on top of
    // the per-query serve probes.
    {
        let corpus = Corpus::build(&CorpusSpec {
            family: Family::Grid,
            size: 16,
            entries: 6,
            seed: 42,
        })
        .expect("grid corpus builds");
        let spec = WorkloadSpec::new(
            Mode::Open {
                mean_interarrival_nanos: 500_000,
            },
            160,
            1.0,
            QueryMix::consume(),
            17,
        );
        push(obs_row(
            "grid16 corpus, open consume x160",
            corpus.graph().node_count(),
            |obs| {
                run_workload_obs(&corpus, &spec, obs).expect("workload runs");
            },
        ));
    }

    let table = Table {
        title: "E14: instrumentation overhead — recorder off vs on (det = counter snapshots of two recording runs byte-identical)"
            .to_string(),
        headers: [
            "operation",
            "n",
            "off ms",
            "on ms",
            "overhead %",
            "counters",
            "ctr digest",
            "det",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, format!("{{\"rows\":[{}]}}", extras.join(",")))
}

/// E15 — robustness tier: fault-injected simulated verification across
/// loss × latency × crash plans on the generator families. Every row runs
/// the self-healing verify query ([`lcs_api::Session::verify`] with a
/// [`lcs_api::FaultPlan`]) twice with the same seeded plan; `det` asserts
/// the two runs' digests (goods, counts, retry epochs/stalls, executed
/// rounds) are byte-identical — fault draws are a pure function of the
/// plan, never of thread count or rerun. `inflate` is the executed-round
/// inflation over the fault-free simulated baseline; the verdict is
/// asserted correct (all parts good, as fault-free) on every row. The
/// extra JSON payload carries each row's digest for the cross-thread
/// assertion CI performs on `BENCH_FAULTS_T{1,4}.json`.
pub fn e15_faults_table() -> (Table, String) {
    use lcs_api::existential::ancestor_shortcut;
    use lcs_api::{FaultPlan, VerifyRun};

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(mut h: u64, v: u64) -> u64 {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
    fn metric(run: &VerifyRun, key: &str) -> Option<u64> {
        run.report
            .metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }
    // The digest covers the outcome (goods, counts, retry shape, executed
    // rounds) and the recorded counter half of the metrics snapshot, which
    // includes the `fault/*` event counters — drops, duplicates, delays,
    // crash drops, restarts are thread-invariant facts of the plan.
    fn digest_of(run: &VerifyRun, counters_digest: u64) -> u64 {
        let mut h = FNV_OFFSET;
        for &g in &run.good {
            h = mix(h, u64::from(g));
        }
        for &c in &run.block_counts {
            h = mix(h, c as u64);
        }
        h = mix(h, metric(run, "retry_epochs").unwrap_or(1));
        h = mix(h, metric(run, "retry_stalls").unwrap_or(0));
        h = mix(h, run.report.rounds_executed.unwrap_or(0));
        mix(h, counters_digest)
    }

    let mut rows = Vec::new();
    let mut extras = Vec::new();
    let mut instance = |label: &str,
                        graph: &Graph,
                        partition: &Partition,
                        plans: &[(&str, FaultPlan)]| {
        let setup = session_on(graph, 42);
        let shortcut = ancestor_shortcut(graph, setup.tree(), partition);
        // Two supersteps of flood slack above the exact block parameter,
        // so the fault-free verdict is all-good with margin to spare.
        let threshold = setup
            .quality(&shortcut, partition)
            .expect("partition matches the instance graph")
            .block_parameter
            + 2;
        let plain_session = Pipeline::on(graph)
            .seed(42)
            .execution(ExecutionMode::Simulated)
            .build()
            .expect("E15 instances are nonempty and connected");
        let plain = plain_session
            .verify(&shortcut, partition, threshold)
            .expect("fault-free verification runs");
        assert!(
            plain.good.iter().all(|&g| g),
            "E15 baseline must verify all-good on {label}"
        );
        let plain_rounds = plain.report.rounds_executed.unwrap_or(0).max(1);
        for (fault_label, plan) in plans {
            let run_once = || {
                let obs = lcs_obs::Obs::recording();
                let session = Pipeline::on(graph)
                    .seed(42)
                    .execution(ExecutionMode::Simulated)
                    .fault(*plan)
                    .recorder(obs.clone())
                    .build()
                    .expect("E15 instances are nonempty and connected");
                let run = session
                    .verify(&shortcut, partition, threshold)
                    .expect("E15 fault plans must heal to a decisive verdict");
                (run, obs.snapshot().counters_digest())
            };
            let (run, counters) = run_once();
            let (rerun, recounters) = run_once();
            assert!(
                run.good.iter().all(|&g| g),
                "E15 fault plan {fault_label} on {label} must heal to the all-good verdict"
            );
            let digest = digest_of(&run, counters);
            let deterministic = digest == digest_of(&rerun, recounters);
            let rounds = run.report.rounds_executed.unwrap_or(0);
            let epochs = metric(&run, "retry_epochs").unwrap_or(1);
            let stalls = metric(&run, "retry_stalls").unwrap_or(0);
            rows.push(vec![
                label.to_string(),
                graph.node_count().to_string(),
                fault_label.to_string(),
                plain_rounds.to_string(),
                rounds.to_string(),
                format!("{:.2}x", rounds as f64 / plain_rounds as f64),
                epochs.to_string(),
                stalls.to_string(),
                run.good.iter().all(|&g| g).to_string(),
                format!("{digest:016x}"),
                deterministic.to_string(),
            ]);
            extras.push(format!(
                    "{{\"instance\":\"{}\",\"fault\":\"{}\",\"plain_rounds\":{},\"rounds\":{},\"epochs\":{},\"stalls\":{},\"digest\":\"{:016x}\",\"deterministic\":{}}}",
                    lcs_obs::json::escape(label),
                    lcs_obs::json::escape(fault_label),
                    plain_rounds,
                    rounds,
                    epochs,
                    stalls,
                    digest,
                    deterministic,
                ));
        }
    };

    // The full fault matrix on the grid family; crash schedules always
    // restart (a permanent crash is the degraded-error path, exercised by
    // the test suites, not a healable table row).
    {
        let (graph, partition) = grid_instance(12);
        let plans = [
            ("none", FaultPlan::new(21)),
            ("lat 2", FaultPlan::new(21).with_latency(2)),
            ("loss 1%", FaultPlan::new(21).with_loss_ppm(10_000)),
            (
                "loss 5% dup 1%",
                FaultPlan::new(21)
                    .with_loss_ppm(50_000)
                    .with_dup_ppm(10_000),
            ),
            ("crash 1@10 +40", FaultPlan::new(21).with_crashes(1, 10, 40)),
            (
                "lat1 loss1% strag crash",
                FaultPlan::new(21)
                    .with_latency(1)
                    .with_loss_ppm(10_000)
                    .with_stragglers(250_000, 2)
                    .with_crashes(1, 10, 40),
            ),
        ];
        instance("grid 12x12 columns", &graph, &partition, &plans);
    }
    // One combined plan per remaining family.
    let combined = |seed: u64| {
        FaultPlan::new(seed)
            .with_latency(2)
            .with_loss_ppm(10_000)
            .with_crashes(1, 10, 40)
    };
    {
        let graph = generators::torus(12, 12);
        let partition = generators::partitions::grid_columns(12, 12);
        instance(
            "torus 12x12 columns",
            &graph,
            &partition,
            &[("lat2 loss1% crash", combined(22))],
        );
    }
    {
        let graph = generators::genus_handles(12, 12, 2);
        let partition = generators::partitions::grid_columns(12, 12);
        instance(
            "12x12 + 2 handles",
            &graph,
            &partition,
            &[("lat2 loss1% crash", combined(23))],
        );
    }
    {
        let graph = generators::wheel(129);
        let partition = generators::partitions::wheel_arcs(129, 8);
        instance(
            "wheel 129 arcs",
            &graph,
            &partition,
            &[("lat2 loss1% crash", combined(24))],
        );
    }

    let table = Table {
        title: "E15: robustness — fault-injected verification (verdict asserted correct; det = digests of two same-plan runs identical)"
            .to_string(),
        headers: [
            "instance",
            "n",
            "fault plan",
            "plain rds",
            "fault rds",
            "inflate",
            "epochs",
            "stalls",
            "good",
            "digest",
            "det",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, format!("{{\"rows\":[{}]}}", extras.join(",")))
}

/// E16 — update-vs-rebuild tier: incremental decomposition repair
/// ([`lcs_api::Session::update_partition`]) against a from-scratch
/// rebuild of the post-delta partition, on n >= 10^4 instances of three
/// families. Each row applies a churn delta of growing size (1 boundary
/// node up to 50% of the parts dirtied), times both paths, and computes
/// an FNV-1a digest over everything a repair returns (per-part shortcut
/// edge sets, the quality record, per-part verdicts); `det` asserts the
/// repaired and rebuilt digests are byte-identical — the part-scoped
/// seeds are anchored at each part's minimum member, so reuse never
/// changes a single byte. The extra JSON payload carries each row's
/// digest for the cross-thread assertion CI performs on
/// `BENCH_REPAIR_T{1,4}.json`.
pub fn e16_repair_table() -> (Table, String) {
    use lcs_api::{PartitionDelta, RepairRun};

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(mut h: u64, v: u64) -> u64 {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
    fn digest_of(run: &RepairRun) -> u64 {
        let mut h = FNV_OFFSET;
        for p in 0..run.shortcut.part_count() {
            let edges = run.shortcut.edges_of(lcs_api::graph::PartId::new(p));
            h = mix(h, edges.len() as u64);
            for &e in edges {
                h = mix(h, e.index() as u64);
            }
        }
        h = mix(h, run.quality.congestion as u64);
        h = mix(h, run.quality.dilation as u64);
        h = mix(h, run.quality.block_parameter as u64);
        for &g in &run.good {
            h = mix(h, u64::from(g));
        }
        h
    }

    /// A churn delta moving `moved_target` boundary nodes into adjacent
    /// parts, each move validated to keep every part connected and
    /// nonempty. Deterministic: candidates are scanned in node-id order.
    fn churn_delta(graph: &Graph, partition: &Partition, moved_target: usize) -> PartitionDelta {
        let mut delta = PartitionDelta::new();
        let mut current = partition.apply(&delta).expect("the empty delta applies");
        let mut moved = 0usize;
        for index in 0..graph.node_count() {
            if moved == moved_target {
                break;
            }
            let v = NodeId::new(index);
            let Some(src) = current.part_of(v) else {
                continue;
            };
            if current.members(src).len() < 2 {
                continue;
            }
            let Some(dst) = graph
                .neighbors(v)
                .find_map(|(u, _)| current.part_of(u).filter(|&p| p != src))
            else {
                continue;
            };
            let trial = delta.clone().move_nodes(vec![v], dst);
            if let Ok(next) = partition.apply(&trial) {
                if next.validate(graph).is_ok() {
                    delta = trial;
                    current = next;
                    moved += 1;
                }
            }
        }
        assert!(
            moved == moved_target,
            "E16 churn delta found only {moved}/{moved_target} valid boundary moves"
        );
        delta
    }

    let mut rows = Vec::new();
    let mut extras = Vec::new();
    let mut instance = |label: &str, graph: &Graph, partition: &Partition, seed: u64| {
        let mut session = session_on(graph, seed);
        session
            .track_partition(partition, Strategy::doubling())
            .expect("E16 instances admit good shortcuts");
        let parts = partition.part_count();
        let shapes = [
            ("1 node", 1usize),
            ("1% parts", (parts / 100).max(1)),
            ("10% parts", (parts / 10).max(2)),
            ("50% parts", (parts / 2).max(3)),
        ];
        for (shape, moved) in shapes {
            let delta = churn_delta(graph, partition, moved);
            let target = partition.apply(&delta).expect("churn deltas are valid");
            let baseline = session.repair_baseline().expect("tracked above");

            let start = std::time::Instant::now();
            let repaired = session
                .repair_from(&baseline, &delta)
                .expect("valid deltas repair cleanly");
            let repair_ms = start.elapsed().as_secs_f64() * 1e3;

            let mut rebuild_session = session_on(graph, seed);
            let start = std::time::Instant::now();
            let rebuilt = rebuild_session
                .track_partition(&target, Strategy::doubling())
                .expect("the post-delta partition is valid");
            let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;

            let digest = digest_of(&repaired);
            let deterministic = digest == digest_of(&rebuilt);
            assert!(
                deterministic,
                "E16 repair and rebuild diverged on {label} / {shape}"
            );
            rows.push(vec![
                label.to_string(),
                graph.node_count().to_string(),
                parts.to_string(),
                shape.to_string(),
                moved.to_string(),
                repaired.repaired_parts.to_string(),
                repaired.reused_parts.to_string(),
                format!("{repair_ms:.1}"),
                format!("{rebuild_ms:.1}"),
                format!("{:.1}x", rebuild_ms / repair_ms.max(1e-9)),
                format!("{digest:016x}"),
                deterministic.to_string(),
            ]);
            extras.push(format!(
                "{{\"instance\":\"{}\",\"shape\":\"{}\",\"moved\":{},\"repaired_parts\":{},\"reused_parts\":{},\"repair_ms\":{:.3},\"rebuild_ms\":{:.3},\"digest\":\"{:016x}\",\"deterministic\":{}}}",
                lcs_obs::json::escape(label),
                lcs_obs::json::escape(shape),
                moved,
                repaired.repaired_parts,
                repaired.reused_parts,
                repair_ms,
                rebuild_ms,
                digest,
                deterministic,
            ));
        }
    };

    {
        let (graph, partition) = grid_instance(100);
        instance("grid 100x100 columns", &graph, &partition, 31);
    }
    {
        let graph = generators::torus(100, 100);
        let partition = generators::partitions::grid_columns(100, 100);
        instance("torus 100x100 columns", &graph, &partition, 32);
    }
    {
        let graph = generators::random_connected(10_000, 12_000, 33);
        let partition = generators::partitions::random_bfs_balls(&graph, 100, 33);
        instance("random n=10^4 bfs balls", &graph, &partition, 33);
    }

    let table = Table {
        title: "E16: incremental repair — update_partition vs full rebuild (det = repaired and rebuilt digests identical)"
            .to_string(),
        headers: [
            "instance",
            "n",
            "parts",
            "delta",
            "moved",
            "repaired",
            "reused",
            "repair ms",
            "rebuild ms",
            "speedup",
            "digest",
            "det",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, format!("{{\"rows\":[{}]}}", extras.join(",")))
}

/// A built table together with the wall-clock time it took to build — the
/// quantity the bench trajectory (`BENCH_SCALE.json`) tracks across PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTable {
    /// Experiment id (`"e1"` … `"e13"`).
    pub id: String,
    /// The rendered table.
    pub table: Table,
    /// Wall-clock build time in milliseconds.
    pub millis: f64,
    /// Optional pre-serialized JSON payload the table builder wants
    /// embedded verbatim in the `--json` output (E13 ships its full
    /// latency histograms this way).
    pub extra_json: Option<String>,
}

/// Builds a table through `build`, measuring the wall-clock time.
pub fn timed_table(id: &str, build: impl FnOnce() -> Table) -> TimedTable {
    timed_table_with_extra(id, || (build(), None))
}

/// [`timed_table`] for builders that also produce an extra JSON payload
/// (`Some` to embed it under the table's `"extra"` key).
pub fn timed_table_with_extra(
    id: &str,
    build: impl FnOnce() -> (Table, Option<String>),
) -> TimedTable {
    let start = std::time::Instant::now();
    let (table, extra_json) = build();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    TimedTable {
        id: id.to_string(),
        table,
        millis,
        extra_json,
    }
}

/// Renders a list of tables as a single machine-readable JSON document
/// (hand-rolled writer: the build environment has no serde). Each table
/// entry carries its wall-clock build time in milliseconds; the document
/// records the engine thread count the run used (`--threads` /
/// `LCS_THREADS`), so downstream consumers (the `BENCH_SCALE.json`
/// trajectory, CI artifacts) can attribute timings to an engine.
pub fn tables_to_json(tables: &[TimedTable], threads: usize) -> String {
    use lcs_obs::json::{escape as esc, string_array};

    let mut entries = Vec::new();
    for timed in tables {
        let table = &timed.table;
        let rows: Vec<String> = table.rows.iter().map(|r| string_array(r)).collect();
        // `extra` is a pre-serialized JSON document from the table builder
        // (e.g. E13's full histograms) and is embedded verbatim.
        let extra = match &timed.extra_json {
            Some(extra) => format!(",\"extra\":{extra}"),
            None => String::new(),
        };
        entries.push(format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"millis\":{:.3},\"headers\":{},\"rows\":[{}]{}}}",
            esc(&timed.id),
            esc(&table.title),
            timed.millis,
            string_array(&table.headers),
            rows.join(","),
            extra
        ));
    }
    format!(
        "{{\"generator\":\"experiments\",\"threads\":{},\"tables\":[{}]}}\n",
        threads,
        entries.join(",")
    )
}

/// E17 — concurrent TCP serving: one warm session behind the
/// `lcs_server` loop, hammered over loopback at client counts {1, 4, 16}
/// × mixes {consume, mixed}, with p50/p95/p99 round-trip latency and
/// throughput columns.
///
/// The determinism claim is stronger than E13's rerun check: for each
/// mix, the trace is first replayed *sequentially* through
/// `Session::serve_shared` on both engines (`Threads::Fixed(1)` and
/// `Fixed(4)`), and the `det` column asserts the TCP replay's digest
/// multiset equals both baselines — the wire and the worker
/// interleaving add latency, never values. Each row's extras record the
/// FNV-1a fold of the *sorted* digest multiset (order-independent, so
/// byte-comparable across `--threads` runs in CI) plus the full latency
/// histogram and its p99.9 tail.
pub fn e17_server_table() -> (Table, String) {
    use lcs_api::{Threads, ValueDigest};
    use lcs_server::{client, ServerConfig, ServerHandle};
    use lcs_workload::{
        generate_trace, query_of, Corpus, CorpusSpec, Family, Mode, QueryMix, WorkloadSpec,
    };

    const QUERIES: usize = 64;
    const SEED: u64 = 23;
    const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

    let corpus_spec = CorpusSpec {
        family: Family::Grid,
        size: 10,
        entries: 4,
        seed: SEED,
    };
    let corpus = Corpus::build(&corpus_spec).expect("grid corpus builds");

    // The server is connection-per-worker, so workers must cover the
    // largest concurrent client count.
    let server = ServerHandle::spawn(
        ServerConfig::new(vec![corpus_spec])
            .workers(*CLIENT_COUNTS.iter().max().expect("nonempty"))
            .seed(SEED),
    )
    .expect("server spawns");

    // Sorted digest multiset of a sequential `serve_shared` replay at a
    // fixed engine width.
    let baseline = |spec: &WorkloadSpec, threads: usize| -> Vec<u64> {
        let session = Pipeline::on(corpus.graph())
            .seed(SEED)
            .threads(Threads::Fixed(threads))
            .build()
            .expect("baseline session builds");
        let trace = generate_trace(spec, corpus.len()).expect("trace generates");
        let mut digests: Vec<u64> = trace
            .iter()
            .map(|event| {
                session
                    .serve_shared(query_of(&corpus, event))
                    .expect("baseline query serves")
                    .digest
            })
            .collect();
        digests.sort_unstable();
        digests
    };
    let fold = |sorted: &[u64]| -> u64 {
        let mut digest = ValueDigest::new();
        for &d in sorted {
            digest.push(d);
        }
        digest.value()
    };

    let micros = |nanos: u64| format!("{:.1}", nanos as f64 / 1e3);
    let mut rows = Vec::new();
    let mut extras = Vec::new();
    for &mix in &[QueryMix::consume(), QueryMix::mixed()] {
        // Client count does not enter trace generation, so every client
        // count replays the same event sequence.
        let spec = WorkloadSpec::new(
            Mode::Closed {
                clients: 1,
                think_nanos: 0,
            },
            QUERIES,
            1.0,
            mix,
            SEED,
        );
        let serial = baseline(&spec, 1);
        let sharded = baseline(&spec, 4);
        let engines_agree = serial == sharded;
        let trace = generate_trace(&spec, corpus.len()).expect("trace generates");
        for &clients in &CLIENT_COUNTS {
            let outcome = client::replay_closed(server.addr(), "grid", &trace, clients, 0)
                .expect("tcp replay runs");
            let mut served = outcome.digests.clone();
            served.sort_unstable();
            let deterministic = engines_agree && served == serial;
            let h = &outcome.histogram;
            rows.push(vec![
                mix.label(),
                clients.to_string(),
                outcome.queries.to_string(),
                micros(h.quantile(0.50)),
                micros(h.quantile(0.95)),
                micros(h.quantile(0.99)),
                format!("{:.0}", outcome.throughput_qps()),
                deterministic.to_string(),
            ]);
            extras.push(format!(
                "{{\"mix\":\"{}\",\"clients\":{clients},\"queries\":{},\"qps\":{:.1},\"deterministic\":{deterministic},\"digest_multiset_fold\":{},\"p999_nanos\":{},\"histogram\":{}}}",
                mix.label(),
                outcome.queries,
                outcome.throughput_qps(),
                fold(&served),
                h.p999(),
                h.to_json(),
            ));
        }
    }
    client::shutdown(server.addr()).expect("server shuts down");
    server.join().expect("server drains");

    let table = Table {
        title: "E17: concurrent TCP serving — one warm session, loopback clients (latency in microseconds; det = digest multiset equals sequential serve_shared on both engines)"
            .to_string(),
        headers: [
            "mix", "clients", "queries", "p50 us", "p95 us", "p99 us", "qps", "det",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, format!("{{\"rows\":[{}]}}", extras.join(",")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let table = Table {
            title: "demo".to_string(),
            headers: vec!["a".to_string(), "long-header".to_string()],
            rows: vec![vec!["1".to_string(), "2".to_string()]],
        };
        let text = render_table(&table);
        assert!(text.contains("## demo"));
        assert!(text.contains("long-header"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn e3_routing_table_respects_the_bound() {
        let table = e3_routing_table();
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            let rounds: u64 = row[3].parse().unwrap();
            let bound: u64 = row[4].parse().unwrap();
            assert!(rounds <= bound, "{row:?}");
        }
    }

    #[test]
    fn e7_guarantees_all_hold() {
        let table = e7_guarantees_table();
        for row in &table.rows {
            assert_eq!(row[4], "true", "{row:?}");
            assert_eq!(row[6], "true", "{row:?}");
            assert_eq!(row[7], "true", "{row:?}");
        }
    }

    #[test]
    fn json_writer_escapes_and_structures() {
        let table = Table {
            title: "with \"quotes\" and\nnewline".to_string(),
            headers: vec!["a".to_string()],
            rows: vec![vec!["x\\y".to_string()]],
        };
        let json = tables_to_json(
            &[TimedTable {
                id: "t1".to_string(),
                table,
                millis: 12.5,
                extra_json: None,
            }],
            4,
        );
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("x\\\\y"));
        assert!(json.contains("\"millis\":12.500"));
        assert!(json.contains("\"threads\":4"));
        assert!(!json.contains("\"extra\""));
        assert!(json.starts_with("{\"generator\":\"experiments\""));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_writer_embeds_extra_payloads_verbatim() {
        let timed = timed_table_with_extra("e13", || {
            (
                Table {
                    title: "t".to_string(),
                    headers: vec!["h".to_string()],
                    rows: vec![vec!["1".to_string()]],
                },
                Some("{\"rows\":[{\"p99\":7}]}".to_string()),
            )
        });
        let json = tables_to_json(&[timed], 1);
        assert!(
            json.contains(",\"extra\":{\"rows\":[{\"p99\":7}]}}"),
            "extra payload missing: {json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn e8_simulated_boruvka_agrees_end_to_end() {
        // The acceptance check behind E8's contract: Boruvka with simulated
        // execution still verifies against Kruskal — through the façade.
        let g = generators::grid(4, 4);
        let w = EdgeWeights::random_permutation(&g, 2);
        let session = Pipeline::on(&g)
            .seed(1)
            .execution(ExecutionMode::Simulated)
            .build()
            .unwrap();
        let outcome = session.mst(&w, ShortcutStrategy::Doubling).unwrap();
        assert_eq!(outcome.edges, lcs_api::graph::kruskal_mst(&g, &w));
    }

    #[test]
    fn e11_serving_results_are_identical_warm_and_cold() {
        let table = e11_serving_table();
        // Three families, two query shapes each.
        assert_eq!(table.rows.len(), 6);
        for row in &table.rows {
            assert_eq!(row.last().map(String::as_str), Some("true"), "{row:?}");
        }
    }
}
