//! Prints every experiment table of the reproduction (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments                      # run all experiments
//!   experiments e1 e4                # run a subset
//!   experiments --json out.json      # also write the tables as JSON
//!   experiments e8 --json out.json   # subset + JSON

use lcs_bench::{
    e1_quality_table, e2_findshortcut_table, e3_routing_table, e4_mst_table, e5_core_table,
    e6_doubling_table, e7_guarantees_table, e8_dist_table, e9_scale_table, render_table,
    tables_to_json, timed_table, Table, TimedTable,
};

type TableBuilder = fn() -> Table;

fn main() {
    let mut json_path: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else {
            requested.push(arg.to_lowercase());
        }
    }

    let all: Vec<(&str, TableBuilder)> = vec![
        ("e1", e1_quality_table),
        ("e2", e2_findshortcut_table),
        ("e3", e3_routing_table),
        ("e4", e4_mst_table),
        ("e5", e5_core_table),
        ("e6", e6_doubling_table),
        ("e7", e7_guarantees_table),
        ("e8", e8_dist_table),
        ("e9", e9_scale_table),
    ];
    // Fail loudly on anything that is not a known experiment id — a typoed
    // flag must not silently produce an empty run (CI consumes the JSON).
    for r in &requested {
        if !all.iter().any(|(name, _)| name == r) {
            eprintln!(
                "unknown argument `{r}`; expected experiment ids {} or --json <path>",
                all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
    }
    let mut built: Vec<TimedTable> = Vec::new();
    for (name, build) in all {
        if requested.is_empty() || requested.iter().any(|r| r == name) {
            eprintln!("running {name}...");
            let timed = timed_table(name, build);
            println!("{}", render_table(&timed.table));
            eprintln!("{name} built in {:.1} ms", timed.millis);
            built.push(timed);
        }
    }

    if let Some(path) = json_path {
        let json = tables_to_json(&built);
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote {} table(s) to {path}", built.len());
    }
}
